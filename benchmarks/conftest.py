"""Shared benchmark fixtures.

The pytest-benchmark suites measure representative points of each figure
(kept small so ``pytest benchmarks/ --benchmark-only`` completes in
minutes).  The full sweeps with the paper's ladders and timeouts live in
``python -m repro.bench <figure>``.
"""

from __future__ import annotations

import pytest

from repro.synthetic import SyntheticConfig, load_synthetic
from repro.tpch import install_views, load_tpch


@pytest.fixture(scope="session")
def tpch_db():
    """One shared small TPC-H instance (the '10MB' rung of the ladder)."""
    db = load_tpch(scale=0.00015, seed=0)
    install_views(db)
    return db


@pytest.fixture(scope="session")
def synthetic_dbs():
    """Synthetic instances keyed by (input_size, sublink_size)."""
    cache: dict[tuple[int, int], object] = {}

    def get(input_size: int, sublink_size: int):
        key = (input_size, sublink_size)
        if key not in cache:
            cache[key] = load_synthetic(
                SyntheticConfig(input_size, sublink_size, seed=0))
        return cache[key]

    return get
