"""Figure 7: synthetic queries, varying the input relation size.

Sublink relation fixed (paper: 1000 tuples; here 500), input relation
swept.  Expected shape: Unn fastest by an order of magnitude on q1,
Left ≈ Move well below Gen, Gen growing steeply (it re-executes the
rewritten sublink per CrossBase candidate).
"""

import pytest

from repro.synthetic import q1_sql, q2_sql

SUBLINK_SIZE = 500
INPUT_SIZES = (100, 500, 1000)

Q1_STRATEGIES = ("gen", "left", "move", "unn")
Q2_STRATEGIES = ("gen", "left", "move")


def _measure(benchmark, db, sql, strategy, heavy):
    rounds = 1 if heavy else 3
    benchmark.pedantic(
        lambda: db.provenance(sql, strategy=strategy),
        rounds=rounds, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("input_size", INPUT_SIZES)
@pytest.mark.parametrize("strategy", Q1_STRATEGIES)
def test_q1_vary_input(benchmark, synthetic_dbs, input_size, strategy):
    if strategy == "gen" and input_size > 500:
        pytest.skip("Gen beyond this size is covered by the CLI sweep")
    db = synthetic_dbs(input_size, SUBLINK_SIZE)
    sql = q1_sql(input_size, SUBLINK_SIZE, seed=0)
    benchmark.group = f"fig7-q1-n{input_size}"
    _measure(benchmark, db, sql, strategy, heavy=(strategy == "gen"))


@pytest.mark.parametrize("input_size", INPUT_SIZES)
@pytest.mark.parametrize("strategy", Q2_STRATEGIES)
def test_q2_vary_input(benchmark, synthetic_dbs, input_size, strategy):
    if strategy == "gen" and input_size > 500:
        pytest.skip("Gen beyond this size is covered by the CLI sweep")
    db = synthetic_dbs(input_size, SUBLINK_SIZE)
    sql = q2_sql(input_size, SUBLINK_SIZE, seed=0)
    benchmark.group = f"fig7-q2-n{input_size}"
    _measure(benchmark, db, sql, strategy, heavy=(strategy == "gen"))
