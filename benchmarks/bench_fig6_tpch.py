"""Figure 6: provenance of the TPC-H sublink queries.

The paper (Fig. 6 a-d) runs the nine sublink templates at 1MB-1GB: the
Gen strategy everywhere, Left/Move additionally on the uncorrelated Q11,
Q15 and Q16, with queries over the cutoff excluded.  These benchmarks
measure the representative '10MB' rung; the full four-size ladder with
timeout handling is ``python -m repro.bench fig6``.

Expected shape (matches the paper): Gen on correlated templates is the
most expensive by orders of magnitude; Left and Move are close to each
other on the uncorrelated templates.
"""

import pytest

from repro.tpch import query_sql, query_strategies

# Gen on every paper template would take minutes per query at this scale
# (that is Figure 6's point); the benchmark samples the tractable ones.
GEN_QUERIES = (4, 11, 15, 16, 22)
UNCORRELATED = (11, 15, 16)


@pytest.mark.parametrize("query", GEN_QUERIES)
def test_gen_strategy(benchmark, tpch_db, query):
    sql = query_sql(query, seed=0)
    benchmark.group = f"fig6-Q{query}"
    benchmark.name = f"Q{query}-gen"
    benchmark.pedantic(
        lambda: tpch_db.provenance(sql, strategy="gen"),
        rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("query", UNCORRELATED)
@pytest.mark.parametrize("strategy", ("left", "move"))
def test_uncorrelated_strategies(benchmark, tpch_db, query, strategy):
    sql = query_sql(query, seed=0)
    benchmark.group = f"fig6-Q{query}"
    benchmark.name = f"Q{query}-{strategy}"
    benchmark.pedantic(
        lambda: tpch_db.provenance(sql, strategy=strategy),
        rounds=3, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("query", UNCORRELATED)
def test_plain_query_baseline(benchmark, tpch_db, query):
    """The original queries, as the no-provenance baseline."""
    sql = query_sql(query, seed=0)
    benchmark.group = f"fig6-Q{query}"
    benchmark.name = f"Q{query}-baseline"
    benchmark.pedantic(
        lambda: tpch_db.sql(sql), rounds=3, iterations=1,
        warmup_rounds=0)
