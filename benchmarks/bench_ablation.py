"""Ablation benchmarks for the engine design choices DESIGN.md calls out.

1. **Logical optimizer on/off** — Perm relies on PostgreSQL's planner;
   disabling our pushdown pass shows how much of the strategies' viability
   it provides.
2. **Hash join vs nested loop** — the executor's equi-join fast path is
   what separates Unn from Left/Move (Figures 7-9's order-of-magnitude
   gap); measuring Unn with the same plan under both executors isolates
   that effect.
3. **Uncorrelated sublink caching** — PostgreSQL's InitPlan behaviour;
   without it the Left strategy's duplicated ``Csub`` in ``Jsub`` would be
   re-evaluated per row pair (the problem the Move strategy addresses).
"""

import pytest

from repro.engine import Executor
from repro.synthetic import SyntheticConfig, load_synthetic, q1_sql

SIZE = 400


@pytest.fixture(scope="module")
def setup():
    db = load_synthetic(SyntheticConfig(SIZE, SIZE, seed=0))
    sql = q1_sql(SIZE, SIZE, seed=0)
    return db, sql


@pytest.mark.parametrize("optimize", (True, False),
                         ids=("optimizer-on", "optimizer-off"))
def test_optimizer_ablation_left(benchmark, setup, optimize):
    db, sql = setup
    plan = db.plan(sql, strategy="left")
    benchmark.group = "ablation-optimizer"
    benchmark.pedantic(
        lambda: Executor(db.catalog, optimize=optimize).execute(plan),
        rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("strategy", ("unn", "left"))
def test_join_path_ablation(benchmark, setup, strategy):
    """Unn's plan hash-joins; Left's Jsub disjunction forces the nested
    loop — the engine-level cause of the Fig. 7-9 gap."""
    db, sql = setup
    plan = db.plan(sql, strategy=strategy)
    benchmark.group = "ablation-join-path"

    def run():
        executor = Executor(db.catalog)
        executor.execute(plan)
        return executor.stats

    stats = run()
    if strategy == "unn":
        assert stats.hash_joins >= 1
    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)


def test_sublink_cache_effect(benchmark, setup):
    """Count sublink evaluations with the cache (identity-keyed): the
    Left strategy's duplicated Csub is evaluated once per *tree*, not per
    row — PostgreSQL InitPlan behaviour."""
    db, sql = setup
    plan = db.plan(sql, strategy="left")

    def run():
        executor = Executor(db.catalog)
        executor.execute(plan)
        return executor.stats

    stats = run()
    assert stats.sublink_executions <= 4
    assert stats.sublink_cache_hits >= 0
    benchmark.group = "ablation-sublink-cache"
    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)


def test_direct_vs_rewrite_provenance(benchmark, setup):
    """The paper's future-work idea measured: direct provenance
    propagation avoids the rewrite plans' re-computation of intermediate
    results (compare against the Left strategy rows of this suite)."""
    from repro.provenance.direct import direct_provenance

    db, sql = setup
    plan = db.plan(sql)
    benchmark.group = "ablation-direct"
    benchmark.pedantic(
        lambda: direct_provenance(db.catalog, plan),
        rounds=3, iterations=1, warmup_rounds=0)
