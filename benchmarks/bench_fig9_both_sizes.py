"""Figure 9: synthetic queries, varying both relation sizes together."""

import pytest

from repro.synthetic import q1_sql, q2_sql

SIZES = (100, 300, 600)

Q1_STRATEGIES = ("gen", "left", "move", "unn")
Q2_STRATEGIES = ("gen", "left", "move")


def _measure(benchmark, db, sql, strategy):
    rounds = 1 if strategy == "gen" else 3
    benchmark.pedantic(
        lambda: db.provenance(sql, strategy=strategy),
        rounds=rounds, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("strategy", Q1_STRATEGIES)
def test_q1_vary_both(benchmark, synthetic_dbs, size, strategy):
    if strategy == "gen" and size > 300:
        pytest.skip("Gen beyond this size is covered by the CLI sweep")
    db = synthetic_dbs(size, size)
    sql = q1_sql(size, size, seed=0)
    benchmark.group = f"fig9-q1-n{size}"
    _measure(benchmark, db, sql, strategy)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("strategy", Q2_STRATEGIES)
def test_q2_vary_both(benchmark, synthetic_dbs, size, strategy):
    if strategy == "gen" and size > 300:
        pytest.skip("Gen beyond this size is covered by the CLI sweep")
    db = synthetic_dbs(size, size)
    sql = q2_sql(size, size, seed=0)
    benchmark.group = f"fig9-q2-n{size}"
    _measure(benchmark, db, sql, strategy)
