"""Figure 8: synthetic queries, varying the sublink relation size.

Input relation fixed (paper: fixed input, sublink relation swept).  Gen
degrades fastest here — the CrossBase grows with the sublink relation and
the membership EXISTS re-runs the rewritten sublink query per candidate.
"""

import pytest

from repro.synthetic import q1_sql, q2_sql

INPUT_SIZE = 500
SUBLINK_SIZES = (100, 500, 1000)

Q1_STRATEGIES = ("gen", "left", "move", "unn")
Q2_STRATEGIES = ("gen", "left", "move")


def _measure(benchmark, db, sql, strategy):
    rounds = 1 if strategy == "gen" else 3
    benchmark.pedantic(
        lambda: db.provenance(sql, strategy=strategy),
        rounds=rounds, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("sublink_size", SUBLINK_SIZES)
@pytest.mark.parametrize("strategy", Q1_STRATEGIES)
def test_q1_vary_sublink(benchmark, synthetic_dbs, sublink_size, strategy):
    if strategy == "gen" and sublink_size > 500:
        pytest.skip("Gen beyond this size is covered by the CLI sweep")
    db = synthetic_dbs(INPUT_SIZE, sublink_size)
    sql = q1_sql(INPUT_SIZE, sublink_size, seed=0)
    benchmark.group = f"fig8-q1-m{sublink_size}"
    _measure(benchmark, db, sql, strategy)


@pytest.mark.parametrize("sublink_size", SUBLINK_SIZES)
@pytest.mark.parametrize("strategy", Q2_STRATEGIES)
def test_q2_vary_sublink(benchmark, synthetic_dbs, sublink_size, strategy):
    if strategy == "gen" and sublink_size > 500:
        pytest.skip("Gen beyond this size is covered by the CLI sweep")
    db = synthetic_dbs(INPUT_SIZE, sublink_size)
    sql = q2_sql(INPUT_SIZE, sublink_size, seed=0)
    benchmark.group = f"fig8-q2-m{sublink_size}"
    _measure(benchmark, db, sql, strategy)
