"""Quickstart: provenance of a query with a nested subquery.

Run with::

    python examples/quickstart.py

Creates the paper's Figure 3 relations, runs the plain query and its
``SELECT PROVENANCE`` variant, and shows how each strategy rewrites it.
"""

from repro import Database


def main() -> None:
    db = Database()
    db.execute_script("""
        CREATE TABLE r (a int, b int);
        INSERT INTO r VALUES (1, 1), (2, 1), (3, 2);
        CREATE TABLE s (c int, d int);
        INSERT INTO s VALUES (1, 3), (2, 4), (4, 5);
    """)

    query = "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)"

    print("== the query ==")
    print(query)
    print()
    print(db.sql(query).pretty())
    print()

    print("== its provenance (paper, Figure 3, q1) ==")
    print("SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)")
    print()
    result = db.sql(f"SELECT PROVENANCE {query.removeprefix('SELECT ')}")
    print(result.pretty())
    print()
    print("Each result tuple is extended with the contributing tuple of")
    print("every base relation: (1,1) is in the result because of r's")
    print("(1,1) and s's (1,3) — exactly the paper's Figure 3 table.")
    print()

    print("== the four rewrite strategies produce the same provenance ==")
    for strategy in ("gen", "left", "move", "unn"):
        rows = sorted(db.provenance(query, strategy=strategy).rows)
        print(f"  {strategy:5s} -> {rows}")
    print()

    print("== what the Unn rewrite looks like (no sublinks left) ==")
    print(db.explain(query, strategy="unn"))


if __name__ == "__main__":
    main()
