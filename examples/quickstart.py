"""Quickstart: provenance of a query with a nested subquery.

Run with::

    python examples/quickstart.py

Creates the paper's Figure 3 relations through the session API
(:func:`repro.connect`), runs the plain query and its ``SELECT
PROVENANCE`` variant, re-executes a prepared statement through the plan
cache, and shows how each strategy rewrites the query.
"""

from repro import connect


def main() -> None:
    conn = connect()
    cur = conn.cursor()
    cur.execute("CREATE TABLE r (a int, b int)")
    cur.executemany("INSERT INTO r VALUES (?, ?)", [(1, 1), (2, 1), (3, 2)])
    cur.execute("CREATE TABLE s (c int, d int)")
    cur.executemany("INSERT INTO s VALUES (?, ?)", [(1, 3), (2, 4), (4, 5)])

    query = "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)"

    print("== the query ==")
    print(query)
    print()
    cur.execute(query)
    print(cur.relation.pretty())
    print()

    print("== its provenance (paper, Figure 3, q1) ==")
    print("SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)")
    print()
    result = conn.sql(f"SELECT PROVENANCE {query.removeprefix('SELECT ')}")
    print(result.pretty())
    print()
    print("Each result tuple is extended with the contributing tuple of")
    print("every base relation: (1,1) is in the result because of r's")
    print("(1,1) and s's (1,3) — exactly the paper's Figure 3 table.")
    print()

    print("== prepared statements skip re-planning ==")
    statement = conn.prepare(
        "SELECT PROVENANCE * FROM r WHERE a = ANY "
        "(SELECT c FROM s WHERE c < ?)")
    for bound in (10, 2):
        rows = sorted(statement.execute((bound,)).rows)
        print(f"  c < {bound}  -> {rows}")
    print(f"  plan cache: {conn.plan_cache.stats()}")
    print()

    print("== the four rewrite strategies produce the same provenance ==")
    for strategy in ("gen", "left", "move", "unn"):
        rows = sorted(conn.provenance(query, strategy=strategy).rows)
        print(f"  {strategy:5s} -> {rows}")
    print()

    print("== what the Unn rewrite looks like (no sublinks left) ==")
    print(conn.explain(query, strategy="unn"))


if __name__ == "__main__":
    main()
