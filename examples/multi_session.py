"""Multi-session usage: one shared Engine, snapshot-isolated
transactions, and streaming provenance results.

Run with::

    PYTHONPATH=src python examples/multi_session.py
"""

from concurrent.futures import ThreadPoolExecutor

from repro import Engine, TransactionError


def main() -> None:
    engine = Engine()

    # -- load through one session; every session sees the shared catalog --
    loader = engine.connect()
    loader.execute("CREATE TABLE orders (id int, customer int, total int)")
    loader.insert("orders", [(i, i % 5, (i * 37) % 100)
                             for i in range(50)])
    loader.execute("CREATE TABLE vip (customer int)")
    loader.insert("vip", [(1,), (3,)])
    loader.execute("CREATE UNIQUE INDEX orders_id ON orders (id)")
    loader.execute("ANALYZE")

    # -- snapshot isolation: a reader never sees an open transaction -------
    writer = engine.connect()
    reader = engine.connect()
    writer.execute("BEGIN")
    writer.execute("DELETE FROM orders WHERE customer = 0")
    print("reader still sees:",
          reader.execute("SELECT count(*) AS n FROM orders").rows[0][0],
          "orders (writer's DELETE is uncommitted)")
    writer.execute("ROLLBACK")   # tables, indexes and stats all revert

    # -- transactions retry on first-committer-wins conflicts --------------
    def bump_totals(customer: int) -> None:
        conn = engine.connect()
        while True:
            conn.begin()
            try:
                conn.execute("INSERT INTO orders VALUES (?, ?, ?)",
                             (1000 + customer, customer, 1))
                conn.commit()
                return
            except TransactionError:
                continue         # a concurrent commit won; retry

    with ThreadPoolExecutor(max_workers=4) as pool:
        for future in [pool.submit(bump_totals, c) for c in range(4)]:
            future.result()
    print("after 4 concurrent commits:",
          reader.execute("SELECT count(*) AS n FROM orders").rows[0][0],
          "orders")

    # -- streaming provenance: witnesses group contributing inputs ---------
    result = reader.execute(
        "SELECT PROVENANCE total FROM orders "
        "WHERE customer = ANY (SELECT customer FROM vip) AND total > 90")
    print("provenance columns:", result.provenance_columns)
    for witness in result.witnesses():
        combos = [[(c.table, c.row) for c in combo]
                  for combo in witness.inputs]
        print(f"  output {witness.tuple} <- {combos}")

    engine.close()


if __name__ == "__main__":
    main()
