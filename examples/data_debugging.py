"""Tracing errors back to their source: the curated-database use case.

The paper's introduction motivates provenance with error tracing in
transformed data.  This example builds a small sensor warehouse where one
ingest batch is corrupted, computes a report with nested subqueries, spots
an anomalous row, and uses ``SELECT PROVENANCE`` to find the exact source
tuples — including through a correlated sublink.

Run with::

    python examples/data_debugging.py
"""

from repro import Connection, connect


def build_warehouse() -> Connection:
    db = connect()
    db.execute_script("""
        CREATE TABLE sensors (sensor_id int, site text, unit text);
        INSERT INTO sensors VALUES
            (1, 'roof', 'celsius'),
            (2, 'basement', 'celsius'),
            (3, 'garden', 'celsius');

        CREATE TABLE batches (batch_id int, source text);
        INSERT INTO batches VALUES
            (100, 'gateway-a'),
            (101, 'gateway-b');

        CREATE TABLE readings (sensor_id int, batch_id int, value float);
        INSERT INTO readings VALUES
            (1, 100, 21.0), (1, 100, 22.5), (1, 101, 21.5),
            (2, 100, 18.0), (2, 101, 17.5),
            -- gateway-b shipped Fahrenheit for the garden sensor:
            (3, 100, 19.0), (3, 101, 66.0), (3, 101, 68.5);
    """)
    return db


REPORT = """
    SELECT site, avg(value) AS mean_temp
    FROM sensors, readings
    WHERE sensors.sensor_id = readings.sensor_id
      AND EXISTS (SELECT * FROM batches
                  WHERE batch_id = readings.batch_id)
    GROUP BY site
"""


def main() -> None:
    db = build_warehouse()

    print("== the report ==")
    report = db.sql(REPORT)
    print(report.pretty())
    print()

    suspicious = [row for row in report.rows if row[1] > 30]
    print(f"anomaly: {suspicious[0][0]!r} has a mean temperature of "
          f"{suspicious[0][1]:.1f} °C — trace it:")
    print()

    prov = db.provenance(REPORT, strategy="gen")
    culprit_rows = [row for row in prov.rows if row[0] == "garden"]
    print("== provenance of the 'garden' row ==")
    print(prov.schema.names)
    for row in culprit_rows:
        print(" ", row)
    print()

    # the reading columns are prov_readings_(sensor_id, batch_id, value)
    names = list(prov.schema.names)
    batch_pos = names.index("prov_readings_batch_id")
    value_pos = names.index("prov_readings_value")
    bad = {(row[batch_pos]) for row in culprit_rows
           if row[value_pos] and row[value_pos] > 30}
    print(f"readings above 30°C all come from batch(es): {sorted(bad)}")
    source = db.execute(
        "SELECT source FROM batches WHERE batch_id = ?",
        (sorted(bad)[0],))
    print(f"=> corrupted ingest source: {source.rows[0][0]!r}")


if __name__ == "__main__":
    main()
