"""Provenance for decision-support queries: TPC-H.

Run with::

    python examples/tpch_provenance.py [--scale 0.0002]

Generates a small TPC-H instance, then runs three of the paper's sublink
templates with provenance:

* Q4  (correlated EXISTS)      — Gen strategy,
* Q11 (uncorrelated HAVING)    — Left strategy,
* Q16 (NOT IN)                 — Move strategy,

showing for each how many source tuples each result row traces back to.
"""

import argparse
import time

from repro.tpch import install_views, load_tpch, query_sql


def run(db, number: int, strategy: str) -> None:
    sql = query_sql(number, seed=0)
    print(f"== TPC-H Q{number} (strategy: {strategy}) ==")
    started = time.perf_counter()
    plain = db.sql(sql)
    plain_seconds = time.perf_counter() - started

    started = time.perf_counter()
    prov = db.provenance(sql, strategy=strategy)
    prov_seconds = time.perf_counter() - started

    print(f"  original query : {len(plain.rows):5d} rows "
          f"in {plain_seconds:6.3f}s")
    print(f"  with provenance: {len(prov.rows):5d} rows "
          f"in {prov_seconds:6.3f}s")
    width = len(plain.schema)
    prov_tables = sorted({
        name.split("_")[1] for name in prov.schema.names[width:]})
    print(f"  provenance columns cover: {', '.join(prov_tables)}")
    if prov.rows:
        sample = prov.rows[0]
        print(f"  sample row: {sample[:width]}")
        print(f"   ... traced to {sample[width:]}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.0001)
    args = parser.parse_args()

    print(f"generating TPC-H at scale {args.scale} ...")
    db = load_tpch(scale=args.scale, seed=0).connection
    install_views(db)
    for table in db.catalog.names():
        print(f"  {table:10s} {len(db.catalog.get(table).rows):7d} rows")
    print()

    run(db, 4, "gen")    # correlated EXISTS: only Gen applies
    run(db, 11, "left")  # uncorrelated: Left
    run(db, 16, "move")  # uncorrelated: Move


if __name__ == "__main__":
    main()
