"""Serving over the network: boot the wire server in-process, connect
with the async client, and run a provenance query over TCP.

The server speaks the PostgreSQL v3 wire protocol, so everything below
also works from stock ``psql``::

    PYTHONPATH=src python -m repro.serve --port 5433 &
    psql -h 127.0.0.1 -p 5433 -U repro

Run with::

    PYTHONPATH=src python examples/serve_and_query.py
"""

import asyncio

from repro.client import connect
from repro.server import Server, ServerConfig


async def main() -> None:
    # Port 0 picks a free ephemeral port; a real deployment would use
    # ``python -m repro.serve`` with --users / --database routing.
    config = ServerConfig(
        port=0,
        users={"repro": None, "alice": "s3cret"},   # None = trust
        max_connections=16,
    )
    async with Server(config) as server:
        print(f"serving on 127.0.0.1:{server.port}")

        conn = await connect("127.0.0.1", server.port,
                             user="alice", password="s3cret")

        # -- simple protocol: several statements in one round trip -----
        results = await conn.query(
            "CREATE TABLE r (a int, b int); "
            "INSERT INTO r VALUES (1, 10); "
            "INSERT INTO r VALUES (2, 20); "
            "INSERT INTO r VALUES (3, 20)")
        print("tags:", [r.tag for r in results])

        # -- extended protocol: $n parameters, server-side prepare -----
        result = await conn.execute(
            "SELECT a, b FROM r WHERE b = $1", (20,))
        print("b = 20 ->", result.rows)

        # -- transactions over the wire --------------------------------
        await conn.begin()
        await conn.execute("INSERT INTO r VALUES (4, 40)")
        await conn.rollback()

        # -- provenance, streamed in batches through a portal ----------
        statement = await conn.prepare(
            "SELECT PROVENANCE a FROM r WHERE b >= $1")
        print("columns:", [name for name, _ in statement.description])
        async for row in statement.stream((10,), batch=2):
            print("  row:", row)
        await statement.close()

        await conn.close()


if __name__ == "__main__":
    asyncio.run(main())
