"""Comparing the rewrite strategies: plans, applicability and cost.

Run with::

    python examples/strategy_comparison.py [--size 500]

Reproduces, in miniature, the story of the paper's Section 4: on the
synthetic q1/q2 workload it times every applicable strategy, prints the
speedup matrix, and explains *why* each strategy lands where it does by
showing operator/row statistics from the executor.
"""

import argparse
import time

from repro import RewriteError
from repro.synthetic import SyntheticConfig, load_synthetic, q1_sql, q2_sql

STRATEGIES = ("gen", "left", "move", "unn")


def measure(db, sql: str, strategy: str):
    started = time.perf_counter()
    try:
        relation = db.provenance(sql, strategy=strategy)
    except RewriteError as exc:
        return None, str(exc).split(";")[0]
    elapsed = time.perf_counter() - started
    stats = db.last_stats
    detail = (f"{len(relation.rows)} prov rows, "
              f"{stats.hash_joins} hash / "
              f"{stats.nested_loop_joins} nested-loop joins, "
              f"{stats.sublink_executions} sublink execs")
    return elapsed, detail


def compare(db, name: str, sql: str) -> None:
    print(f"== {name} ==")
    print(" ", " ".join(sql.split()))
    timings = {}
    for strategy in STRATEGIES:
        elapsed, detail = measure(db, sql, strategy)
        if elapsed is None:
            print(f"  {strategy:5s}  not applicable: {detail}")
            continue
        timings[strategy] = elapsed
        print(f"  {strategy:5s}  {elapsed * 1000:9.2f} ms   ({detail})")
    if "gen" in timings:
        fastest = min(timings, key=timings.get)
        ratio = timings["gen"] / timings[fastest]
        print(f"  -> Gen is {ratio:,.0f}x slower than {fastest} "
              f"(the paper's Figures 7-9 shape)")
    print()


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--size", type=int, default=500,
                        help="size of both synthetic relations")
    args = parser.parse_args()

    # load_synthetic returns the legacy facade; compare through its
    # session object (the uncached path — we are timing the rewrites).
    db = load_synthetic(SyntheticConfig(args.size, args.size, seed=0))
    db = db.connection
    print(f"synthetic tables r1, r2 with {args.size} rows each\n")

    compare(db, "q1: equality ANY (all four strategies apply)",
            q1_sql(args.size, args.size, seed=0))
    compare(db, "q2: inequality ALL (Unn has no rewrite for this)",
            q2_sql(args.size, args.size, seed=0))

    print("strategy applicability summary:")
    print("  gen   every sublink type, incl. correlated & nested")
    print("  left  uncorrelated sublinks (left outer join on Jsub)")
    print("  move  uncorrelated; sublink values moved into a projection")
    print("  unn   uncorrelated EXISTS / equality-ANY in conjunctions")


if __name__ == "__main__":
    main()
