"""Expression AST helpers and the 3VL evaluator."""

import pytest

from repro.errors import ExecutionError, ExpressionError
from repro.expressions.ast import (
    AggCall, Arith, BoolOp, Case, Cast, Col, Comparison, Const, FuncCall,
    IsNull, Like, Neg, Not, NullSafeEq, TRUE, FALSE, and_all,
    collect_columns, collect_sublinks, has_aggregate, or_all, transform,
    walk,
)
from repro.expressions.evaluator import EvalContext, Frame, evaluate
from repro.expressions.functions import call_function, register_function


def ctx(**values):
    names = list(values)
    frame = Frame(Frame.index_for(names), tuple(values[n] for n in names))
    return EvalContext((frame,), None)


def ev(expr, **values):
    return evaluate(expr, ctx(**values))


class TestBuilders:
    def test_and_all_flattens_and_drops_true(self):
        inner = BoolOp("and", (Const(1).eq(Const(1)),))
        combined = and_all([TRUE, inner, Const(2).eq(Const(2))])
        assert isinstance(combined, BoolOp)
        assert len(combined.items) == 2

    def test_and_all_empty_is_true(self):
        assert and_all([]) == TRUE

    def test_and_all_single_unwrapped(self):
        only = Const(1).eq(Const(2))
        assert and_all([only]) is only

    def test_or_all_flattens_and_drops_false(self):
        combined = or_all([FALSE, or_all([TRUE, FALSE])])
        assert combined == TRUE

    def test_or_all_empty_is_false(self):
        assert or_all([]) == FALSE


class TestTreeUtilities:
    def test_walk_visits_all_nodes(self):
        expr = and_all([Col("a").eq(Const(1)), Not(IsNull(Col("b")))])
        kinds = [type(node).__name__ for node in walk(expr)]
        assert "BoolOp" in kinds and "IsNull" in kinds and "Col" in kinds

    def test_transform_bottom_up(self):
        expr = Arith("+", Col("a"), Const(1))

        def rule(node):
            if isinstance(node, Col):
                return Const(41)
            return None

        assert ev(transform(expr, rule)) == 42

    def test_collect_columns_filters_level(self):
        expr = and_all([Col("a").eq(Col("b", level=1))])
        assert [c.name for c in collect_columns(expr, 0)] == ["a"]
        assert [c.name for c in collect_columns(expr, 1)] == ["b"]
        assert collect_sublinks(expr) == []

    def test_has_aggregate(self):
        assert has_aggregate(Arith("+", AggCall("sum", Col("a")), Const(1)))
        assert not has_aggregate(Col("a"))


class TestEvaluator:
    def test_constants_and_columns(self):
        assert ev(Const(7)) == 7
        assert ev(Col("a"), a=3) == 3

    def test_unknown_column_raises(self):
        with pytest.raises(ExpressionError, match="unknown column"):
            ev(Col("missing"), a=1)

    def test_level_out_of_range_raises(self):
        with pytest.raises(ExpressionError, match="exceeds"):
            ev(Col("a", level=3), a=1)

    def test_correlated_lookup(self):
        outer = Frame(Frame.index_for(["x"]), (10,))
        inner = Frame(Frame.index_for(["y"]), (20,))
        context = EvalContext((outer, inner), None)
        assert evaluate(Col("x", level=1), context) == 10
        assert evaluate(Col("y", level=0), context) == 20

    def test_shadowing_uses_innermost(self):
        outer = Frame(Frame.index_for(["x"]), (1,))
        inner = Frame(Frame.index_for(["x"]), (2,))
        context = EvalContext((outer, inner), None)
        assert evaluate(Col("x"), context) == 2
        assert evaluate(Col("x", level=1), context) == 1

    def test_comparison_3vl(self):
        assert ev(Comparison("<", Col("a"), Const(5)), a=None) is None

    def test_null_safe_eq_node(self):
        assert ev(NullSafeEq(Const(None), Const(None))) is True
        assert ev(NullSafeEq(Const(None), Const(1))) is False

    def test_and_short_circuit_false(self):
        expr = and_all([FALSE, Comparison("=", Const(1), Const("boom"))])
        assert ev(expr) is False  # incompatible comparison never evaluated

    def test_or_short_circuit_true(self):
        expr = or_all([TRUE, Comparison("=", Const(1), Const("boom"))])
        assert ev(expr) is True

    def test_and_unknown(self):
        assert ev(and_all([TRUE, Const(None)])) is None

    def test_case_searched(self):
        expr = Case(((Comparison("<", Col("a"), Const(0)), Const("neg")),
                     (Comparison("=", Col("a"), Const(0)), Const("zero"))),
                    Const("pos"))
        assert ev(expr, a=-1) == "neg"
        assert ev(expr, a=0) == "zero"
        assert ev(expr, a=3) == "pos"

    def test_case_unknown_condition_falls_through(self):
        expr = Case(((Comparison("<", Col("a"), Const(0)), Const("neg")),),
                    Const("default"))
        assert ev(expr, a=None) == "default"

    def test_like(self):
        assert ev(Like(Const("forest green"), Const("forest%"))) is True
        assert ev(Like(Const("abc"), Const("a_c"))) is True
        assert ev(Like(Const("abc"), Const("a_d"))) is False
        assert ev(Like(Const(None), Const("a%"))) is None

    def test_like_escapes_regex_metacharacters(self):
        assert ev(Like(Const("a.c"), Const("a.c"))) is True
        assert ev(Like(Const("abc"), Const("a.c"))) is False

    def test_cast(self):
        assert ev(Cast(Const("12"), "int")) == 12
        assert ev(Cast(Const(3), "text")) == "3"
        assert ev(Cast(Const(None), "int")) is None
        with pytest.raises(ExpressionError):
            ev(Cast(Const("xyz"), "int"))

    def test_is_null(self):
        assert ev(IsNull(Const(None))) is True
        assert ev(Not(IsNull(Const(1)))) is True

    def test_neg(self):
        assert ev(Neg(Const(4))) == -4

    def test_function_call(self):
        assert ev(FuncCall("abs", (Const(-3),))) == 3
        assert ev(FuncCall("coalesce",
                           (Const(None), Const(None), Const(9)))) == 9

    def test_aggcall_outside_aggregate_raises(self):
        with pytest.raises(ExpressionError, match="aggregate"):
            ev(AggCall("sum", Col("a")), a=1)

    def test_sublink_without_engine_raises(self):
        from repro.expressions.ast import Sublink, SublinkKind
        from repro.algebra.operators import Values
        from repro.schema import Schema
        sub = Sublink(SublinkKind.EXISTS, Values(Schema.of("x"), [(1,)]))
        with pytest.raises(ExecutionError):
            ev(sub)


class TestScalarFunctions:
    def test_substr_one_based(self):
        assert call_function("substr", ["hello", 2, 3]) == "ell"
        assert call_function("substring", ["13-555", 1, 2]) == "13"

    def test_substr_clamps(self):
        assert call_function("substr", ["ab", 1, 10]) == "ab"
        assert call_function("substr", ["ab", 0, 1]) == "a"

    def test_null_in_null_out(self):
        assert call_function("upper", [None]) is None
        assert call_function("length", [None]) is None

    def test_string_helpers(self):
        assert call_function("upper", ["ab"]) == "AB"
        assert call_function("trim", ["  x "]) == "x"
        assert call_function("replace", ["aaa", "a", "b"]) == "bbb"

    def test_nullif_and_concat(self):
        assert call_function("nullif", [1, 1]) is None
        assert call_function("nullif", [1, 2]) == 1
        assert call_function("concat", ["a", None, "b"]) == "ab"

    def test_unknown_function_raises(self):
        with pytest.raises(ExpressionError, match="unknown function"):
            call_function("frobnicate", [])

    def test_error_wrapped(self):
        with pytest.raises(ExpressionError, match="error in"):
            call_function("sqrt", [-1])

    def test_register_udf(self):
        register_function("double_it", lambda x: x * 2)
        assert call_function("double_it", [21]) == 42
