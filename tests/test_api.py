"""The session API: Connection / Cursor / PreparedStatement, parameter
binding, and the legacy Database shim."""

from __future__ import annotations

import pytest

from repro import (
    AnalyzerError, BindError, Connection, Database, InterfaceError,
    Relation, SessionConfig, SQLSyntaxError, connect,
)


@pytest.fixture
def conn() -> Connection:
    connection = connect()
    cur = connection.cursor()
    cur.execute("CREATE TABLE r (a int, b int)")
    cur.executemany("INSERT INTO r VALUES (?, ?)",
                    [(1, 1), (2, 1), (3, 2)])
    cur.execute("CREATE TABLE s (c int, d int)")
    cur.executemany("INSERT INTO s VALUES (?, ?)",
                    [(1, 3), (2, 4), (4, 5)])
    return connection


class TestParameterBinding:
    def test_int_float_text_params(self, conn):
        cur = conn.cursor()
        cur.execute("CREATE TABLE t (i int, f float, s text)")
        cur.execute("INSERT INTO t VALUES (?, ?, ?)", (7, 2.5, "x"))
        cur.execute("SELECT i, f, s FROM t WHERE i = ? AND s = ?",
                    (7, "x"))
        assert cur.fetchall() == [(7, 2.5, "x")]

    def test_null_binding(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT ? AS v FROM r WHERE a = 1", (None,))
        assert cur.fetchall() == [(None,)]

    def test_null_in_predicate_filters_all(self, conn):
        # a = NULL is unknown for every row: empty result, no crash.
        cur = conn.cursor()
        cur.execute("SELECT a FROM r WHERE a = ?", (None,))
        assert cur.fetchall() == []

    def test_too_few_params(self, conn):
        with pytest.raises(BindError, match="takes 2 parameter"):
            conn.execute("SELECT * FROM r WHERE a = ? AND b = ?", (1,))

    def test_too_many_params(self, conn):
        with pytest.raises(BindError, match="takes 1 parameter"):
            conn.execute("SELECT * FROM r WHERE a = ?", (1, 2))

    def test_params_on_parameterless_statement(self, conn):
        with pytest.raises(BindError, match="takes 0 parameter"):
            conn.execute("SELECT * FROM r", (1,))

    def test_param_inside_sublink(self, conn):
        rows = conn.execute(
            "SELECT a FROM r WHERE a = ANY (SELECT c FROM s WHERE c < ?)",
            (2,)).rows
        assert rows == [(1,)]

    def test_params_do_not_leak_between_executions(self, conn):
        ps = conn.prepare("SELECT a FROM r WHERE a = ?")
        assert ps.execute((1,)).rows == [(1,)]
        assert ps.execute((3,)).rows == [(3,)]

    def test_delete_with_param(self, conn):
        removed = conn.execute("DELETE FROM s WHERE c = ?", (2,))
        assert removed == 1
        assert sorted(conn.execute("SELECT c FROM s").rows) == [(1,), (4,)]

    def test_params_in_ddl_rejected(self, conn):
        with pytest.raises(SQLSyntaxError, match="parameters"):
            conn.execute("CREATE VIEW v AS SELECT a FROM r WHERE a = ?")

    def test_view_definition_with_param_rejected(self, conn):
        with pytest.raises(AnalyzerError, match="parameters"):
            conn.create_view("v", "SELECT a FROM r WHERE a = ?")

    def test_provenance_query_with_params(self, conn):
        ps = conn.prepare(
            "SELECT PROVENANCE * FROM r WHERE a = ANY "
            "(SELECT c FROM s WHERE c < ?)")
        wide = sorted(ps.execute((10,)).rows)
        narrow = sorted(ps.execute((2,)).rows)
        assert wide == [(1, 1, 1, 1, 1, 3), (2, 1, 2, 1, 2, 4)]
        assert narrow == [(1, 1, 1, 1, 1, 3)]


class TestCursor:
    def test_description_and_rowcount(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a, b FROM r ORDER BY a")
        assert [entry[0] for entry in cur.description] == ["a", "b"]
        assert cur.rowcount == 3

    def test_description_none_without_result(self, conn):
        cur = conn.cursor()
        cur.execute("CREATE TABLE t (x int)")
        assert cur.description is None

    def test_fetch_interfaces(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM r ORDER BY a")
        assert cur.fetchone() == (1,)
        assert cur.fetchmany(1) == [(2,)]
        assert cur.fetchall() == [(3,)]
        assert cur.fetchone() is None

    def test_iteration(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM r ORDER BY a")
        assert list(cur) == [(1,), (2,), (3,)]

    def test_fetch_without_result_raises(self, conn):
        cur = conn.cursor()
        with pytest.raises(InterfaceError, match="no result set"):
            cur.fetchall()

    def test_executemany_accumulates_rowcount(self, conn):
        cur = conn.cursor()
        cur.execute("CREATE TABLE t (x int)")
        cur.executemany("INSERT INTO t VALUES (?)", [(1,), (2,), (3,)])
        assert cur.rowcount == 3

    def test_closed_cursor_raises(self, conn):
        cur = conn.cursor()
        cur.close()
        with pytest.raises(InterfaceError, match="cursor is closed"):
            cur.execute("SELECT 1 AS x")

    def test_closed_connection_raises(self):
        connection = connect()
        connection.close()
        with pytest.raises(InterfaceError, match="connection is closed"):
            connection.cursor()

    def test_context_managers(self):
        with connect() as connection:
            with connection.cursor() as cur:
                cur.execute("SELECT 1 AS x")
                assert cur.fetchall() == [(1,)]
        assert connection.closed

    def test_relation_result(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM r WHERE a = 1")
        assert isinstance(cur.relation, Relation)
        assert cur.relation.schema.names == ("a",)


class TestPreparedStatement:
    def test_metadata(self, conn):
        ps = conn.prepare("SELECT a, b FROM r WHERE a = ?")
        assert ps.is_select
        assert ps.param_count == 1
        assert ps.column_names == ("a", "b")

    def test_non_select_prepared(self, conn):
        ps = conn.prepare("INSERT INTO s VALUES (?, ?)")
        assert not ps.is_select
        assert ps.column_names is None
        assert ps.executemany([(7, 7), (8, 8)]) == 2
        assert (7, 7) in conn.execute("SELECT * FROM s").rows

    def test_prepare_unknown_table_fails_eagerly(self, conn):
        with pytest.raises(Exception, match="ghost"):
            conn.prepare("SELECT * FROM ghost")

    def test_closed_statement_raises(self, conn):
        ps = conn.prepare("SELECT a FROM r")
        ps.close()
        with pytest.raises(InterfaceError, match="closed"):
            ps.execute()

    def test_strategy_override(self, conn):
        sql = "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)"
        unn = conn.prepare(sql, strategy="unn")
        gen = conn.prepare(sql, strategy="gen")
        assert sorted(unn.execute().rows) == sorted(gen.execute().rows)

    def test_survives_ddl_replan(self, conn):
        conn.create_view("v", "SELECT a FROM r WHERE a >= 2")
        ps = conn.prepare("SELECT a FROM v ORDER BY a")
        assert ps.execute().rows == [(2,), (3,)]
        conn.execute("DROP VIEW v")
        conn.create_view("v", "SELECT a FROM r WHERE a < 2")
        # the catalog generation changed: the statement replans itself
        assert ps.execute().rows == [(1,)]


class TestConnectionHelpers:
    def test_connect_options_shorthand(self):
        connection = connect(default_strategy="left", plan_cache_size=7)
        assert connection.config.default_strategy == "left"
        assert connection.plan_cache.capacity == 7

    def test_connect_rejects_unknown_strategy(self):
        with pytest.raises(InterfaceError, match="unknown default_strategy"):
            connect(default_strategy="turbo")

    def test_session_config_validation(self):
        with pytest.raises(InterfaceError, match="plan_cache_size"):
            SessionConfig(plan_cache_size=-1)

    def test_with_options_copy(self):
        config = SessionConfig()
        changed = config.with_options(optimize=False)
        assert changed.optimize is False and config.optimize is True

    def test_one_shot_helpers_match_database(self, conn):
        sql = "SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)"
        db = Database(conn)
        assert sorted(conn.sql(sql).rows) == sorted(db.sql(sql).rows)
        assert conn.explain("SELECT a FROM r") == \
            db.explain("SELECT a FROM r")

    def test_default_strategy_applies_to_bare_provenance(self):
        connection = connect(default_strategy="unn")
        cur = connection.cursor()
        cur.execute("CREATE TABLE r (a int)")
        cur.execute("CREATE TABLE s (c int)")
        cur.execute("INSERT INTO r VALUES (1), (2)")
        cur.execute("INSERT INTO s VALUES (1)")
        # Unn applies; with default_strategy=unn the bare PROVENANCE query
        # plans as an Unn rewrite (visible as a plain join, no sublinks).
        text = connection.explain(
            "SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s)")
        assert "any" not in text.lower()

    def test_execution_stats_exposed(self, conn):
        conn.execute("SELECT * FROM r")
        assert conn.last_stats is not None
        assert conn.last_stats.rows_produced >= 3

    def test_collect_stats_toggle(self):
        connection = connect(collect_stats=False)
        cur = connection.cursor()
        cur.execute("CREATE TABLE t (x int)")
        cur.execute("INSERT INTO t VALUES (1)")
        cur.execute("SELECT x FROM t")
        assert connection.last_stats.operator_evals == {}
        # the cheap scalar counters are still maintained
        assert connection.last_stats.rows_produced >= 1

    def test_config_default_strategy_honored_by_rewriter(self):
        # Rewriters built directly (not through a Connection) also treat
        # the config's default_strategy as the meaning of "auto".
        from repro.provenance.planner import StrategyPlanner
        planner = StrategyPlanner(
            "auto", SessionConfig(default_strategy="gen"))
        assert planner.strategy == "gen"
        assert planner._forced is not None


class TestDatabaseShim:
    def test_shim_shares_catalog_with_connection(self, conn):
        db = Database(conn)
        db.execute("CREATE TABLE shared (x int)")
        assert "shared" in conn.catalog
        assert conn.execute("SELECT * FROM shared").rows == []

    def test_views_live_in_catalog(self):
        db = Database()
        db.create_view("v", "SELECT 1 AS x")
        assert "v" in db.views
        assert db.connection.catalog.has_view("v")
        db.execute("DROP VIEW v")
        assert "v" not in db.views

    def test_direct_views_mutation_bumps_catalog_version(self):
        from repro.sql.parser import parse_statement
        db = Database()
        db.execute("CREATE TABLE r (a int)")
        db.execute("INSERT INTO r VALUES (1), (2)")
        conn = db.connection
        # legacy idiom: assign into db.views directly
        db.views["v"] = parse_statement("SELECT a FROM r")
        cur = conn.cursor()
        cur.execute("SELECT a FROM v")
        assert cur.rowcount == 2
        db.views["v"] = parse_statement("SELECT a FROM r WHERE a = 1")
        cur.execute("SELECT a FROM v")   # cached plan must be stale now
        assert cur.fetchall() == [(1,)]
        del db.views["v"]
        assert not conn.catalog.has_view("v")
        with pytest.raises(KeyError):
            del db.views["v"]

    def test_sql_does_not_mutate_parsed_statement(self):
        from repro.sql.parser import parse_statement
        db = Database()
        db.execute("CREATE TABLE r (a int)")
        db.execute("INSERT INTO r VALUES (1), (2)")
        statement = parse_statement("SELECT PROVENANCE a FROM r")
        assert statement.provenance == "auto"
        first = db._run_select(statement)
        # the seed implementation cleared .provenance here, making parsed
        # statements single-use; planning is now non-destructive
        assert statement.provenance == "auto"
        second = db._run_select(statement)
        assert sorted(first.rows) == sorted(second.rows)
        assert first.schema.names == second.schema.names

    def test_plan_is_repeatable(self):
        db = Database()
        db.execute("CREATE TABLE r (a int)")
        one = db.explain("SELECT PROVENANCE a FROM r")
        two = db.explain("SELECT PROVENANCE a FROM r")
        assert one == two and "prov_r_a" in one

    def test_strategy_override_still_works(self):
        db = Database()
        db.execute("CREATE TABLE r (a int)")
        db.execute("INSERT INTO r VALUES (1)")
        rows = db.sql("SELECT a FROM r", strategy="gen").rows
        assert rows == [(1, 1)]  # provenance column appended

    def test_delete_uses_public_analyzer_entry_point(self):
        db = Database()
        db.execute("CREATE TABLE t (x int, y int)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        db.execute("DELETE FROM t WHERE x >= 2 AND y < 30")
        assert sorted(db.sql("SELECT x FROM t").rows) == [(1,), (3,)]

    def test_delete_with_qualified_column(self):
        db = Database()
        db.execute("CREATE TABLE t (x int)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("DELETE FROM t WHERE t.x = 2")
        assert db.sql("SELECT x FROM t").rows == [(1,)]


class TestAnalyzeExpression:
    def test_public_expression_analysis(self):
        from repro.expressions.ast import Col
        from repro.schema import Attribute, Schema
        from repro.sql.analyzer import Analyzer
        from repro.sql.parser import _Parser
        from repro.sql.lexer import tokenize
        from repro import Catalog, SQLType

        schema = Schema([Attribute("x", SQLType.INTEGER)])
        expr = _Parser(tokenize("x + 1")).parse_expr()
        analyzed = Analyzer(Catalog()).analyze_expression(expr, schema)
        assert analyzed.left == Col("x")

    def test_unknown_column_raises(self):
        from repro.schema import Attribute, Schema
        from repro.sql.analyzer import Analyzer
        from repro.sql.parser import _Parser
        from repro.sql.lexer import tokenize
        from repro import Catalog, SQLType

        schema = Schema([Attribute("x", SQLType.INTEGER)])
        expr = _Parser(tokenize("y = 1")).parse_expr()
        with pytest.raises(AnalyzerError, match="unknown column"):
            Analyzer(Catalog()).analyze_expression(expr, schema)
