"""Transactions: BEGIN/COMMIT/ROLLBACK, snapshot isolation over a shared
Engine, copy-on-write restore semantics, and the DB-API 2.0 surface."""

from __future__ import annotations

import pytest

import repro
from repro import (
    CatalogError, Connection, Engine, IntegrityError, InterfaceError,
    ProgrammingError, TransactionError, connect,
)


@pytest.fixture
def engine() -> Engine:
    eng = Engine()
    conn = eng.connect()
    conn.execute("CREATE TABLE t (x int, y int)")
    conn.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    conn.close()
    return eng


def rows(conn, sql="SELECT x, y FROM t"):
    return sorted(conn.execute(sql).rows)


class TestTransactionBasics:
    def test_begin_commit_sql(self, engine):
        conn = engine.connect()
        conn.execute("BEGIN")
        assert conn.in_transaction
        conn.execute("INSERT INTO t VALUES (3, 30)")
        conn.execute("COMMIT")
        assert not conn.in_transaction
        assert (3, 30) in rows(conn)

    def test_begin_work_and_transaction_spellings(self, engine):
        conn = engine.connect()
        conn.execute("BEGIN TRANSACTION")
        conn.execute("ROLLBACK WORK")
        conn.execute("BEGIN WORK")
        conn.execute("COMMIT TRANSACTION")

    def test_rollback_discards_writes(self, engine):
        conn = engine.connect()
        before = rows(conn)
        conn.begin()
        conn.execute("INSERT INTO t VALUES (3, 30)")
        conn.execute("DELETE FROM t WHERE x = 1")
        assert rows(conn) != before        # txn sees its own writes
        conn.rollback()
        assert rows(conn) == before

    def test_nested_begin_rejected(self, engine):
        conn = engine.connect()
        conn.begin()
        with pytest.raises(ProgrammingError, match="already in progress"):
            conn.begin()
        conn.rollback()

    def test_commit_rollback_without_txn_are_noops(self, engine):
        conn = engine.connect()
        conn.commit()
        conn.rollback()

    def test_context_manager_commits(self, engine):
        conn = engine.connect()
        with conn.transaction():
            conn.execute("INSERT INTO t VALUES (7, 70)")
        assert (7, 70) in rows(conn)

    def test_context_manager_rolls_back_on_error(self, engine):
        conn = engine.connect()
        with pytest.raises(RuntimeError):
            with conn.transaction():
                conn.execute("INSERT INTO t VALUES (8, 80)")
                raise RuntimeError("boom")
        assert (8, 80) not in rows(conn)

    def test_autocommit_off_implicitly_begins(self, engine):
        conn = engine.connect()
        other = engine.connect()
        conn.autocommit = False
        conn.execute("INSERT INTO t VALUES (9, 90)")
        assert conn.in_transaction
        assert (9, 90) not in rows(other)
        conn.commit()
        assert (9, 90) in rows(other)

    def test_autocommit_off_explicit_begin_still_works(self, engine):
        conn = engine.connect()
        conn.autocommit = False
        conn.execute("BEGIN")            # must not collide with the
        assert conn.in_transaction       # implicit-transaction machinery
        conn.execute("ROLLBACK")
        assert not conn.in_transaction

    def test_autocommit_off_prepared_statements_join_the_txn(self, engine):
        """Every statement surface — cursors, prepared statements,
        executemany — shares the implicit transaction: repeatable
        reads hold across all of them."""
        conn = engine.connect()
        other = engine.connect()
        conn.autocommit = False
        ps = conn.prepare("SELECT count(*) AS n FROM t")
        assert ps.execute().rows == [(2,)]
        assert conn.in_transaction       # prepared execute began it
        other.execute("INSERT INTO t VALUES (9, 90)")
        assert ps.execute().rows == [(2,)]          # repeatable read
        cur = conn.cursor()
        cur.executemany("SELECT x FROM t WHERE x = ?", [(9,)])
        assert cur.rowcount == 0         # executemany: same snapshot
        conn.rollback()
        # a fresh implicit transaction sees the committed insert
        assert ps.execute().rows == [(3,)]
        conn.commit()


class TestSnapshotIsolation:
    def test_uncommitted_writes_invisible(self, engine):
        writer = engine.connect()
        reader = engine.connect()
        writer.execute("BEGIN")
        writer.execute("INSERT INTO t VALUES (3, 30)")
        writer.execute("DELETE FROM t WHERE x = 1")
        assert rows(writer) == [(2, 20), (3, 30)]
        assert rows(reader) == [(1, 10), (2, 20)]
        writer.execute("COMMIT")
        assert rows(reader) == [(2, 20), (3, 30)]

    def test_repeatable_reads_inside_txn(self, engine):
        reader = engine.connect()
        writer = engine.connect()
        reader.begin()
        first = rows(reader)
        writer.execute("INSERT INTO t VALUES (3, 30)")
        assert rows(reader) == first       # snapshot as of BEGIN
        reader.commit()
        assert (3, 30) in rows(reader)

    def test_first_committer_wins(self, engine):
        a = engine.connect()
        b = engine.connect()
        a.begin()
        b.begin()
        a.execute("INSERT INTO t VALUES (100, 1)")
        b.execute("INSERT INTO t VALUES (200, 2)")
        a.commit()
        with pytest.raises(TransactionError, match="could not serialize"):
            b.commit()
        # the loser's writes are gone; the winner's persisted
        final = rows(engine.connect())
        assert (100, 1) in final and (200, 2) not in final

    def test_concurrent_index_ddl_on_written_table_conflicts(self, engine):
        """A committing writer must not silently erase an index another
        session created (or resurrect one it dropped) on a table the
        writer swapped — that is a serialization conflict."""
        a = engine.connect()
        b = engine.connect()
        a.begin()
        a.execute("INSERT INTO t VALUES (3, 30)")
        b.execute("CREATE INDEX t_x ON t (x)")     # concurrent DDL commit
        with pytest.raises(TransactionError, match="indexes on table"):
            a.commit()
        assert engine.catalog.index_names() == ["t_x"]   # survived
        # the writer retries against the new state and succeeds
        a.begin()
        a.execute("INSERT INTO t VALUES (3, 30)")
        a.commit()
        assert engine.catalog.get_index("t_x").lookup(3) == [(3, 30)]

    def test_analyze_of_recreated_table_publishes_stats(self, engine):
        conn = engine.connect()
        conn.execute("ANALYZE t")
        conn.begin()
        conn.execute("DROP TABLE t")
        conn.execute("CREATE TABLE t (y int)")
        conn.execute("INSERT INTO t VALUES (5), (6)")
        conn.execute("ANALYZE t")
        conn.commit()
        stats = engine.catalog.stats.get("t")
        assert stats is not None and stats.row_count == 2

    def test_concurrent_view_creation_conflicts(self, engine):
        a = engine.connect()
        b = engine.connect()
        a.begin()
        b.begin()
        a.execute("CREATE VIEW v AS SELECT x FROM t WHERE x = 1")
        b.execute("CREATE VIEW v AS SELECT x FROM t WHERE x = 2")
        a.commit()
        with pytest.raises(TransactionError, match="view 'v'"):
            b.commit()
        # the first committer's definition survived
        assert rows(engine.connect(), "SELECT x FROM v") == [(1,)]

    def test_disjoint_tables_do_not_conflict(self, engine):
        setup = engine.connect()
        setup.execute("CREATE TABLE u (z int)")
        a = engine.connect()
        b = engine.connect()
        a.begin()
        b.begin()
        a.execute("INSERT INTO t VALUES (100, 1)")
        b.execute("INSERT INTO u VALUES (5)")
        a.commit()
        b.commit()          # different table: no conflict
        assert (5,) in engine.connect().execute("SELECT z FROM u").rows

    def test_ddl_inside_txn_is_private(self, engine):
        conn = engine.connect()
        other = engine.connect()
        conn.begin()
        conn.execute("CREATE TABLE fresh (a int)")
        conn.execute("INSERT INTO fresh VALUES (1)")
        conn.execute("CREATE VIEW v AS SELECT a FROM fresh")
        assert conn.execute("SELECT a FROM v").rows == [(1,)]
        assert "fresh" not in other.catalog
        assert not other.catalog.has_view("v")
        conn.commit()
        assert other.execute("SELECT a FROM v").rows == [(1,)]


class TestRollbackRestores:
    def test_rollback_restores_tables_indexes_and_stats(self, engine):
        conn = engine.connect()
        conn.execute("CREATE UNIQUE INDEX t_x ON t (x)")
        conn.execute("ANALYZE t")
        stats_version = conn.catalog.stats_version
        catalog_version = conn.catalog.version
        row_count = conn.catalog.stats.get("t").row_count

        conn.begin()
        conn.execute("INSERT INTO t VALUES (3, 30)")
        conn.execute("CREATE INDEX t_y ON t (y)")
        conn.execute("ANALYZE t")
        conn.rollback()

        # ... and the shared state never moved
        assert rows(conn) == [(1, 10), (2, 20)]
        assert conn.catalog.version == catalog_version
        assert conn.catalog.stats_version == stats_version
        assert conn.catalog.stats.get("t").row_count == row_count
        assert conn.catalog.index_names() == ["t_x"]
        assert conn.catalog.get_index("t_x").lookup(3) == []

    def test_rollback_of_drop_table(self, engine):
        conn = engine.connect()
        conn.begin()
        conn.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            conn.execute("SELECT * FROM t").rows
        conn.rollback()
        assert rows(conn) == [(1, 10), (2, 20)]

    def test_committed_index_ddl_in_txn(self, engine):
        conn = engine.connect()
        conn.begin()
        conn.execute("CREATE UNIQUE INDEX t_x ON t (x)")
        conn.commit()
        assert conn.catalog.get_index("t_x").lookup(1) == [(1, 10)]
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO t VALUES (1, 99)")


class TestStatementAtomicity:
    def test_unique_violation_rolls_back_whole_statement(self, engine):
        conn = engine.connect()
        conn.execute("CREATE UNIQUE INDEX t_x ON t (x)")
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO t VALUES (5, 50), (1, 11)")
        # all-or-nothing: the valid leading row did not survive
        assert rows(conn) == [(1, 10), (2, 20)]

    def test_statement_atomicity_inside_explicit_txn(self, engine):
        """A failed multi-row INSERT inside an open transaction must not
        leave its leading rows behind — earlier *statements* survive,
        the failed statement vanishes entirely."""
        conn = engine.connect()
        conn.execute("CREATE UNIQUE INDEX t_x ON t (x)")
        conn.begin()
        conn.execute("INSERT INTO t VALUES (3, 30)")     # earlier stmt
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO t VALUES (5, 50), (1, 11)")
        assert rows(conn) == [(1, 10), (2, 20), (3, 30)]
        conn.commit()
        assert rows(conn) == [(1, 10), (2, 20), (3, 30)]
        # and the committed index agrees (no ghost entries for 5)
        assert engine.catalog.get_index("t_x").lookup(5) == []

    def test_in_txn_dml_does_not_tear_open_streams(self, engine):
        """A transaction's own still-streaming SELECT must keep reading
        the rows it opened against, even as later statements in the same
        transaction insert and delete."""
        conn = engine.connect(batch_size=4)
        conn.insert("t", [(i, 0) for i in range(100, 140)])
        conn.begin()
        conn.execute("INSERT INTO t VALUES (900, 9)")    # privatize t
        result = conn.execute("SELECT x FROM t")         # 43 rows total
        first = result.fetch(2)
        conn.execute("DELETE FROM t WHERE x >= 100")
        conn.execute("INSERT INTO t VALUES (901, 9)")
        assert len(result.rows) == 43        # the open stream: untorn
        assert first == result.rows[:2]
        # a fresh statement sees the transaction's current state:
        # (1,10) (2,20) survive the DELETE (x < 100), plus (901,9)
        assert sorted(conn.execute("SELECT x FROM t").rows) == \
            [(1,), (2,), (901,)]
        conn.rollback()

    def test_integrity_error_is_catalog_error(self):
        assert issubclass(IntegrityError, CatalogError)
        assert issubclass(IntegrityError, repro.DatabaseError)

    def test_executemany_is_all_or_nothing(self, engine):
        conn = engine.connect()
        conn.execute("CREATE UNIQUE INDEX t_x ON t (x)")
        cur = conn.cursor()
        with pytest.raises(IntegrityError):
            cur.executemany("INSERT INTO t VALUES (?, ?)",
                            [(6, 60), (7, 70), (1, 11)])
        assert rows(conn) == [(1, 10), (2, 20)]


class TestConnectionLifecycle:
    def test_close_is_idempotent(self, engine):
        conn = engine.connect()
        conn.close()
        conn.close()                        # second close: no-op
        with pytest.raises(InterfaceError):
            conn.execute("SELECT 1 AS x")

    def test_close_releases_engine_registration(self, engine):
        before = engine.session_count
        conn = engine.connect()
        assert engine.session_count == before + 1
        conn.close()
        assert engine.session_count == before

    def test_close_rolls_back_open_txn(self, engine):
        conn = engine.connect()
        conn.begin()
        conn.execute("INSERT INTO t VALUES (3, 30)")
        conn.close()
        assert (3, 30) not in rows(engine.connect())

    def test_engine_close_closes_sessions(self):
        eng = Engine()
        conn = eng.connect()
        eng.close()
        assert conn.closed
        with pytest.raises(InterfaceError, match="engine is closed"):
            eng.connect()

    def test_private_engine_per_plain_connect(self):
        a = connect()
        b = connect()
        assert a.engine is not b.engine
        a.execute("CREATE TABLE only_a (x int)")
        assert "only_a" not in b.catalog

    def test_shared_engine_shares_catalog_and_plan_cache(self, engine):
        a = engine.connect()
        b = engine.connect()
        assert a.catalog is b.catalog
        assert a.plan_cache is b.plan_cache
        a.execute("SELECT x FROM t WHERE x = 1").rows
        misses = engine.plan_cache.misses
        b.execute("SELECT x FROM t WHERE x = 1").rows
        assert engine.plan_cache.misses == misses   # b hit a's plan


class TestTransactionPlanCache:
    def test_txn_with_private_ddl_bypasses_shared_cache(self, engine):
        conn = engine.connect()
        size_before = len(engine.plan_cache)
        conn.begin()
        conn.execute("CREATE TABLE private (a int)")
        conn.execute("INSERT INTO private VALUES (1)")
        assert conn.execute("SELECT a FROM private").rows == [(1,)]
        assert len(engine.plan_cache) == size_before  # nothing leaked
        conn.rollback()

    def test_ddl_commit_invalidates_shared_plans(self, engine):
        conn = engine.connect()
        conn.create_view("v", "SELECT x FROM t WHERE x >= 2")
        assert sorted(conn.execute("SELECT x FROM v").rows) == [(2,)]
        with conn.transaction():
            conn.execute("DROP VIEW v")
            conn.execute("CREATE VIEW v AS SELECT x FROM t WHERE x < 2")
        # catalog generation moved at commit: the cached plan is stale
        assert sorted(conn.execute("SELECT x FROM v").rows) == [(1,)]


class TestDBAPIModuleInterface:
    def test_module_globals(self):
        assert repro.apilevel == "2.0"
        assert repro.threadsafety == 1
        assert repro.paramstyle == "qmark"

    def test_error_hierarchy(self):
        assert issubclass(repro.Error, repro.ReproError)
        assert issubclass(repro.InterfaceError, repro.Error)
        assert issubclass(repro.DatabaseError, repro.Error)
        for name in ("DataError", "OperationalError", "IntegrityError",
                     "InternalError", "ProgrammingError",
                     "NotSupportedError"):
            assert issubclass(getattr(repro, name), repro.DatabaseError)
        assert issubclass(repro.SQLSyntaxError, repro.ProgrammingError)
        assert issubclass(repro.AnalyzerError, repro.ProgrammingError)
        assert issubclass(repro.BindError, repro.ProgrammingError)
        assert issubclass(repro.ExecutionError, repro.OperationalError)
        assert issubclass(repro.TransactionError, repro.OperationalError)
        assert issubclass(repro.RewriteError, repro.NotSupportedError)
        assert issubclass(repro.UnsupportedFeatureError,
                          repro.NotSupportedError)
        assert issubclass(repro.Warning, Exception)

    def test_soft_keywords_stay_usable_as_identifiers(self):
        conn = connect()
        conn.execute("CREATE TABLE ledger (commit int, work int)")
        conn.execute("INSERT INTO ledger VALUES (1, 2)")
        assert conn.execute(
            "SELECT commit, work FROM ledger").rows == [(1, 2)]
