"""Threaded stress tests: N reader + M writer sessions over one shared
Engine, asserting snapshot consistency under concurrent commits.

The invariants:

* **atomic visibility** — every writer transaction inserts a balanced
  pair of rows (``+v`` and ``-v``); a reader summing the table must see
  0 at every instant, never a half-applied transaction;
* **unique indexes never corrupt** — concurrent writers racing inserts
  against one UNIQUE index end with table and index in exact agreement
  and no duplicate keys, however the conflicts and integrity errors
  interleaved.

Synchronization is **event-based**, never wall-clock: a
:class:`threading.Barrier` releases readers and writers together (so
readers actually observe mid-commit windows instead of racing a warmup),
and readers run until a done-event says every writer committed — not for
a fixed iteration count that a loaded CI box could finish before the
first write lands.  Writer retries are bounded by commit *progress*
(first-committer-wins guarantees some transaction wins every round, so
a loser retries at most once per concurrent commit), not by time.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import (
    Engine, IntegrityError, SerializationError, SessionConfig,
    TransactionError,
)

READERS = 4
WRITERS = 3
WRITES_PER_WRITER = 15
#: Ceiling on serialization-conflict retries per transaction.  Losing a
#: first-committer-wins race requires some *other* transaction to have
#: committed, so the retries of one transaction are bounded by the total
#: number of commits in the run — this is that bound, not a timing guess.
MAX_RETRIES = WRITERS * WRITES_PER_WRITER + READERS + 8


def _commit_with_retry(conn, apply, attempts: int = MAX_RETRIES) -> None:
    """Run *apply* in a transaction, retrying serialization conflicts
    (first-committer-wins makes losers retry, like any SI database)."""
    for _ in range(attempts):
        conn.begin()
        try:
            apply(conn)
            conn.commit()
            return
        except TransactionError:
            continue        # commit already rolled the txn back
        except BaseException:
            conn.rollback()
            raise
    raise AssertionError(
        "writer retried more often than the total number of commits in "
        "the run — conflicts are not making progress")


class TestBalancedInvariant:
    def test_readers_never_see_half_applied_transactions(self):
        engine = Engine()
        setup = engine.connect()
        setup.execute("CREATE TABLE acc (tag int, v int)")
        start = threading.Barrier(READERS + WRITERS)
        writers_done = threading.Event()
        done_lock = threading.Lock()
        writers_finished = [0]
        violations: list = []
        reads = [0] * READERS

        def writer(seed: int) -> None:
            conn = engine.connect()
            start.wait()
            try:
                for i in range(WRITES_PER_WRITER):
                    tag = seed * 1000 + i

                    def apply(c, tag=tag):
                        c.execute("INSERT INTO acc VALUES (?, ?)",
                                  (tag, 7))
                        c.execute("INSERT INTO acc VALUES (?, ?)",
                                  (tag, -7))
                    _commit_with_retry(conn, apply)
            finally:
                # the last writer to finish releases the readers
                with done_lock:
                    writers_finished[0] += 1
                    if writers_finished[0] == WRITERS:
                        writers_done.set()
                conn.close()

        def reader(slot: int) -> None:
            conn = engine.connect()
            start.wait()

            def observe() -> None:
                total = conn.execute(
                    "SELECT sum(v) AS s FROM acc").rows[0][0]
                if total not in (None, 0):
                    violations.append(total)
                # pairs must also arrive together, not one-sided
                odd = conn.execute(
                    "SELECT tag FROM acc GROUP BY tag "
                    "HAVING count(*) <> 2").rows
                if odd:
                    violations.append(("unpaired", odd))
                reads[slot] += 1

            while not writers_done.is_set():
                observe()
            observe()       # at least one read sees the final state
            conn.close()

        with ThreadPoolExecutor(max_workers=READERS + WRITERS) as pool:
            futures = [pool.submit(writer, seed)
                       for seed in range(WRITERS)]
            futures += [pool.submit(reader, slot)
                        for slot in range(READERS)]
            for future in futures:
                future.result()

        assert violations == []
        assert all(count >= 1 for count in reads)
        final = setup.execute("SELECT count(*) AS c FROM acc").rows[0][0]
        assert final == WRITERS * WRITES_PER_WRITER * 2
        engine.close()

    def test_snapshot_stable_while_writers_commit(self):
        engine = Engine()
        setup = engine.connect()
        setup.execute("CREATE TABLE log (x int)")
        setup.execute("INSERT INTO log VALUES (1)")

        reader = engine.connect()
        reader.begin()
        first = reader.execute("SELECT count(*) AS c FROM log").rows[0][0]

        def write() -> None:
            conn = engine.connect()
            for i in range(10):
                conn.execute("INSERT INTO log VALUES (?)", (i,))
            conn.close()

        thread = threading.Thread(target=write)
        thread.start()
        thread.join()
        # the open snapshot still sees the world as of BEGIN
        assert reader.execute(
            "SELECT count(*) AS c FROM log").rows[0][0] == first
        reader.commit()
        assert reader.execute(
            "SELECT count(*) AS c FROM log").rows[0][0] == first + 10
        engine.close()


class TestUniqueIndexUnderConcurrency:
    def test_unique_index_never_corrupts(self):
        engine = Engine()
        setup = engine.connect()
        setup.execute("CREATE TABLE reg (k int, who int)")
        setup.execute("CREATE UNIQUE INDEX reg_k ON reg (k)")
        keys = list(range(25))
        start = threading.Barrier(3)     # all claimers race from rest

        def claim(who: int) -> int:
            conn = engine.connect()
            start.wait()
            won = 0
            for key in keys:
                try:
                    def apply(c, key=key, who=who):
                        c.execute("INSERT INTO reg VALUES (?, ?)",
                                  (key, who))
                    _commit_with_retry(conn, apply)
                    won += 1
                except IntegrityError:
                    pass        # someone else claimed the key
            conn.close()
            return won

        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [pool.submit(claim, who) for who in range(3)]
            total_claimed = sum(future.result() for future in futures)

        rows = setup.execute("SELECT k, who FROM reg").rows
        assert total_claimed == len(keys)
        assert sorted(k for k, _ in rows) == keys       # each key once
        index = setup.catalog.get_index("reg_k")
        for key, who in rows:
            assert index.lookup(key) == [(key, who)]
        engine.close()


class TestPerTableCommitLocking:
    """The multi-writer conflict matrix for the per-table lock manager:
    commits conflict exactly on overlapping conflict sets (written /
    dropped / created tables plus index-DDL targets), never on mere
    engine sharing, and losing a race raises
    :class:`~repro.SerializationError` — a ``TransactionError`` so every
    existing retry loop keeps working."""

    def _engine(self, **options):
        engine = Engine(config=SessionConfig(**options))
        setup = engine.connect()
        setup.execute("CREATE TABLE a (x int)")
        setup.execute("CREATE TABLE b (x int)")
        return engine, setup

    def test_disjoint_table_writers_never_conflict(self):
        engine, setup = self._engine()
        a, b = engine.connect(), engine.connect()
        a.begin()
        b.begin()
        a.execute("INSERT INTO a VALUES (1)")
        b.execute("INSERT INTO b VALUES (2)")
        a.commit()      # overlapping lifetimes, disjoint write sets:
        b.commit()      # both must commit cleanly
        assert setup.execute("SELECT x FROM a").rows == [(1,)]
        assert setup.execute("SELECT x FROM b").rows == [(2,)]
        engine.close()

    def test_same_table_race_raises_serialization_error(self):
        engine, setup = self._engine()
        a, b = engine.connect(), engine.connect()
        a.begin()
        b.begin()
        a.execute("INSERT INTO a VALUES (1)")
        b.execute("INSERT INTO a VALUES (2)")
        a.commit()
        with pytest.raises(SerializationError,
                           match="could not serialize"):
            b.commit()
        assert isinstance(SerializationError("x"), TransactionError)
        assert setup.execute("SELECT x FROM a").rows == [(1,)]
        engine.close()

    def test_drop_races_with_writer_on_the_same_table(self):
        engine, setup = self._engine()
        a, b = engine.connect(), engine.connect()
        a.begin()
        b.begin()
        a.execute("INSERT INTO a VALUES (1)")
        b.execute("DROP TABLE a")
        b.commit()
        with pytest.raises(SerializationError,
                           match="could not serialize"):
            a.commit()
        assert "a" not in engine.catalog.names()
        engine.close()

    def test_same_index_name_race_is_a_conflict(self):
        """Two sessions racing CREATE INDEX with one name: the index
        name itself (``i:<name>``) is in the conflict set, so the loser
        conflicts (or hits the duplicate check) instead of silently
        clobbering the winner's index."""
        engine, setup = self._engine()
        a, b = engine.connect(), engine.connect()
        a.begin()
        b.begin()
        a.execute("CREATE INDEX ix ON a (x)")
        b.execute("CREATE INDEX ix ON b (x)")
        a.commit()
        with pytest.raises(TransactionError):
            b.commit()
        index = engine.catalog.get_index("ix")
        assert index.table == "a"       # the winner's definition stands
        engine.close()

    def test_commits_only_block_on_their_own_tables(self):
        """Deterministic proof the lock manager scopes commit mutual
        exclusion by name: while ``t:a`` is held externally, a commit on
        ``b`` completes, a commit on ``a`` parks, and releasing the key
        admits it."""
        engine, setup = self._engine()
        done_b = threading.Event()
        done_a = threading.Event()

        def insert(table: str, done: threading.Event) -> None:
            conn = engine.connect()
            conn.insert(table, [(9,)])      # autocommit: one commit
            done.set()
            conn.close()

        with engine.table_locks.acquire(["t:a"]):
            thread_b = threading.Thread(target=insert, args=("b", done_b))
            thread_b.start()
            assert done_b.wait(10)          # sails past the held a-key
            thread_a = threading.Thread(target=insert, args=("a", done_a))
            thread_a.start()
            thread_b.join(10)
            assert not done_a.is_set()      # parked on t:a (held here)
        assert done_a.wait(10)
        thread_a.join(10)
        assert setup.execute("SELECT x FROM a").rows == [(9,)]
        engine.close()

    def test_autocommit_retries_serialization_losses(self):
        """Statement-level autocommit must absorb first-committer-wins
        losses internally: concurrent single-statement INSERTs on one
        table all land without the caller ever seeing a conflict."""
        engine, setup = self._engine()
        rounds = 30
        start = threading.Barrier(2)

        def hammer(base: int) -> None:
            conn = engine.connect()
            start.wait()
            for i in range(rounds):
                conn.insert("a", [(base + i,)])
            conn.close()

        threads = [threading.Thread(target=hammer, args=(base,))
                   for base in (0, 1000)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        count = setup.execute("SELECT count(*) AS c FROM a").rows[0][0]
        assert count == 2 * rounds
        engine.close()

    @pytest.mark.parametrize("locking", ["table", "global"])
    def test_balanced_invariant_under_both_locking_modes(self, locking):
        """The atomic-visibility stress from above, repeated under both
        commit-locking modes: the lock manager changes throughput, never
        isolation semantics."""
        engine = Engine(config=SessionConfig(commit_locking=locking))
        setup = engine.connect()
        setup.execute("CREATE TABLE acc (tag int, v int)")
        writers, per_writer = 3, 8
        start = threading.Barrier(writers)

        def writer(seed: int) -> None:
            conn = engine.connect()
            start.wait()
            for i in range(per_writer):
                tag = seed * 100 + i

                def apply(c, tag=tag):
                    c.execute("INSERT INTO acc VALUES (?, ?)", (tag, 5))
                    c.execute("INSERT INTO acc VALUES (?, ?)", (tag, -5))
                _commit_with_retry(conn, apply)
            conn.close()

        threads = [threading.Thread(target=writer, args=(seed,))
                   for seed in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert setup.execute(
            "SELECT sum(v) AS s FROM acc").rows[0][0] == 0
        assert setup.execute(
            "SELECT count(*) AS c FROM acc").rows[0][0] == \
            writers * per_writer * 2
        engine.close()

    def test_view_ddl_takes_the_catalog_barrier(self):
        """Catalog-wide DDL (views) uses the global barrier path and
        still serializes correctly against table writers."""
        engine, setup = self._engine()
        setup.insert("a", [(1,), (2,)])
        done = threading.Event()

        def create_view() -> None:
            conn = engine.connect()
            conn.execute("CREATE VIEW va AS SELECT x FROM a")
            done.set()
            conn.close()

        thread = threading.Thread(target=create_view)
        thread.start()
        assert done.wait(10)
        thread.join(10)
        assert sorted(setup.execute("SELECT x FROM va").rows) == \
            [(1,), (2,)]
        engine.close()


class TestSharedPlanCacheUnderConcurrency:
    def test_concurrent_executions_of_one_cached_plan(self):
        """Many threads hammering the same SQL text must each get a
        private physical-plan instance (the pool), never shared operator
        state: results stay correct and complete."""
        engine = Engine()
        setup = engine.connect()
        setup.execute("CREATE TABLE t (x int)")
        setup.insert("t", [(i,) for i in range(500)])
        sql = "SELECT x FROM t WHERE x < 250"
        expected = sorted(setup.execute(sql).rows)

        def run() -> bool:
            conn = engine.connect(batch_size=32)
            ok = all(sorted(conn.execute(sql).rows) == expected
                     for _ in range(20))
            conn.close()
            return ok

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = [future.result()
                       for future in [pool.submit(run) for _ in range(6)]]
        assert all(results)
        engine.close()

    def test_interleaved_streaming_of_one_cached_plan(self):
        """Single-threaded, but two cursors stream the same cached plan
        at once — the instance pool must hand out distinct operator
        trees."""
        engine = Engine()
        conn = engine.connect(batch_size=4)
        conn.execute("CREATE TABLE t (x int)")
        conn.insert("t", [(i,) for i in range(64)])
        sql = "SELECT x FROM t"
        a = conn.cursor().execute(sql)
        b = conn.cursor().execute(sql)
        first_a = a.fetchmany(3)
        first_b = b.fetchmany(5)
        assert first_a == [(0,), (1,), (2,)]
        assert first_b == [(0,), (1,), (2,), (3,), (4,)]
        assert len(a.fetchall()) == 61
        assert len(b.fetchall()) == 59
        engine.close()
