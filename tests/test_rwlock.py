"""Regression tests for :class:`repro.api.engine.RWLock` re-entrancy
and for the per-table commit lock manager.

The two RWLock regressions here reproduce real deadlocks/corruptions in
the pre-fix lock (both are *guaranteed* to fail there — the first hung
forever, the second tripped the reader bookkeeping):

* **re-entrant read behind a waiting writer** — writer preference sent
  a thread's *second* ``acquire_read`` to the back of the queue.  The
  waiting writer can never run (the thread's first read entry is still
  held), so both threads deadlocked.  Correct behavior: a thread that
  was already admitted as a reader re-enters immediately.
* **write-owner read release at depth 0** — a thread holding the write
  lock may take the read side (it shares the write depth), but the
  owner's ``release_read`` only decremented the depth: when it dropped
  the *last* write entry (guards released in acquisition order), the
  owner was never cleared and waiters were never woken — the lock
  wedged forever.  Correct behavior: the owner's read release routes
  through the write-release bookkeeping, which clears and notifies at
  depth 0 and keeps the lock held otherwise.

All synchronization is event-based; the only bounded spin is the wait
for the writer thread to actually block inside ``acquire_write`` (there
is deliberately no public hook for "a writer is queued").  Threads are
daemons so a regression fails the assertion instead of hanging CI.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Engine, InterfaceError
from repro.api.engine import RWLock, TableLockManager

WAIT = 10.0     # generous upper bound for cross-thread events, seconds


def _spin_until(predicate, timeout: float = WAIT) -> bool:
    """Bounded poll for conditions with no event to wait on (a thread
    being parked inside ``Condition.wait``)."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.001)
    return True


class TestReadReentrancy:
    def test_reentrant_read_survives_a_waiting_writer(self):
        """The deadlock regression: reader holds the lock, a writer
        queues, the reader re-enters the read side — this must succeed
        immediately (pre-fix, it queued behind the writer forever)."""
        lock = RWLock()
        reentered = threading.Event()
        release_reader = threading.Event()

        def writer() -> None:
            with lock.write():
                pass

        writer_thread = threading.Thread(target=writer, daemon=True)

        def reader() -> None:
            with lock.read():
                writer_thread.start()
                # the writer must be parked in acquire_write before the
                # re-entrant read, or the test would not exercise the
                # writer-preference path at all
                assert _spin_until(lambda: lock._writers_waiting == 1)
                with lock.read():
                    reentered.set()
                    release_reader.wait(WAIT)

        reader_thread = threading.Thread(target=reader, daemon=True)
        reader_thread.start()
        assert reentered.wait(WAIT), \
            "re-entrant acquire_read deadlocked behind the waiting writer"
        release_reader.set()
        reader_thread.join(WAIT)
        writer_thread.join(WAIT)
        assert not writer_thread.is_alive()     # writer got its turn
        with lock.write():                      # and fully released it
            pass

    def test_nested_read_guards_balance(self):
        lock = RWLock()
        with lock.read():
            with lock.read():
                with lock.read():
                    pass
        # fully released: a writer acquires without waiting
        with lock.write():
            pass

    def test_unbalanced_read_release_is_rejected(self):
        lock = RWLock()
        with pytest.raises(AssertionError, match="matching acquire_read"):
            lock.release_read()
        with lock.read():
            pass
        with pytest.raises(AssertionError, match="matching acquire_read"):
            lock.release_read()


class TestWriteOwnerReadSharing:
    def test_write_owner_read_release_keeps_the_lock(self):
        """The bookkeeping regression: owner takes and releases the read
        side — the write lock must survive until release_write."""
        lock = RWLock()
        me = threading.get_ident()
        lock.acquire_write()
        lock.acquire_read()
        lock.release_read()
        # still exclusively held by this thread, depth back to 1
        assert lock._writer == me
        assert lock._write_depth == 1
        assert lock._readers == 0       # pre-fix: went to -1 here

        acquired = threading.Event()

        def reader() -> None:
            with lock.read():
                acquired.set()

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        assert not acquired.is_set()    # cannot pass while we own it
        lock.release_write()
        assert acquired.wait(WAIT)
        thread.join(WAIT)

    def test_out_of_order_owner_release_still_frees_the_lock(self):
        """The depth-0 regression: guards releasing in acquisition order
        (write, read released write-first) dropped the last write entry
        through the *reader* path, which never cleared the owner or woke
        waiters — the lock wedged forever.  The owner's read release
        must route through the write-release bookkeeping instead."""
        lock = RWLock()
        lock.acquire_write()
        lock.acquire_read()     # shares the write depth (now 2)
        lock.release_write()    # depth 1 — still exclusively held
        lock.release_read()     # depth 0: must clear the owner + notify
        assert lock._writer is None
        assert lock._write_depth == 0
        admitted = threading.Event()

        def reader() -> None:
            with lock.read():
                admitted.set()

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        assert admitted.wait(WAIT), \
            "lock stayed wedged after an out-of-order owner release"
        thread.join(WAIT)
        with lock.write():      # re-acquirable from this thread too
            pass

    def test_write_reentry_and_guard_nesting(self):
        lock = RWLock()
        with lock.write():
            with lock.write():
                with lock.read():       # shares the write depth
                    pass
        assert lock._writer is None
        with lock.read():
            pass

    def test_read_to_write_upgrade_raises_instead_of_deadlocking(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(InterfaceError,
                               match="read-to-write lock upgrade"):
                lock.acquire_write()
        # the failed upgrade left no residue
        with lock.write():
            pass

    def test_release_write_by_non_owner_is_rejected(self):
        lock = RWLock()
        with pytest.raises(AssertionError, match="does not own"):
            lock.release_write()


class TestTableLockManager:
    def test_same_key_resolves_to_the_same_lock(self):
        manager = TableLockManager()
        assert manager._lock_for("t:a") is manager._lock_for("t:a")
        assert manager._lock_for("t:a") is not manager._lock_for("t:b")

    def test_disjoint_sets_do_not_block_each_other(self):
        manager = TableLockManager()
        passed = threading.Event()
        with manager.acquire(["t:a", "i:x"]):
            def other() -> None:
                with manager.acquire(["t:b", "i:y"]):
                    passed.set()
            thread = threading.Thread(target=other, daemon=True)
            thread.start()
            assert passed.wait(WAIT)        # never touched our keys
            thread.join(WAIT)

    def test_overlapping_sets_serialize(self):
        manager = TableLockManager()
        entered = threading.Event()
        with manager.acquire(["t:a", "t:b"]):
            def other() -> None:
                with manager.acquire(["t:b", "t:c"]):
                    entered.set()
            thread = threading.Thread(target=other, daemon=True)
            thread.start()
            # deterministic: other() cannot enter while we hold t:b
            assert not entered.is_set()
        assert entered.wait(WAIT)           # released -> admitted
        thread.join(WAIT)

    def test_reversed_key_order_cannot_deadlock(self):
        """Two committers lock {a,b} and {b,a}: canonical ordering means
        they contend on one key instead of deadlocking hand-over-hand."""
        manager = TableLockManager()
        start = threading.Barrier(2)
        done = threading.Barrier(2, timeout=WAIT)

        def committer(keys: list) -> None:
            start.wait()
            for _ in range(200):
                with manager.acquire(keys):
                    pass
            done.wait()

        a = threading.Thread(target=committer, args=(["t:a", "t:b"],),
                             daemon=True)
        b = threading.Thread(target=committer, args=(["t:b", "t:a"],),
                             daemon=True)
        a.start(); b.start()
        a.join(WAIT); b.join(WAIT)
        assert not a.is_alive() and not b.is_alive()


class TestEngineLockWiring:
    def test_engine_exclusive_is_reentrant_with_reads(self):
        """`exclusive()` (barrier + engine lock) must allow the nested
        read acquisitions every query under it performs."""
        engine = Engine()
        conn = engine.connect()
        conn.execute("CREATE TABLE t (x int)")
        conn.insert("t", [(1,), (2,)])
        with engine.exclusive():
            with engine.lock.read():
                assert engine.catalog.get("t").rows
        # the session still works afterwards: nothing leaked
        assert conn.execute("SELECT count(*) AS c FROM t").rows == [(2,)]
        engine.close()
