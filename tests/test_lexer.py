"""SQL tokenizer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.lexer import TokenKind, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT Select select")
        assert all(t.is_keyword("select") for t in tokens[:-1])

    def test_identifiers_lowercased(self):
        assert kinds("MyTable") == [(TokenKind.IDENT, "mytable")]

    def test_quoted_identifier_preserves_case(self):
        assert kinds('"MyCol"') == [(TokenKind.IDENT, "MyCol")]

    def test_numbers(self):
        assert kinds("1 2.5 1e3 1.5E-2") == [
            (TokenKind.NUMBER, "1"), (TokenKind.NUMBER, "2.5"),
            (TokenKind.NUMBER, "1e3"), (TokenKind.NUMBER, "1.5E-2")]

    def test_string_with_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenKind.STRING, "it's")]

    def test_operators(self):
        values = [v for _, v in kinds("= <> != <= >= < > || + - * / %")]
        assert values == ["=", "<>", "<>", "<=", ">=", "<", ">", "||",
                          "+", "-", "*", "/", "%"]

    def test_end_token_always_present(self):
        assert tokenize("")[-1].kind == TokenKind.END


class TestComments:
    def test_line_comment(self):
        assert kinds("1 -- comment\n2") == [
            (TokenKind.NUMBER, "1"), (TokenKind.NUMBER, "2")]

    def test_block_comment(self):
        assert kinds("1 /* multi\nline */ 2") == [
            (TokenKind.NUMBER, "1"), (TokenKind.NUMBER, "2")]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("/* oops")


class TestErrorsAndPositions:
    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError, match="unexpected character"):
            tokenize("select #")

    def test_line_column_tracking(self):
        tokens = tokenize("select\n  from")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_error_carries_position(self):
        try:
            tokenize("a\n  $")
        except SQLSyntaxError as exc:
            assert exc.line == 2 and exc.column == 3
        else:  # pragma: no cover
            raise AssertionError("expected SQLSyntaxError")
