"""Benchmark harness: timing, timeouts, figure drivers (tiny instances)."""

import time

import pytest

from repro.bench.figures import (
    FigureRow, _run_synthetic, format_table, run_fig6,
)
from repro.bench.harness import (
    BenchResult, run_with_timeout, time_plain_query,
    time_provenance_query,
)
from repro.relation import Relation
from repro.schema import Schema


class _FakeRelation:
    rows = [1, 2, 3]


class TestTimeout:
    def test_completes_within_budget(self):
        result = run_with_timeout(lambda: _FakeRelation(), timeout_s=5.0)
        assert not result.timed_out
        assert result.rows == 3
        assert result.seconds is not None and result.seconds < 1

    def test_no_budget(self):
        result = run_with_timeout(lambda: _FakeRelation(), timeout_s=None)
        assert not result.timed_out

    def test_times_out(self):
        def slow():
            deadline = time.time() + 10
            while time.time() < deadline:
                sum(range(1000))
            return _FakeRelation()

        result = run_with_timeout(slow, timeout_s=0.2)
        assert result.timed_out
        assert result.label == "timeout"

    def test_alarm_restored_after_timeout(self):
        import signal
        run_with_timeout(lambda: _FakeRelation(), timeout_s=1.0)
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0


class TestQueryTimers:
    def test_time_plain_and_provenance(self, figure3_db):
        sql = "SELECT a FROM r WHERE a = ANY (SELECT c FROM s)"
        plain = time_plain_query(figure3_db, sql, timeout_s=10)
        prov = time_provenance_query(figure3_db, sql, "left", timeout_s=10)
        assert plain.rows == 2
        assert prov.rows == 2


class TestFigureDrivers:
    def test_synthetic_driver_rows(self):
        rows = _run_synthetic(
            "figX", [(20, 20)], instances=1, timeout_s=20, seed=0,
            verbose=False)
        strategies = {(row.case, row.strategy) for row in rows}
        assert ("q1", "unn") in strategies
        assert ("q2", "gen") in strategies
        assert all(not row.result.timed_out for row in rows)

    def test_fig6_driver_tiny(self):
        rows = run_fig6(
            scales={"tiny": 0.00004}, queries=(16,), instances=1,
            timeout_s=30, seed=0)
        assert {row.strategy for row in rows} == {"gen", "left", "move"}

    def test_format_table(self):
        rows = [FigureRow("figX", "q1", "n=10", "gen",
                          BenchResult(0.5, 10))]
        text = format_table(rows)
        assert "figure" in text and "0.500s" in text and "gen" in text

    def test_format_table_timeout_row(self):
        rows = [FigureRow("figX", "q1", "n=10", "gen",
                          BenchResult(None, None, timed_out=True))]
        assert "timeout" in format_table(rows)
