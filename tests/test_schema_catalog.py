"""Schemas and the catalog."""

import pytest

from repro.catalog import Catalog
from repro.datatypes import SQLType
from repro.errors import CatalogError, SchemaError
from repro.relation import Relation
from repro.schema import Attribute, Schema, disambiguate


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_position_and_lookup(self):
        schema = Schema.of("a", "b", "c")
        assert schema.position("b") == 1
        assert schema["c"].name == "c"
        assert schema[0].name == "a"

    def test_unknown_position_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").position("z")

    def test_concat(self):
        combined = Schema.of("a").concat(Schema.of("b"))
        assert combined.names == ("a", "b")

    def test_concat_duplicate_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").concat(Schema.of("a"))

    def test_project_preserves_order_given(self):
        schema = Schema.of("a", "b", "c")
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_rename(self):
        schema = Schema.from_pairs([("a", SQLType.INTEGER)])
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ("x",)
        assert renamed["x"].type == SQLType.INTEGER

    def test_contains_and_eq_hash(self):
        assert "a" in Schema.of("a")
        assert Schema.of("a", "b") == Schema.of("a", "b")
        assert hash(Schema.of("a")) == hash(Schema.of("a"))

    def test_positions(self):
        assert Schema.of("a", "b", "c").positions(["c", "b"]) == (2, 1)


class TestDisambiguate:
    def test_returns_name_when_free(self):
        taken = set()
        assert disambiguate("x", taken) == "x"
        assert "x" in taken

    def test_suffixes_on_collision(self):
        taken = {"x"}
        assert disambiguate("x", taken) == "x_1"
        assert disambiguate("x", taken) == "x_2"


class TestCatalog:
    def test_create_get_drop(self):
        catalog = Catalog()
        catalog.create("t", Schema.of("a"), [(1,)])
        assert "t" in catalog
        assert catalog.get("T").rows == [(1,)]  # case-insensitive
        catalog.drop("t")
        assert "t" not in catalog

    def test_create_duplicate_raises(self):
        catalog = Catalog()
        catalog.create("t", Schema.of("a"))
        with pytest.raises(CatalogError):
            catalog.create("T", Schema.of("a"))

    def test_get_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")

    def test_drop_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop("nope")

    def test_register_replace(self):
        catalog = Catalog()
        catalog.create("t", Schema.of("a"))
        replacement = Relation(Schema.of("a"), [(9,)])
        with pytest.raises(CatalogError):
            catalog.register("t", replacement)
        catalog.register("t", replacement, replace=True)
        assert catalog.get("t").rows == [(9,)]

    def test_names_in_creation_order(self):
        catalog = Catalog()
        catalog.create("b", Schema.of("x"))
        catalog.create("a", Schema.of("x"))
        assert catalog.names() == ["b", "a"]
