"""Exact reproductions of every worked example in the paper."""

import pytest

from repro import Database


class TestSection21Examples:
    """Section 2.1: σ_{a=3}(R) and α_{sum(a)}(R) over
    R = {(1,3),(2,2),(3,6)}."""

    @pytest.fixture
    def db(self):
        db = Database()
        db.execute("CREATE TABLE r (a int, b int)")
        db.execute("INSERT INTO r VALUES (1, 3), (2, 2), (3, 6)")
        return db

    def test_selection_provenance(self, db):
        prov = db.provenance("SELECT * FROM r WHERE a = 3")
        assert prov.rows == [(3, 6, 3, 6)]

    def test_aggregation_provenance_all_tuples(self, db):
        prov = db.provenance("SELECT sum(a) AS s FROM r")
        assert sorted(prov.rows) == [
            (6, 1, 3), (6, 2, 2), (6, 3, 6)]


class TestSection31Representation:
    """The q_ex example: Π_{a,c}(σ_{a<c}(R x S)) with
    R = {(1,2),(3,4)}, S = {(2),(5)} — the exact table of Section 3.1."""

    def test_qex_provenance_table(self, qex_db):
        prov = qex_db.provenance(
            "SELECT a, c FROM r, s WHERE a < c")
        assert list(prov.schema.names) == [
            "a", "c", "prov_r_a", "prov_r_b", "prov_s_c"]
        assert sorted(prov.rows) == [
            (1, 2, 1, 2, 2),
            (1, 5, 1, 2, 5),
            (3, 5, 3, 4, 5),
        ]

    def test_how_provenance_association_preserved(self, qex_db):
        """Section 3.1: the single-relation representation keeps which
        input tuples were used *together* — (3,5) pairs (3,4) with (5)."""
        prov = qex_db.provenance("SELECT a, c FROM r, s WHERE a < c")
        row = next(r for r in prov.rows if (r[0], r[1]) == (3, 5))
        assert row[2:] == (3, 4, 5)


class TestSection35GenExample:
    """q = σ_{a = ANY(σ_{c=b}(S))}(R) — the Gen walkthrough."""

    def test_gen_rewrite_result(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT * FROM r WHERE a = ANY (SELECT c FROM s WHERE c = b)",
            strategy="gen")
        assert sorted(prov.rows) == [(1, 1, 1, 1, 1, 3)]


class TestSection36Examples:
    """Left/Move example: q = σ_{a = ALL(S)}(R) with S single-column."""

    @pytest.fixture
    def db(self):
        db = Database()
        db.execute("CREATE TABLE r (a int, b int)")
        db.execute("INSERT INTO r VALUES (1, 1), (2, 1), (3, 2)")
        db.execute("CREATE TABLE s (c int)")
        db.execute("INSERT INTO s VALUES (2), (2)")
        return db

    @pytest.mark.parametrize("strategy", ("gen", "left", "move"))
    def test_equality_all(self, db, strategy):
        prov = db.provenance(
            "SELECT * FROM r WHERE a = ALL (SELECT c FROM s)",
            strategy=strategy)
        # only a=2 passes; sublink true -> provenance is all of S
        assert sorted(prov.rows) == [(2, 1, 2, 1, 2), (2, 1, 2, 1, 2)]

    def test_move_projection_example(self, db):
        """T2's shape: Π_{a, Csub}(R) — sublink moved to a column."""
        prov = db.provenance(
            "SELECT a, a = ALL (SELECT c FROM s) AS v FROM r",
            strategy="move")
        values = {(row[0], row[1]) for row in prov.rows}
        assert values == {(1, False), (2, True), (3, False)}


class TestFigure3FullTable:
    """The complete Figure 3 provenance tables (q1, q2 under Definitions
    1 = 2 for single sublinks; q3 under Definition 2 — see
    test_strategies_selection for the discussion)."""

    def test_q1(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)")
        table = {(row[0], row[1]): (row[2:4], row[4:6])
                 for row in prov.rows}
        assert table == {
            (1, 1): ((1, 1), (1, 3)),
            (2, 1): ((2, 1), (2, 4)),
        }

    def test_q2(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT * FROM s WHERE c > ALL (SELECT a FROM r)")
        r_side = sorted(row[4:6] for row in prov.rows)
        assert {(row[0], row[1]) for row in prov.rows} == {(4, 5)}
        assert r_side == [(1, 1), (2, 1), (3, 2)]
