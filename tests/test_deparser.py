"""Deparser: algebra -> SQL text, round-tripped through the parser where
the dialect allows (uncorrelated plans)."""

import pytest

from repro import Database
from repro.sql.deparser import deparse, deparse_expr
from repro.sql.parser import parse_statement
from repro.expressions.ast import (
    Case, Col, Comparison, Const, NullSafeEq, Not,
)


@pytest.fixture
def db(figure3_db):
    return figure3_db


def roundtrip(db, sql):
    """Deparse the plan of *sql* and re-execute the emitted SQL."""
    plan = db.plan(sql)
    original = db.sql(sql)
    emitted = deparse(plan)
    replayed = db.sql(emitted)
    assert original.bag_equal(replayed), emitted
    return emitted


class TestExpressionDeparsing:
    def test_literals(self):
        assert deparse_expr(Const(None)) == "NULL"
        assert deparse_expr(Const("o'k")) == "'o''k'"

    def test_comparison(self):
        text = deparse_expr(Comparison("<=", Col("a"), Const(3)))
        assert text == "(a <= 3)"

    def test_null_safe_eq_expands(self):
        text = deparse_expr(NullSafeEq(Col("a"), Col("b")))
        assert "IS NULL" in text and "=" in text

    def test_case(self):
        expr = Case(((Comparison("=", Col("a"), Const(1)), Const("x")),),
                    Const("y"))
        text = deparse_expr(expr)
        assert text.startswith("CASE WHEN") and text.endswith("END")

    def test_not(self):
        assert deparse_expr(Not(Const(True))) == "(NOT TRUE)"

    def test_quoting_of_dotted_names(self):
        assert deparse_expr(Col("r.a")) == '"r.a"'


class TestPlanRoundtrips:
    @pytest.mark.parametrize("sql", [
        "SELECT a, b FROM r",
        "SELECT a + b AS s FROM r WHERE a >= 2",
        "SELECT DISTINCT b FROM r",
        "SELECT a, c FROM r, s WHERE a = c",
        "SELECT a, d FROM r LEFT JOIN s ON a = c",
        "SELECT b, count(*) AS n FROM r GROUP BY b",
        "SELECT b, sum(a) AS s FROM r GROUP BY b HAVING sum(a) > 2",
        "SELECT a FROM r UNION ALL SELECT c FROM s",
        "SELECT a FROM r INTERSECT SELECT c FROM s",
        "SELECT a FROM r ORDER BY a DESC LIMIT 2",
        "SELECT a FROM r WHERE a = ANY (SELECT c FROM s)",
        "SELECT a FROM r WHERE NOT EXISTS (SELECT c FROM s WHERE c > 9)",
    ])
    def test_roundtrip(self, db, sql):
        roundtrip(db, sql)

    def test_rewritten_plan_roundtrips(self, db):
        """The paper's point: q+ is plain SQL — emit and re-run it."""
        sql = "SELECT a FROM r WHERE a = ANY (SELECT c FROM s)"
        plan = db.plan(sql, strategy="unn")
        emitted = deparse(plan)
        replayed = db.sql(emitted)
        direct = db.provenance(sql, strategy="unn")
        assert direct.bag_equal(replayed)

    def test_left_strategy_plan_roundtrips(self, db):
        sql = "SELECT a FROM r WHERE a < ALL (SELECT c FROM s WHERE c > 2)"
        plan = db.plan(sql, strategy="left")
        emitted = deparse(plan)
        replayed = db.sql(emitted)
        direct = db.provenance(sql, strategy="left")
        assert direct.bag_equal(replayed)

    def test_emitted_text_parses(self, db):
        emitted = deparse(db.plan("SELECT a FROM r WHERE a = 1"))
        parse_statement(emitted)
