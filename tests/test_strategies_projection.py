"""Sublink strategies on projections (rules G2 / L2 / T2, Theorem 2)."""

import pytest

from repro import Database, RewriteError

GENERAL = ("gen", "left", "move", "auto")


def prov_rows(db, sql, strategy):
    return sorted(
        db.provenance(sql, strategy=strategy).rows,
        key=lambda row: tuple((v is not None, str(v)) for v in row))


class TestScalarSublinkInProjection:
    SQL = "SELECT a, (SELECT max(c) FROM s) AS mx FROM r"

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_every_sublink_tuple_contributes(self, figure3_db, strategy):
        rows = prov_rows(figure3_db, self.SQL, strategy)
        # 3 r-rows x 3 s-rows (max aggregates over all of s)
        assert len(rows) == 9
        assert all(row[1] == 4 for row in rows)

    def test_unn_has_no_projection_rule(self, figure3_db):
        with pytest.raises(RewriteError, match="projection"):
            figure3_db.provenance(self.SQL, strategy="unn")


class TestBooleanSublinkInProjection:
    @pytest.mark.parametrize("strategy", GENERAL)
    def test_exists_value_per_row(self, figure3_db, strategy):
        sql = ("SELECT a, EXISTS (SELECT * FROM s WHERE c > 3) AS has_big "
               "FROM r")
        rows = prov_rows(figure3_db, sql, strategy)
        assert all(row[1] is True for row in rows)
        # EXISTS provenance = whole sublink result σ_{c>3}(s) = {(4,5)}
        assert len(rows) == 3
        assert all(row[4:] == (4, 5) for row in rows)

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_any_sublink_in_projection(self, figure3_db, strategy):
        sql = "SELECT a, a = ANY (SELECT c FROM s) AS hit FROM r"
        rows = prov_rows(figure3_db, sql, strategy)
        by_a = {}
        for row in rows:
            by_a.setdefault(row[0], []).append(row)
        # a=1: reqtrue, provenance = Tsub_true = {(1,3)}
        assert len(by_a[1]) == 1 and by_a[1][0][1] is True
        assert by_a[1][0][4:] == (1, 3)
        # a=2: reqtrue with match (2,4)
        assert len(by_a[2]) == 1 and by_a[2][0][4:] == (2, 4)
        # a=3: sublink false, provenance = whole Tsub (3 rows)
        assert len(by_a[3]) == 3 and all(r[1] is False for r in by_a[3])

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_sublink_inside_expression(self, figure3_db, strategy):
        sql = ("SELECT a + (SELECT min(c) FROM s) AS shifted FROM r "
               "WHERE a = 1")
        rows = prov_rows(figure3_db, sql, strategy)
        assert all(row[0] == 2 for row in rows)
        assert len(rows) == 3  # min() aggregates all of s


class TestCorrelatedProjectionSublinks:
    """Section 2.6: provenance per (output tuple, input tuple) pair."""

    def test_paper_example_parameterized_sublink(self, figure3_db):
        # q = Π_{a = ALL(σ_{b=c}(S))}(R) — rendered in SQL over (c)
        sql = ("SELECT a = ALL (SELECT c FROM s WHERE c = b) AS v FROM r")
        rows = prov_rows(figure3_db, sql, "gen")
        # input (1,1): Tsub={1}, 1=ALL{1} true, prov {(1,3)}
        # input (2,1): Tsub={1}, 2=ALL{1} false, prov Tsub_false={(1,3)}
        # input (3,2): Tsub={2}, 3=ALL{2} false, prov {(2,4)}
        expected = sorted([
            (True, 1, 1, 1, 3),
            (False, 2, 1, 1, 3),
            (False, 3, 2, 2, 4),
        ], key=lambda row: tuple((v is not None, str(v)) for v in row))
        assert rows == expected

    def test_correlated_scalar_in_projection(self, figure3_db):
        sql = ("SELECT a, (SELECT sum(d) FROM s WHERE c = a) AS total "
               "FROM r")
        rows = prov_rows(figure3_db, sql, "gen")
        values = {(row[0], row[1]) for row in rows}
        assert values == {(1, 3), (2, 4), (3, None)}
        # a=3 has an empty sublink: null-padded provenance
        null_rows = [row for row in rows if row[0] == 3]
        assert null_rows == [(3, None, 3, 2, None, None)]

    def test_left_rejects_correlated_projection_sublink(self, figure3_db):
        sql = "SELECT (SELECT sum(d) FROM s WHERE c = a) AS t FROM r"
        with pytest.raises(RewriteError, match="correlated"):
            figure3_db.provenance(sql, strategy="left")


class TestMixedSelectionAndProjection:
    @pytest.mark.parametrize("strategy", GENERAL)
    def test_sublinks_in_both_clauses(self, figure3_db, strategy):
        sql = ("SELECT a, (SELECT min(c) FROM s) AS lo FROM r "
               "WHERE a = ANY (SELECT c FROM s)")
        rows = prov_rows(figure3_db, sql, strategy)
        originals = {(row[0], row[1]) for row in rows}
        assert originals == {(1, 1), (2, 1)}
        # schema: a, lo, P(r), P(s from WHERE), P(s from SELECT)
        assert len(rows[0]) == 2 + 2 + 2 + 2
