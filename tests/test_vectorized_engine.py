"""The columnar vectorized engine: parity, fallback and batch plumbing.

``engine="vectorized"`` must be *always correct, never partial*: every
query either runs on whole-column vector kernels or falls back to row
operators node by node, and in both cases the results are bag-identical
to the materializing reference engine.  This module runs the full parity
matrix of ``test_physical_engine`` plus the data shapes that stress the
columnar representation specifically — NULL-heavy columns, mixed
int/float/bool/text columns, NaN, beyond-int64 integers — along with a
hypothesis round-trip for the ColumnBatch <-> rows transposition, the
EXPLAIN surfaces, and the recycled-``id(op)`` plan-cache regression.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import connect
from repro.engine.columnar import (
    Column, ColumnBatch, clear_cache, column_from_values, table_columns,
)
from repro.errors import ExpressionError

from test_physical_engine import (
    ORDERED_QUERIES, PARITY_QUERIES, PROVENANCE_QUERIES, _populate,
)


def _pair(**kwargs):
    """A (vectorized, materializing) connection pair over one catalog."""
    vectorized = connect(engine="vectorized", **kwargs)
    materializing = connect(engine="materializing",
                            catalog=vectorized.catalog)
    return vectorized, materializing


@pytest.fixture
def engines():
    vectorized, materializing = _pair()
    _populate(vectorized)
    return vectorized, materializing


def _bags_equal(left, right):
    # repr-keyed bags: robust to NaN (NaN != NaN would break Counter)
    return sorted(map(repr, left)) == sorted(map(repr, right))


class TestVectorizedParity:
    """The full engine parity matrix, vectorized vs materializing."""

    @pytest.mark.parametrize("sql", PARITY_QUERIES)
    def test_bag_parity(self, engines, sql):
        vectorized, materializing = engines
        fast = vectorized.sql(sql)
        slow = materializing.sql(sql)
        assert _bags_equal(fast.rows, slow.rows)
        assert fast.schema.names == slow.schema.names

    @pytest.mark.parametrize("sql,strategy", PROVENANCE_QUERIES)
    def test_provenance_bag_parity(self, engines, sql, strategy):
        vectorized, materializing = engines
        fast = vectorized.sql(sql, strategy=strategy)
        slow = materializing.sql(sql, strategy=strategy)
        assert _bags_equal(fast.rows, slow.rows)

    @pytest.mark.parametrize("strategy", ("gen", "left", "move", "unn"))
    def test_all_strategies(self, engines, strategy):
        vectorized, materializing = engines
        sql = ("SELECT PROVENANCE a, d FROM r, s "
               "WHERE r.a = s.c AND s.d > 3")
        fast = vectorized.sql(sql, strategy=strategy)
        slow = materializing.sql(sql, strategy=strategy)
        assert _bags_equal(fast.rows, slow.rows)

    @pytest.mark.parametrize("sql", ORDERED_QUERIES)
    def test_ordered_parity(self, engines, sql):
        vectorized, materializing = engines
        assert vectorized.sql(sql).rows == materializing.sql(sql).rows

    @pytest.mark.parametrize("batch_size", (1, 2, 3, 7, 64))
    def test_parity_across_batch_sizes(self, batch_size):
        reference = connect(engine="materializing")
        _populate(reference)
        small = connect(engine="vectorized", batch_size=batch_size,
                        catalog=reference.catalog)
        for sql in ("SELECT a, d FROM r JOIN s ON a = c AND d > 3",
                    "SELECT b, count(*) AS n FROM r GROUP BY b",
                    "SELECT DISTINCT b FROM r WHERE a + b > 2",
                    "SELECT a FROM r ORDER BY a LIMIT 2 OFFSET 1"):
            assert _bags_equal(small.sql(sql).rows,
                               reference.sql(sql).rows)

    def test_parameters(self, engines):
        vectorized, materializing = engines
        sql = "SELECT a, b FROM r WHERE a > ? AND b = ?"
        fast = vectorized.sql(sql, params=(1, 1))
        slow = materializing.sql(sql, params=(1, 1))
        assert _bags_equal(fast.rows, slow.rows)
        # NULL parameter: the comparison is unknown for every row
        assert vectorized.sql("SELECT a FROM r WHERE a > ?",
                              params=(None,)).rows == []


class TestHardDataShapes:
    """Column shapes that stress kind inference and the fast paths."""

    def _weird(self):
        vectorized, materializing = _pair()
        vectorized.create_table("t", [("k", "int"), ("v", "float"),
                                      ("s", "text"), ("f", "bool")])
        vectorized.insert("t", [
            (1, 1.5, "ab", True),
            (2, float("nan"), "", False),
            (None, None, None, None),
            (1 << 70, -0.0, "ab", True),          # beyond int64
            (-5, 2.0, "zzz", None),
            (3, float("inf"), "a%b", False),
            (None, 1.5, "AB", True),
        ])
        return vectorized, materializing

    QUERIES = [
        "SELECT k, v FROM t WHERE k > 0",
        "SELECT k FROM t WHERE v > 1.0",
        "SELECT s FROM t WHERE s = 'ab'",
        "SELECT k FROM t WHERE f",
        "SELECT k FROM t WHERE k IS NULL",
        "SELECT k FROM t WHERE v IS NOT NULL AND k IS NOT NULL",
        "SELECT k + v AS x FROM t WHERE k IS NOT NULL",
        "SELECT k, count(*) AS n FROM t GROUP BY k",
        "SELECT f, sum(k) AS s, min(v) AS m, max(s) AS x, avg(v) AS a "
        "FROM t GROUP BY f",
        "SELECT a.k FROM t a, t b WHERE a.k = b.k",
        "SELECT a.k, b.v FROM t a LEFT JOIN t b ON a.k = b.k "
        "AND b.v > 1.0",
        "SELECT DISTINCT s FROM t",
        "SELECT k FROM t WHERE NOT (k < 2)",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_parity(self, sql):
        vectorized, materializing = self._weird()
        assert _bags_equal(vectorized.sql(sql).rows,
                           materializing.sql(sql).rows)

    def test_nan_survives_round_trip(self):
        vectorized, _ = self._weird()
        rows = vectorized.sql("SELECT v FROM t WHERE v > 0 OR v < 1").rows
        assert any(isinstance(v, float) and math.isnan(v)
                   for (v,) in vectorized.sql("SELECT v FROM t "
                                              "WHERE v IS NOT NULL").rows)
        assert rows is not None  # OR forces the row fallback; no crash

    def test_error_parity(self):
        vectorized, materializing = self._weird()
        sql = "SELECT k FROM t WHERE s > 1"
        with pytest.raises(ExpressionError) as fast:
            vectorized.sql(sql)
        with pytest.raises(ExpressionError) as slow:
            materializing.sql(sql)
        assert str(fast.value) == str(slow.value)

    def test_division_error_parity(self):
        vectorized, materializing = self._weird()
        sql = "SELECT 1 / (k - k) AS x FROM t WHERE k IS NOT NULL"
        with pytest.raises(ExpressionError) as fast:
            vectorized.sql(sql)
        with pytest.raises(ExpressionError) as slow:
            materializing.sql(sql)
        assert str(fast.value) == str(slow.value)


class TestRowFallback:
    """Unsupported expressions keep their operator on the row path —
    with identical results."""

    FALLBACK_QUERIES = [
        "SELECT a FROM r WHERE a = 1 OR b = 2",
        "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END AS c FROM r",
        "SELECT abs(a - 2) AS x FROM r",
        "SELECT a FROM r WHERE a IN (SELECT c FROM s)",
        "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE c = a)",
        "SELECT a, (SELECT max(d) FROM s) AS m FROM r",
    ]

    @pytest.mark.parametrize("sql", FALLBACK_QUERIES)
    def test_fallback_parity(self, engines, sql):
        vectorized, materializing = engines
        assert _bags_equal(vectorized.sql(sql).rows,
                           materializing.sql(sql).rows)

    def test_fallback_counted(self, engines):
        vectorized, _ = engines
        # vector filter feeding a CASE projection the vector compiler
        # rejects: a mixed plan with a bridge in the middle
        vectorized.sql("SELECT CASE WHEN a > 1 THEN 1 ELSE 0 END AS c "
                       "FROM r WHERE a > 1").rows
        stats = vectorized.last_stats
        assert stats.row_fallback_nodes >= 1     # the CASE projection
        assert stats.vectorized_nodes >= 2       # scan + filter

    def test_unpayoff_subtree_reverts_to_rows(self, engines):
        vectorized, _ = engines
        # an OR filter rejects the whole chain; a bare columnar scan
        # under a row filter would be pure transposition overhead, so
        # the plan reverts to row operators end to end
        vectorized.sql("SELECT a FROM r WHERE a = 1 OR b = 2").rows
        stats = vectorized.last_stats
        assert stats.vectorized_nodes == 0
        assert stats.row_fallback_nodes >= 2

    def test_fully_vectorized_counted(self, engines):
        vectorized, _ = engines
        vectorized.sql("SELECT a + b AS t FROM r WHERE a > 1").rows
        stats = vectorized.last_stats
        assert stats.row_fallback_nodes == 0
        assert stats.vectorized_nodes >= 3       # scan, filter, project


class TestExplainSurfaces:
    def test_explain_physical_tags(self, engines):
        vectorized, _ = engines
        text = vectorized.explain_physical(
            "SELECT a FROM r WHERE a > 1")
        assert "[columnar]" in text
        assert "Filter" in text

    def test_explain_physical_shows_fallback(self, engines):
        vectorized, _ = engines
        text = vectorized.explain_physical(
            "SELECT CASE WHEN a > 1 THEN 1 ELSE 0 END AS c "
            "FROM r WHERE a > 1")
        assert "[rows]" in text                  # the CASE projection
        assert "[columnar]" in text              # scan + filter
        assert "RowsFromColumns" in text         # the bridge between

    def test_pipelined_explain_untagged(self, engines):
        _, materializing = engines
        pipelined = connect(engine="pipelined",
                            catalog=materializing.catalog)
        text = pipelined.explain_physical("SELECT a FROM r WHERE a > 1")
        assert "[columnar]" not in text and "[rows]" not in text

    def test_explain_analyze_counters(self, engines):
        vectorized, _ = engines
        text = vectorized.explain_analyze("SELECT a FROM r WHERE a > 1")
        assert "[columnar]" in text
        assert "Vectorized:" in text
        assert "row-fallback node(s)" in text


class TestBatchPlumbing:
    def test_streaming_result(self):
        vectorized = connect(engine="vectorized", batch_size=2)
        _populate(vectorized)
        result = vectorized.sql("SELECT a, b FROM r WHERE a >= 1")
        assert sorted(result.rows) == [(1, 1), (2, 1), (2, 1), (3, 2)]
        assert list(result) == result.rows

    def test_dml_visible_through_column_cache(self, engines):
        vectorized, materializing = engines
        before = vectorized.sql("SELECT count(*) AS n FROM r").rows
        vectorized.execute("INSERT INTO r VALUES (9, 9)")
        after = vectorized.sql("SELECT count(*) AS n FROM r").rows
        assert after[0][0] == before[0][0] + 1
        assert _bags_equal(vectorized.sql("SELECT a, b FROM r").rows,
                           materializing.sql("SELECT a, b FROM r").rows)

    def test_plan_cache_reexecution(self):
        vectorized = connect(engine="vectorized")
        _populate(vectorized)
        prepared = vectorized.prepare("SELECT a FROM r WHERE a > ?")
        first = sorted(prepared.execute((1,)).rows)
        second = sorted(prepared.execute((2,)).rows)
        assert first == [(2,), (2,), (3,)]
        assert second == [(3,)]


class TestColumnBatchRoundTrip:
    VALUES = st.one_of(
        st.none(), st.booleans(), st.integers(-(1 << 70), 1 << 70),
        st.floats(allow_nan=False), st.text(max_size=5))

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_round_trip(self, data):
        width = data.draw(st.integers(0, 4))
        rows = data.draw(st.lists(
            st.tuples(*[self.VALUES] * width), max_size=30))
        batch = ColumnBatch.from_rows(rows, width)
        assert len(batch) == len(rows)
        assert batch.to_rows() == rows
        if rows:
            sel = data.draw(st.lists(
                st.integers(0, len(rows) - 1), max_size=30))
            view = ColumnBatch(batch.columns, sel)
            expected = [rows[i] for i in sel]
            assert view.to_rows() == expected
            assert view.dense().to_rows() == expected
        for column in batch.columns:
            present = [v for v in column.values if v is not None]
            if column.kind == "num":
                assert all(isinstance(v, (int, float))
                           and not isinstance(v, bool) for v in present)
            elif column.kind == "text":
                assert all(isinstance(v, str) for v in present)
            elif column.kind == "bool":
                assert all(isinstance(v, bool) for v in present)
            if not column.has_nulls:
                assert None not in column.values

    def test_nan_round_trip(self):
        nan = float("nan")
        batch = ColumnBatch.from_rows([(nan,), (1.0,)], 1)
        assert batch.columns[0].kind == "num"
        out = batch.to_rows()
        assert math.isnan(out[0][0]) and out[1][0] == 1.0

    def test_kind_inference(self):
        assert column_from_values([1, 2.5, None]).kind == "num"
        assert column_from_values([True, False]).kind == "bool"
        assert column_from_values(["a", "b"]).kind == "text"
        mixed = column_from_values([1, "a"])
        assert mixed.kind == "any" and mixed.has_nulls
        empty = column_from_values([])
        assert empty.kind == "any"
        assert column_from_values([None, None]).has_nulls

    def test_range_selection_to_rows(self):
        batch = ColumnBatch(
            [Column([1, 2, 3, 4], "num", False)], range(1, 3))
        assert batch.to_rows() == [(2,), (3,)]

    def test_table_cache_invalidation(self):
        clear_cache()
        rows = [(1,), (2,)]
        first = table_columns(rows, 1)
        assert table_columns(rows, 1) is first      # cache hit
        rows.append((3,))                           # in-place growth
        second = table_columns(rows, 1)
        assert second is not first
        # NULL-free int columns are array('q')-backed; compare values
        assert list(second[0].values) == [1, 2, 3]


class TestLoweredCacheRegression:
    """PR-7 fix: ``PipelineEngine._lowered`` keyed by ``id(op)`` could
    serve a stale plan when a dead tree's id was recycled.  The cache now
    stores the tree alongside the plan and validates identity."""

    def test_recycled_id_cannot_serve_stale_plan(self):
        from repro.engine.pipeline import PipelineEngine
        from repro.engine.stats import ExecutionStats

        connection = connect()
        _populate(connection)
        plan_a = connection.plan("SELECT a FROM r")
        plan_b = connection.plan("SELECT d FROM s")
        engine = PipelineEngine(connection.catalog, True, False,
                                ExecutionStats())
        result_a = engine.execute(plan_a)
        assert sorted(result_a.rows) == [(1,), (2,), (2,), (3,)]
        # simulate an id collision: plan_b's id maps to plan_a's entry
        engine._lowered[id(plan_b)] = engine._lowered[id(plan_a)]
        result_b = engine.execute(plan_b)
        assert sorted(result_b.rows) == [(3,), (4,), (4,), (5,)]

    def test_cache_entry_pins_tree(self):
        from repro.engine.pipeline import PipelineEngine
        from repro.engine.stats import ExecutionStats

        connection = connect()
        _populate(connection)
        engine = PipelineEngine(connection.catalog, True, False,
                                ExecutionStats())
        op = connection.plan("SELECT a FROM r")
        engine.execute(op)
        entry = engine._lowered[id(op)]
        assert entry[0] is op    # the stored tree keeps the id alive
