"""Semantic analysis: name resolution, correlation levels, aggregation
normalization, views, error reporting."""

import pytest

from repro import Database
from repro.errors import AnalyzerError
from repro.expressions.ast import Col, Sublink
from repro.algebra.operators import (
    Aggregate, Join, JoinKind, Limit, Project, Select, SetOp, Sort, Values,
)
from repro.algebra.trees import iter_operators
from repro.algebra.properties import is_correlated


@pytest.fixture
def db(figure3_db):
    return figure3_db


def plan_of(db, sql):
    return db.plan(sql)


class TestResolution:
    def test_unknown_column_raises(self, db):
        with pytest.raises(AnalyzerError, match="unknown column"):
            db.sql("SELECT zzz FROM r")

    def test_unknown_table_raises(self, db):
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            db.sql("SELECT * FROM nope")

    def test_ambiguous_column_raises(self, db):
        db.execute("CREATE TABLE r2 (a int)")
        with pytest.raises(AnalyzerError, match="ambiguous"):
            db.sql("SELECT a FROM r, r2")

    def test_qualified_reference_disambiguates(self, db):
        db.execute("CREATE TABLE r2 (a int)")
        db.execute("INSERT INTO r2 VALUES (7)")
        rows = db.sql("SELECT r2.a FROM r, r2").rows
        assert set(rows) == {(7,)}

    def test_alias_shadows_table_name(self, db):
        rows = db.sql("SELECT x.a FROM r AS x WHERE x.a = 1").rows
        assert rows == [(1, )]

    def test_duplicate_alias_raises(self, db):
        with pytest.raises(AnalyzerError, match="duplicate table alias"):
            db.sql("SELECT 1 FROM r, r")

    def test_same_table_twice_with_aliases(self, db):
        rows = db.sql(
            "SELECT x.a, y.a FROM r x, r y WHERE x.a = y.a AND x.a = 2"
        ).rows
        assert rows == [(2, 2)]

    def test_select_without_from(self, db):
        assert db.sql("SELECT 1 + 1 AS two").rows == [(2,)]

    def test_star_expansion_order(self, db):
        relation = db.sql("SELECT * FROM r, s LIMIT 1")
        assert list(relation.schema.names) == ["a", "b", "c", "d"]

    def test_duplicate_labels_disambiguated(self, db):
        db.execute("CREATE TABLE r2 (a int)")
        relation = db.sql("SELECT r.a, r2.a FROM r, r2")
        assert list(relation.schema.names) == ["a", "a_1"]


class TestCorrelation:
    def test_sublink_gets_level_one_reference(self, db):
        plan = plan_of(
            db, "SELECT * FROM r WHERE EXISTS "
                "(SELECT * FROM s WHERE c = b)")
        select = next(op for op in iter_operators(plan)
                      if isinstance(op, Select))
        sublink = select.condition
        assert isinstance(sublink, Sublink)
        assert is_correlated(sublink.query)

    def test_uncorrelated_sublink(self, db):
        plan = plan_of(
            db, "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)")
        select = next(op for op in iter_operators(plan)
                      if isinstance(op, Select))
        assert not is_correlated(select.condition.query)

    def test_doubly_nested_correlation(self, db):
        # innermost query references r (two sublink levels out)
        rows = db.sql(
            "SELECT a FROM r WHERE EXISTS ("
            "  SELECT * FROM s WHERE EXISTS ("
            "    SELECT * FROM s s2 WHERE s2.c = r.a AND s2.d >= s.d))"
        ).rows
        # r.a in {1,2} matches s.c values 1,2 with d >= some s.d
        assert sorted(rows) == [(1,), (2,)]

    def test_inner_scope_shadows_outer(self, db):
        # both r and the sublink's r alias expose "a"; innermost wins
        rows = db.sql(
            "SELECT a FROM r WHERE a = (SELECT max(x.a) FROM r x)").rows
        assert rows == [(3, 2)] or rows == [(3,)]


class TestAggregationPlanning:
    def test_plain_group_by(self, db):
        plan = plan_of(db, "SELECT b, count(*) AS n FROM r GROUP BY b")
        assert any(isinstance(op, Aggregate)
                   for op in iter_operators(plan))

    def test_group_expression_normalized_into_projection(self, db):
        plan = plan_of(
            db, "SELECT a + b AS ab, count(*) AS n FROM r GROUP BY a + b")
        aggregate = next(op for op in iter_operators(plan)
                         if isinstance(op, Aggregate))
        assert isinstance(aggregate.input, Project)
        assert aggregate.group[0].startswith("group_")

    def test_aggregate_argument_expression_normalized(self, db):
        plan = plan_of(db, "SELECT sum(a * 2) AS s FROM r")
        aggregate = next(op for op in iter_operators(plan)
                         if isinstance(op, Aggregate))
        (name, call), = aggregate.aggregates
        assert isinstance(call.arg, Col)

    def test_ungrouped_column_raises(self, db):
        with pytest.raises(AnalyzerError, match="GROUP BY"):
            db.sql("SELECT a, count(*) FROM r GROUP BY b")

    def test_having_without_group_or_aggregate_raises(self, db):
        with pytest.raises(AnalyzerError, match="HAVING"):
            db.sql("SELECT a FROM r HAVING a > 1")

    def test_having_with_implicit_group(self, db):
        rows = db.sql("SELECT sum(a) AS s FROM r HAVING sum(a) > 100").rows
        assert rows == []

    def test_duplicate_aggregates_computed_once(self, db):
        plan = plan_of(
            db, "SELECT sum(a) AS s1, sum(a) AS s2 FROM r")
        aggregate = next(op for op in iter_operators(plan)
                         if isinstance(op, Aggregate))
        assert len(aggregate.aggregates) == 1

    def test_nested_aggregate_raises(self, db):
        with pytest.raises(AnalyzerError, match="nested"):
            db.sql("SELECT sum(count(a)) FROM r")


class TestOrderLimit:
    def test_order_by_label(self, db):
        plan = plan_of(db, "SELECT a AS x FROM r ORDER BY x")
        assert isinstance(plan, Sort)

    def test_order_by_ordinal(self, db):
        rows = db.sql("SELECT a, b FROM r ORDER BY 2 DESC, 1 DESC").rows
        assert rows[0] == (3, 2)

    def test_order_by_ordinal_out_of_range(self, db):
        with pytest.raises(AnalyzerError, match="out of range"):
            db.sql("SELECT a FROM r ORDER BY 5")

    def test_order_by_non_output_expression(self, db):
        # standard SQL: sort keys may reference FROM columns that are not
        # in the select list (planned via a hidden key column)
        rows = db.sql("SELECT a FROM r ORDER BY b DESC, a DESC").rows
        assert rows == [(3,), (2,), (1,)]
        assert db.sql("SELECT a FROM r ORDER BY b DESC, a DESC"
                      ).schema.names == ("a",)

    def test_order_by_unknown_column_still_raises(self, db):
        with pytest.raises(AnalyzerError, match="unknown column"):
            db.sql("SELECT a FROM r ORDER BY zzz")

    def test_limit_offset_plan(self, db):
        plan = plan_of(db, "SELECT a FROM r LIMIT 2 OFFSET 1")
        assert isinstance(plan, Limit)
        assert plan.count == 2 and plan.offset == 1


class TestViewsAndSubqueries:
    def test_view_expansion(self, db):
        db.create_view("big", "SELECT a FROM r WHERE a >= 2")
        assert sorted(db.sql("SELECT * FROM big").rows) == [(2,), (3,)]

    def test_view_joins_with_tables(self, db):
        db.create_view("big", "SELECT a AS v FROM r WHERE a >= 2")
        rows = db.sql(
            "SELECT v, c FROM big, s WHERE v = c ORDER BY v").rows
        assert rows == [(2, 2)]

    def test_derived_table(self, db):
        rows = db.sql(
            "SELECT t.x FROM (SELECT a + 1 AS x FROM r) AS t "
            "WHERE t.x > 2 ORDER BY x").rows
        assert rows == [(3,), (4,)]

    def test_sublinks_require_single_column(self, db):
        with pytest.raises(AnalyzerError, match="one.*column|column"):
            db.sql("SELECT * FROM r WHERE a = ANY (SELECT c, d FROM s)")

    def test_exists_allows_multiple_columns(self, db):
        db.sql("SELECT * FROM r WHERE EXISTS (SELECT c, d FROM s)")

    def test_provenance_in_subquery_rejected(self, db):
        with pytest.raises(AnalyzerError, match="top level"):
            db.sql("SELECT * FROM (SELECT PROVENANCE a FROM r) AS t")

    def test_provenance_in_sublink_rejected(self, db):
        with pytest.raises(AnalyzerError, match="top level"):
            db.sql(
                "SELECT * FROM r WHERE a IN (SELECT PROVENANCE c FROM s)")


class TestSetOps:
    def test_arity_mismatch_raises(self, db):
        with pytest.raises(AnalyzerError, match="different numbers"):
            db.sql("SELECT a FROM r UNION SELECT c, d FROM s")

    def test_setop_plan_shape(self, db):
        plan = plan_of(db, "SELECT a FROM r UNION SELECT c FROM s")
        assert isinstance(plan, SetOp)

    def test_join_condition_with_sublink_normalized(self, db):
        plan = plan_of(
            db, "SELECT 1 FROM r JOIN s ON a = c AND "
                "d IN (SELECT b FROM r r2)")
        # the join must have been replaced by a selection over a cross
        joins = [op for op in iter_operators(plan)
                 if isinstance(op, Join) and op.kind != JoinKind.CROSS]
        assert not joins

    def test_left_join_with_sublink_executes(self, db):
        # executable (the executor evaluates sublinks in join conditions),
        # but provenance through it is rejected by the rewriter
        db.sql("SELECT 1 FROM r LEFT JOIN s ON d IN (SELECT b FROM r r2)")
        from repro import RewriteError
        with pytest.raises(RewriteError, match="join conditions"):
            db.provenance(
                "SELECT 1 FROM r LEFT JOIN s ON d IN (SELECT b FROM r r2)")
