"""Property-based tests of the wire codec (hypothesis).

Mirrors ``test_storage_codec.py`` for the network layer:

1. Round trips: every frontend, backend and startup-phase message type
   — with randomized names, SQL text, parameter values (NULLs, unicode,
   binary payloads) — must survive ``encode()`` → frame split →
   ``parse_*()`` field-exactly.
2. Truncation: every strict prefix of every non-empty message payload
   raises a clean :class:`~repro.errors.ProtocolError` — never an
   ``IndexError``, ``struct.error`` or ``UnicodeDecodeError``.
3. Garbage: arbitrary bytes under any tag either parse or raise
   :class:`~repro.errors.ProtocolError`; nothing else escapes.
4. Framing: a packet carrying many messages, split across arbitrary
   TCP-read boundaries, reassembles into exactly the original message
   sequence; impossible frame lengths fail fast.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    AuthenticationError, BindError, CatalogError, ConnectionLimitError,
    IntegrityError, NotSupportedError, ProtocolError, ReproError,
    SQLSyntaxError, ServerShutdownError, TransactionError,
)
from repro.server import protocol

# -- strategies ---------------------------------------------------------------

#: text legal inside a cstring: no NUL, no surrogates.
_CTEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",),
                           blacklist_characters="\x00"),
    max_size=20)
_NAME = _CTEXT
_KEY = _CTEXT.filter(bool)          # startup parameter keys are non-empty
_VALUE = st.one_of(st.none(), st.binary(max_size=24))
_VALUES = st.lists(_VALUE, max_size=5).map(tuple)
_OID = st.integers(min_value=0, max_value=2 ** 31 - 1)
_OIDS = st.lists(_OID, max_size=5).map(tuple)
_INT32 = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
_FORMATS = st.lists(st.sampled_from((0, 1)), max_size=4).map(tuple)
_KIND = st.sampled_from(("S", "P"))

_FIELD_DESCRIPTIONS = st.builds(
    protocol.FieldDescription,
    name=_NAME, type_oid=_OID,
    table_oid=_OID, column=st.integers(0, 1000),
    type_size=st.integers(-1, 1000), type_modifier=st.integers(-1, 1000),
    format_code=st.sampled_from((0, 1)))

#: printable single-char error-field keys (0x01..0xff, ascii letters).
_ERROR_FIELDS = st.lists(
    st.tuples(st.sampled_from("SVCMDHPW"), _CTEXT), max_size=4).map(tuple)

FRONTEND = st.one_of(
    st.builds(protocol.Password, _CTEXT),
    st.builds(protocol.Query, _CTEXT),
    st.builds(protocol.Parse, _NAME, _CTEXT, _OIDS),
    st.builds(protocol.Bind, _NAME, _NAME, _FORMATS, _VALUES, _FORMATS),
    st.builds(protocol.Describe, _KIND, _NAME),
    st.builds(protocol.Execute, _NAME, st.integers(0, 2 ** 31 - 1)),
    st.builds(protocol.CloseMsg, _KIND, _NAME),
    st.builds(protocol.Flush),
    st.builds(protocol.Sync),
    st.builds(protocol.Terminate),
)

BACKEND = st.one_of(
    st.builds(protocol.Authentication,
              st.sampled_from((protocol.AUTH_OK,
                               protocol.AUTH_CLEARTEXT_PASSWORD))),
    st.builds(protocol.ParameterStatus, _CTEXT, _CTEXT),
    st.builds(protocol.BackendKeyData, _INT32, _INT32),
    st.builds(protocol.ReadyForQuery, st.sampled_from(("I", "T", "E"))),
    st.lists(_FIELD_DESCRIPTIONS, max_size=5).map(
        lambda fields: protocol.RowDescription(tuple(fields))),
    st.builds(protocol.DataRow, _VALUES),
    st.builds(protocol.CommandComplete, _CTEXT),
    st.builds(protocol.EmptyQueryResponse),
    st.builds(protocol.ParseComplete),
    st.builds(protocol.BindComplete),
    st.builds(protocol.CloseComplete),
    st.builds(protocol.NoData),
    st.builds(protocol.PortalSuspended),
    st.builds(protocol.ParameterDescription, _OIDS),
    st.builds(protocol.ErrorResponse, _ERROR_FIELDS),
    st.builds(protocol.NoticeResponse, _ERROR_FIELDS),
)

STARTUP = st.one_of(
    st.lists(st.tuples(_KEY, _CTEXT), max_size=4).map(
        lambda pairs: protocol.Startup(tuple(pairs))),
    st.builds(protocol.SSLRequest),
    st.builds(protocol.GSSEncRequest),
    st.builds(protocol.CancelRequest, _INT32, _INT32),
)


def _split_frame(encoded: bytes) -> tuple[bytes, bytes]:
    """tag + payload of one encoded tagged message, with the length
    field checked against the actual frame size."""
    tag, length = encoded[:1], int.from_bytes(encoded[1:5], "big")
    assert length == len(encoded) - 1
    return tag, encoded[5:]


# -- round trips --------------------------------------------------------------

class TestRoundTrips:
    @settings(max_examples=120, deadline=None)
    @given(FRONTEND)
    def test_frontend(self, message):
        tag, payload = _split_frame(message.encode())
        assert protocol.parse_frontend(tag, payload) == message

    @settings(max_examples=120, deadline=None)
    @given(BACKEND)
    def test_backend(self, message):
        tag, payload = _split_frame(message.encode())
        assert protocol.parse_backend(tag, payload) == message

    @settings(max_examples=80, deadline=None)
    @given(STARTUP)
    def test_startup(self, message):
        encoded = message.encode()
        length = int.from_bytes(encoded[:4], "big")
        assert length == len(encoded)
        assert protocol.parse_startup(encoded[4:]) == message

    def test_error_response_accessors(self):
        error = protocol.ErrorResponse.make("boom", sqlstate="42601")
        tag, payload = _split_frame(error.encode())
        parsed = protocol.parse_backend(tag, payload)
        assert parsed.message == "boom"
        assert parsed.sqlstate == "42601"
        assert parsed.severity == "ERROR"
        notice = protocol.NoticeResponse.make("heads up")
        assert notice.TAG == b"N"
        assert notice.severity == "NOTICE"

    def test_every_message_type_is_covered(self):
        """The strategies above must include every registered parser, so
        a new message type cannot silently skip fuzzing."""
        frontend_tags = {m.encode()[:1] for m in (
            protocol.Password("x"), protocol.Query("q"),
            protocol.Parse("", "q"), protocol.Bind("", ""),
            protocol.Describe("S", ""), protocol.Execute(""),
            protocol.CloseMsg("S", ""), protocol.Flush(),
            protocol.Sync(), protocol.Terminate())}
        assert frontend_tags == set(protocol._FRONTEND_PARSERS)
        backend_tags = {m.encode()[:1] for m in (
            protocol.Authentication(0), protocol.ParameterStatus("a", "b"),
            protocol.BackendKeyData(1, 2), protocol.ReadyForQuery("I"),
            protocol.RowDescription(()), protocol.DataRow(()),
            protocol.CommandComplete("t"), protocol.EmptyQueryResponse(),
            protocol.ErrorResponse.make("e"),
            protocol.NoticeResponse.make("n"), protocol.ParseComplete(),
            protocol.BindComplete(), protocol.CloseComplete(),
            protocol.NoData(), protocol.PortalSuspended(),
            protocol.ParameterDescription(()))}
        assert backend_tags == set(protocol._BACKEND_PARSERS)


# -- truncation ---------------------------------------------------------------

class TestTruncation:
    @settings(max_examples=60, deadline=None)
    @given(FRONTEND)
    def test_frontend_prefixes_raise(self, message):
        tag, payload = _split_frame(message.encode())
        for cut in range(len(payload)):
            with pytest.raises(ProtocolError):
                protocol.parse_frontend(tag, payload[:cut])

    @settings(max_examples=60, deadline=None)
    @given(BACKEND)
    def test_backend_prefixes_raise(self, message):
        tag, payload = _split_frame(message.encode())
        for cut in range(len(payload)):
            with pytest.raises(ProtocolError):
                protocol.parse_backend(tag, payload[:cut])

    @settings(max_examples=40, deadline=None)
    @given(STARTUP)
    def test_startup_prefixes_raise(self, message):
        payload = message.encode()[4:]
        for cut in range(len(payload)):
            with pytest.raises(ProtocolError):
                protocol.parse_startup(payload[:cut])

    def test_trailing_garbage_rejected(self):
        """A payload with bytes after the message body is a framing
        error, not silently ignored."""
        _, payload = _split_frame(protocol.Execute("p", 5).encode())
        with pytest.raises(ProtocolError, match="trailing"):
            protocol.parse_frontend(b"E", payload + b"xx")
        with pytest.raises(ProtocolError, match="trailing"):
            protocol.parse_startup(
                protocol.SSLRequest().encode()[4:] + b"\x00")


# -- garbage ------------------------------------------------------------------

_ALL_TAGS = sorted(set(protocol._FRONTEND_PARSERS)
                   | set(protocol._BACKEND_PARSERS) | {b"?", b"\x00"})


class TestGarbage:
    @settings(max_examples=200, deadline=None)
    @given(st.sampled_from(_ALL_TAGS), st.binary(max_size=64))
    def test_only_protocol_error_escapes(self, tag, payload):
        """Arbitrary bytes under any tag: parse or ProtocolError —
        never IndexError / struct.error / UnicodeDecodeError."""
        for parse in (protocol.parse_frontend, protocol.parse_backend):
            try:
                parse(tag, payload)
            except ProtocolError:
                pass

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=64))
    def test_startup_garbage(self, payload):
        try:
            protocol.parse_startup(payload)
        except ProtocolError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=32))
    def test_text_decode_never_crashes(self, data):
        for oid in (0, protocol.OID_INT8, protocol.OID_FLOAT8,
                    protocol.OID_TEXT, protocol.OID_BOOL,
                    protocol.OID_UNKNOWN):
            try:
                protocol.decode_text(data, oid)
            except ProtocolError:
                pass


# -- framing ------------------------------------------------------------------

class TestMessageStream:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(FRONTEND, min_size=1, max_size=6),
           st.data())
    def test_split_across_reads(self, messages, data):
        """A multi-message packet fed in arbitrary-size chunks (as TCP
        may deliver it) reassembles into the original sequence."""
        packet = b"".join(m.encode() for m in messages)
        stream = protocol.MessageStream()
        received = []
        position = 0
        while position < len(packet):
            size = data.draw(st.integers(1, len(packet) - position),
                             label="chunk")
            stream.feed(packet[position:position + size])
            position += size
            while (framed := stream.next_message()) is not None:
                received.append(protocol.parse_frontend(*framed))
        assert received == messages
        assert stream.pending == 0

    def test_startup_then_messages_one_packet(self):
        """The handshake and the first commands may arrive in a single
        read; the stream switches framing modes mid-buffer."""
        packet = (protocol.Startup((("user", "u"),)).encode()
                  + protocol.Query("SELECT 1").encode()
                  + protocol.Terminate().encode())
        stream = protocol.MessageStream()
        stream.feed(packet)
        assert stream.next_startup() == protocol.Startup((("user", "u"),))
        assert protocol.parse_frontend(*stream.next_message()) == \
            protocol.Query("SELECT 1")
        assert protocol.parse_frontend(*stream.next_message()) == \
            protocol.Terminate()
        assert stream.next_message() is None

    def test_incomplete_returns_none(self):
        encoded = protocol.Query("SELECT 1").encode()
        stream = protocol.MessageStream()
        for byte in encoded[:-1]:
            stream.feed(bytes([byte]))
            assert stream.next_message() is None
        stream.feed(encoded[-1:])
        assert stream.next_message() is not None

    @pytest.mark.parametrize("length", [-1, 0, 3,
                                        protocol.MAX_MESSAGE_LENGTH + 1])
    def test_impossible_lengths_fail_fast(self, length):
        stream = protocol.MessageStream()
        stream.feed(b"Q" + length.to_bytes(4, "big", signed=True))
        with pytest.raises(ProtocolError):
            stream.next_message()
        startup = protocol.MessageStream()
        startup.feed(length.to_bytes(4, "big", signed=True))
        with pytest.raises(ProtocolError):
            startup.next_startup()


# -- SQLSTATE mapping ---------------------------------------------------------

class TestSqlstateMapping:
    @pytest.mark.parametrize("exc_type,code", [
        (AuthenticationError, "28P01"),
        (ConnectionLimitError, "53300"),
        (ServerShutdownError, "57P01"),
        (ProtocolError, "08P01"),
        (SQLSyntaxError, "42601"),
        (BindError, "07001"),
        (IntegrityError, "23505"),
        (CatalogError, "42P01"),
        (TransactionError, "40001"),
        (NotSupportedError, "0A000"),
    ])
    def test_exception_to_code(self, exc_type, code):
        assert protocol.sqlstate_for(exc_type("x")) == code

    def test_explicit_sqlstate_attribute_wins(self):
        exc = TransactionError("aborted")
        exc.sqlstate = "25P02"
        assert protocol.sqlstate_for(exc) == "25P02"

    def test_code_to_exception_round_trip(self):
        for exc_type in (SQLSyntaxError, CatalogError, TransactionError,
                         AuthenticationError, ConnectionLimitError):
            code = protocol.sqlstate_for(exc_type("x"))
            revived = protocol.exception_for(code, "remote message")
            assert isinstance(revived, exc_type)
            assert revived.sqlstate == code
            assert "remote message" in str(revived)

    def test_unknown_code_maps_by_class_then_generic(self):
        assert isinstance(protocol.exception_for("42P99", "m"),
                          ReproError)
        fallback = protocol.exception_for("ZZ999", "m")
        assert isinstance(fallback, ReproError)
        assert fallback.sqlstate == "ZZ999"
