"""The closed-form tracing oracle vs the rewrites (independent paths)."""

import pytest

from repro.expressions.ast import Col, Comparison, Const, Sublink, SublinkKind
from repro.algebra.operators import BaseRelation, Project, Select
from repro.provenance.oracle import closed_form_provenance
from repro.provenance.influence import (
    InfluenceRole, influence_role, sublink_provenance_filter,
)
from repro.schema import Schema


def scan(name, *cols):
    return Schema.of(*cols), BaseRelation(name, name, Schema.of(*cols))


@pytest.fixture
def catalog(figure3_catalog):
    return figure3_catalog


class TestClosedFormSelection:
    def test_any_sublink_true(self, catalog):
        _, r = scan("r", "a", "b")
        _, s = scan("s", "c", "d")
        sub = Project(s, [("c", Col("c"))])
        query = Select(r, Sublink(SublinkKind.ANY, sub, "=", Col("a")))
        results = closed_form_provenance(query, catalog)
        by_row = {entry[0]: entry[1] for entry in results}
        assert set(by_row) == {(1, 1), (2, 1)}
        assert by_row[(1, 1)][0] == [(1,)]
        assert by_row[(2, 1)][0] == [(2,)]

    def test_all_sublink(self, catalog):
        _, s = scan("s", "c", "d")
        _, r = scan("r", "a", "b")
        sub = Project(r, [("a", Col("a"))])
        query = Select(s, Sublink(SublinkKind.ALL, sub, ">", Col("c")))
        results = closed_form_provenance(query, catalog)
        (row, prov), = results
        assert row == (4, 5)
        assert sorted(prov[0]) == [(1,), (2,), (3,)]

    def test_matches_gen_rewrite(self, catalog, figure3_db):
        _, r = scan("r", "a", "b")
        _, s = scan("s", "c", "d")
        sub = Project(s, [("c", Col("c"))])
        query = Select(r, Sublink(SublinkKind.ANY, sub, "=", Col("a")))
        oracle = {entry[0]: {tuple(t) for t in entry[1][0]}
                  for entry in closed_form_provenance(query, catalog)}
        prov = figure3_db.provenance(
            "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)",
            strategy="gen")
        rewrite = {}
        for row in prov.rows:
            rewrite.setdefault((row[0], row[1]), set()).add((row[4],))
        assert oracle == rewrite


class TestClosedFormProjection:
    def test_scalar_sublink_projection(self, catalog):
        _, r = scan("r", "a", "b")
        _, s = scan("s", "c", "d")
        from repro.expressions.ast import AggCall
        from repro.algebra.operators import Aggregate
        agg = Aggregate(Project(s, [("c", Col("c"))]), (),
                        [("m", AggCall("max", Col("c")))])
        query = Project(
            r, [("a", Col("a")),
                ("m", Sublink(SublinkKind.SCALAR, agg))])
        results = closed_form_provenance(query, catalog)
        assert len(results) == 3
        for row, prov in results:
            assert row[1] == 4
            assert prov[0] == [(4,)]  # aggregate output row


class TestInfluenceRoles:
    """The classical Section 2.3 role analysis (oracle/pedagogy only)."""

    def test_reqtrue(self):
        role = influence_role(lambda v: v, actual=True)
        assert role == InfluenceRole.REQTRUE

    def test_reqfalse(self):
        # condition = NOT Csub: it holds only when the sublink is false
        role = influence_role(lambda v: not v, actual=False)
        assert role == InfluenceRole.REQFALSE
        role = influence_role(lambda v: not v, actual=True)
        assert role == InfluenceRole.REQFALSE

    def test_ind(self):
        role = influence_role(lambda v: True, actual=True)
        assert role == InfluenceRole.IND


class TestProvenanceFilters:
    """Figure 2 closed forms as direct predicates."""

    def make(self, kind, op=None, test=None):
        query = BaseRelation("s", "s", Schema.of("c"))
        return Sublink(kind, query, op, test)

    def test_any_true_keeps_matches(self):
        sub = self.make(SublinkKind.ANY, "=", Col("a"))
        keep = sublink_provenance_filter(sub, True, 2)
        assert keep((2,)) and not keep((3,))

    def test_any_false_keeps_all(self):
        sub = self.make(SublinkKind.ANY, "=", Col("a"))
        keep = sublink_provenance_filter(sub, False, 9)
        assert keep((2,)) and keep((3,))

    def test_all_true_keeps_all(self):
        sub = self.make(SublinkKind.ALL, "<", Col("a"))
        keep = sublink_provenance_filter(sub, True, 1)
        assert keep((2,)) and keep((99,))

    def test_all_false_keeps_failures(self):
        sub = self.make(SublinkKind.ALL, "<", Col("a"))
        keep = sublink_provenance_filter(sub, False, 5)
        assert keep((3,)) and not keep((9,))

    def test_exists_and_scalar_keep_everything(self):
        for kind in (SublinkKind.EXISTS, SublinkKind.SCALAR):
            keep = sublink_provenance_filter(self.make(kind), True, None)
            assert keep((1,)) and keep((None,))

    def test_null_comparison_excluded_from_true_branch(self):
        sub = self.make(SublinkKind.ANY, "=", Col("a"))
        keep = sublink_provenance_filter(sub, True, 2)
        assert not keep((None,))  # unknown comparison is not 'true'
