"""Close-path hardening: ``Engine.close`` and ``Connection.close`` are
idempotent and safe to race from many threads.

The serving layer tears sessions down from executor threads while the
asyncio loop (or another client) may be closing the engine — these tests
pin the invariants that makes safe:

* double/concurrent ``close()`` runs the teardown exactly once;
* closing mid-transaction from another thread never corrupts the
  session state machine (the transaction is rolled back);
* closing the engine while another thread streams a ``Result`` leaves
  no leased plan instances behind.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import Engine
from repro.errors import InterfaceError


class TestIdempotentClose:
    def test_engine_double_close(self):
        engine = Engine()
        engine.close()
        engine.close()
        assert engine.closed

    def test_connection_double_close(self):
        engine = Engine()
        conn = engine.connect()
        conn.close()
        conn.close()
        assert conn.closed
        engine.close()

    def test_concurrent_engine_close_runs_once(self):
        engine = Engine()
        conns = [engine.connect() for _ in range(4)]
        barrier = threading.Barrier(8)
        errors: list = []

        def hammer():
            barrier.wait()
            try:
                engine.close()
            except Exception as exc:   # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert engine.closed
        assert all(conn.closed for conn in conns)

    def test_concurrent_connection_close(self):
        engine = Engine()
        conn = engine.connect()
        conn.execute("CREATE TABLE t (a int)")
        conn.begin()
        conn.execute("INSERT INTO t VALUES (1)")
        barrier = threading.Barrier(8)
        errors: list = []

        def hammer():
            barrier.wait()
            try:
                conn.close()
            except Exception as exc:   # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert conn.closed
        # the open transaction was rolled back, not committed
        with engine.connect() as probe:
            assert probe.execute("SELECT count(*) FROM t").rows == [(0,)]
        engine.close()

    def test_closed_connection_refuses_work(self):
        engine = Engine()
        conn = engine.connect()
        conn.close()
        with pytest.raises(InterfaceError):
            conn.execute("SELECT 1")
        engine.close()


class TestCloseDuringStreaming:
    def _populated(self) -> Engine:
        engine = Engine()
        with engine.connect() as conn:
            conn.execute("CREATE TABLE big (k int)")
            insert = conn.prepare("INSERT INTO big VALUES (?)")
            with conn.transaction():
                for k in range(500):
                    insert.execute((k,))
        return engine

    def test_session_close_releases_streaming_result(self):
        engine = self._populated()
        conn = engine.connect()
        result = conn.execute("SELECT k FROM big")
        assert len(result.fetch(10)) == 10      # partially consumed
        conn.close()
        assert engine.plan_cache.leased_instances() == 0
        engine.close()

    def test_engine_close_races_streaming_reader(self):
        engine = self._populated()
        started = threading.Event()
        outcome: dict = {}

        def reader():
            conn = engine.connect()
            try:
                result = conn.execute("SELECT k FROM big")
                started.set()
                outcome["rows"] = len(result.rows)
            except Exception as exc:   # noqa: BLE001
                started.set()
                outcome["error"] = exc
            finally:
                try:
                    conn.close()
                except Exception:      # noqa: BLE001
                    pass

        thread = threading.Thread(target=reader)
        thread.start()
        assert started.wait(10)
        engine.close()
        thread.join(timeout=10)
        # either the read completed before the close won, or it failed
        # cleanly — never a deadlock or a partial row count
        if "rows" in outcome:
            assert outcome["rows"] == 500
        else:
            assert isinstance(outcome["error"], Exception)
        assert engine.plan_cache.leased_instances() == 0
