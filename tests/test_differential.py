"""Differential workload test: a durable engine (reopened every N
steps) and an in-memory engine run ~200 randomized steps in lockstep —
DDL, DML, index DDL, ANALYZE, explicit transactions, provenance queries.

After every step both sides must agree on the outcome (result rows or
raised error class), and at every reopen point the recovered durable
database must equal the in-memory one: table bags, schemas, index
definitions + structures, ANALYZE statistics, ``SELECT PROVENANCE``
outputs, and plan-cache behavior (a repeated query is a cache hit on
both sides and returns identical rows).
"""

from __future__ import annotations

import random
from collections import Counter

from repro import connect
from repro.errors import ReproError

STEPS = 200
REOPEN_EVERY = 25
SEED = 0xED6B7


class Workload:
    """Seeded generator of one SQL statement (or txn bundle) per step."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.counter = 0

    def _table_names(self, conn) -> list[str]:
        return conn.catalog.names()

    def _value(self) -> str:
        if self.rng.random() < 0.15:
            return "NULL"
        return str(self.rng.randrange(-5, 6))

    def next_statements(self, conn) -> list[str]:
        """The next step, as statements to run on both engines."""
        rng = self.rng
        tables = self._table_names(conn)
        roll = rng.random()
        if not tables or roll < 0.08:
            self.counter += 1
            return [f"CREATE TABLE t{self.counter} (a int, b int)"]
        table = rng.choice(tables)
        if roll < 0.40:
            rows = ", ".join(
                f"({self._value()}, {self._value()})"
                for _ in range(rng.randrange(1, 5)))
            return [f"INSERT INTO {table} VALUES {rows}"]
        if roll < 0.50:
            op = rng.choice(["<", "<=", "=", ">", ">="])
            return [f"DELETE FROM {table} WHERE a {op} "
                    f"{rng.randrange(-5, 6)}"]
        if roll < 0.56:
            kind = rng.choice(["hash", "sorted"])
            unique = "UNIQUE " if rng.random() < 0.25 else ""
            column = rng.choice(["a", "b"])
            name = f"ix_{table}_{column}_{self.counter}"
            self.counter += 1
            return [f"CREATE {unique}INDEX {name} ON {table} "
                    f"({column}) USING {kind}"]
        if roll < 0.60:
            indexes = conn.catalog.index_names()
            if indexes:
                return [f"DROP INDEX {rng.choice(indexes)}"]
            return ["ANALYZE"]
        if roll < 0.70:
            target = table if rng.random() < 0.5 else None
            return [f"ANALYZE {target}" if target else "ANALYZE"]
        if roll < 0.76 and len(tables) > 1:
            return [f"DROP TABLE {table}"]
        if roll < 0.88:
            # an explicit transaction: a bundle committed or rolled back
            body = [f"INSERT INTO {table} VALUES "
                    f"({self._value()}, {self._value()})",
                    f"DELETE FROM {table} WHERE b = "
                    f"{rng.randrange(-5, 6)}"]
            end = "COMMIT" if rng.random() < 0.7 else "ROLLBACK"
            return ["BEGIN", *body, end]
        other = rng.choice(tables)
        return [f"SELECT PROVENANCE x.a, x.b FROM {table} x "
                f"WHERE x.a = ANY (SELECT y.b FROM {other} y)"]


def run_both(mem, dur, sql: str):
    """Run one statement on both engines; outcomes must agree."""
    results = []
    for conn in (mem, dur):
        try:
            outcome = conn.execute(sql)
            if hasattr(outcome, "rows"):
                outcome = ("rows", sorted(outcome.rows, key=repr))
            else:
                outcome = ("status", outcome)
        except ReproError as exc:
            outcome = ("error", type(exc).__name__)
            if conn.in_transaction:
                conn.rollback()
        results.append(outcome)
    assert results[0] == results[1], f"diverged on {sql!r}: {results}"
    return results[0]


def assert_equal_databases(mem, dur):
    mc, dc = mem.catalog, dur.catalog
    assert mc.names() == dc.names()
    for name in mc.names():
        left, right = mc.get(name), dc.get(name)
        assert [(a.name, a.type) for a in left.schema] == \
            [(a.name, a.type) for a in right.schema]
        assert Counter(left.rows) == Counter(right.rows), \
            f"table {name} diverged"
    assert sorted(mc.index_names()) == sorted(dc.index_names())
    for name in mc.index_names():
        mi, di = mc.get_index(name), dc.get_index(name)
        assert (mi.table, mi.column, mi.kind, mi.unique) == \
            (di.table, di.column, di.kind, di.unique)
        assert len(mi) == len(di)
        rows = dc.get(di.table).rows
        for row in rows:
            key = row[di.position]
            if key is not None:
                assert row in di.lookup(key)
    assert sorted(mc.stats.tables()) == sorted(dc.stats.tables())
    for table in mc.stats.tables():
        assert mc.stats.get(table) == dc.stats.get(table), \
            f"stats for {table} diverged"


def assert_equal_queries(mem, dur):
    """Provenance output and plan-cache behavior must match."""
    for table in mem.catalog.names():
        sql = (f"SELECT PROVENANCE x.a FROM {table} x "
               f"WHERE x.b = ANY (SELECT y.b FROM {table} y)")
        first = run_both(mem, dur, sql)
        hits = (mem.plan_cache.hits, dur.plan_cache.hits)
        second = run_both(mem, dur, sql)          # identical rows again
        assert first == second
        # the repeat must be served from each engine's plan cache
        assert mem.plan_cache.hits > hits[0]
        assert dur.plan_cache.hits > hits[1]


def _run_differential(tmp_path, steps: int, **durable_options):
    rng = random.Random(SEED)
    workload = Workload(rng)
    dbdir = str(tmp_path / "db")
    mem = connect()
    dur = connect(path=dbdir, **durable_options)
    reopens = 0
    try:
        for step in range(steps):
            for sql in workload.next_statements(mem):
                run_both(mem, dur, sql)
            if (step + 1) % REOPEN_EVERY == 0:
                if rng.random() < 0.5:
                    dur.execute("CHECKPOINT")     # vary what replay sees
                dur.close()
                dur = connect(path=dbdir, **durable_options)
                reopens += 1
                assert_equal_databases(mem, dur)
                assert_equal_queries(mem, dur)
        assert reopens == steps // REOPEN_EVERY
        assert_equal_databases(mem, dur)
        assert_equal_queries(mem, dur)
        # the workload must actually have exercised the interesting ops
        assert mem.catalog.names(), "workload ended with no tables"
    finally:
        mem.close()
        dur.close()


def test_differential_workload(tmp_path):
    _run_differential(tmp_path, STEPS)


def test_differential_workload_with_group_commit_linger(tmp_path):
    """The same lockstep oracle with a nonzero group-commit window: the
    flusher's lingering/batching must be invisible to durability — every
    committed statement is on disk when ``commit`` returns, so each
    reopen still recovers a database equal to the in-memory twin."""
    _run_differential(tmp_path, steps=3 * REOPEN_EVERY,
                      group_commit_ms=2.0)
