"""Aggregate accumulators (SQL NULL-skipping and empty-input semantics)."""

import pytest

from repro.errors import ExpressionError
from repro.expressions.aggregates import make_accumulator


def feed(name, values, star=False, distinct=False):
    accumulator = make_accumulator(name, star=star, distinct=distinct)
    for value in values:
        accumulator.add(value)
    return accumulator.result()


class TestCount:
    def test_count_skips_nulls(self):
        assert feed("count", [1, None, 2]) == 2

    def test_count_star_counts_everything(self):
        assert feed("count", [1, None, 2], star=True) == 3

    def test_count_empty_is_zero(self):
        assert feed("count", []) == 0
        assert feed("count", [], star=True) == 0

    def test_count_distinct(self):
        assert feed("count", [1, 1, 2, None, 2], distinct=True) == 2


class TestSumAvg:
    def test_sum(self):
        assert feed("sum", [1, 2, 3]) == 6

    def test_sum_skips_nulls(self):
        assert feed("sum", [1, None, 2]) == 3

    def test_sum_empty_is_null(self):
        assert feed("sum", []) is None

    def test_sum_all_null_is_null(self):
        assert feed("sum", [None, None]) is None

    def test_avg(self):
        assert feed("avg", [1, 2, 3]) == 2.0

    def test_avg_skips_nulls(self):
        assert feed("avg", [2, None, 4]) == 3.0

    def test_avg_empty_is_null(self):
        assert feed("avg", []) is None

    def test_sum_distinct(self):
        assert feed("sum", [2, 2, 3], distinct=True) == 5


class TestMinMax:
    def test_min_max(self):
        assert feed("min", [3, 1, 2]) == 1
        assert feed("max", [3, 1, 2]) == 3

    def test_min_max_skip_nulls(self):
        assert feed("min", [None, 5, None]) == 5
        assert feed("max", [None]) is None

    def test_min_strings(self):
        assert feed("min", ["b", "a"]) == "a"


def test_unknown_aggregate_raises():
    with pytest.raises(ExpressionError):
        make_accumulator("median")
