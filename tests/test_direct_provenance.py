"""Direct provenance propagation (the paper's future-work operators) vs
the rewrite approach — a fully independent cross-validation path."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.provenance.direct import direct_provenance


def compare_paths(db: Database, sql: str, strategy: str = "gen"):
    """Rewrite-based and direct provenance must agree exactly."""
    plan = db.plan(sql)
    direct = direct_provenance(db.catalog, plan)
    rewritten = db.provenance(sql, strategy=strategy)
    assert list(direct.schema.names) == list(rewritten.schema.names)
    assert Counter(direct.rows) == Counter(rewritten.rows), sql
    return direct


class TestAgreementOnPaperExamples:
    def test_figure3_q1(self, figure3_db):
        compare_paths(
            figure3_db,
            "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)")

    def test_figure3_q2(self, figure3_db):
        compare_paths(
            figure3_db,
            "SELECT * FROM s WHERE c > ALL (SELECT a FROM r)")

    def test_figure3_q3(self, figure3_db):
        compare_paths(
            figure3_db,
            "SELECT * FROM r WHERE a = 3 OR "
            "NOT (a < ALL (SELECT c FROM s WHERE c <> 1))")

    def test_correlated_exists(self, figure3_db):
        compare_paths(
            figure3_db,
            "SELECT * FROM s WHERE EXISTS "
            "(SELECT * FROM r WHERE r.b = s.c)")

    def test_scalar_in_projection(self, figure3_db):
        compare_paths(
            figure3_db,
            "SELECT a, (SELECT max(c) FROM s) AS mx FROM r")

    def test_aggregation(self, figure3_db):
        compare_paths(figure3_db,
                      "SELECT b, sum(a) AS s FROM r GROUP BY b")

    def test_scalar_aggregate_empty_input(self, figure3_db):
        figure3_db.execute("CREATE TABLE empty (e int)")
        direct = compare_paths(figure3_db,
                               "SELECT count(*) AS n FROM empty")
        assert direct.rows == [(0, None)]

    def test_joins(self, figure3_db):
        compare_paths(figure3_db, "SELECT a, c FROM r, s WHERE a < c")
        compare_paths(figure3_db,
                      "SELECT a, d FROM r LEFT JOIN s ON a = c")

    def test_set_operations(self, figure3_db):
        compare_paths(figure3_db,
                      "SELECT a FROM r UNION ALL SELECT c FROM s")
        compare_paths(figure3_db,
                      "SELECT a FROM r INTERSECT SELECT c FROM s")
        compare_paths(figure3_db,
                      "SELECT a FROM r EXCEPT SELECT c FROM s")

    def test_distinct(self, figure3_db):
        compare_paths(figure3_db, "SELECT DISTINCT b FROM r")

    def test_order_by_propagates_provenance(self, figure3_db):
        # Sort must keep (row, access) pairs aligned — both directions.
        asc = direct_provenance(
            figure3_db.catalog,
            figure3_db.plan("SELECT a, b FROM r ORDER BY b, a"))
        assert [row[:2] for row in asc.rows] == [(1, 1), (2, 1), (3, 2)]
        desc = direct_provenance(
            figure3_db.catalog,
            figure3_db.plan("SELECT a, b FROM r ORDER BY a DESC"))
        assert [row[:2] for row in desc.rows] == [(3, 2), (2, 1), (1, 1)]

    def test_nested_sublinks(self, figure3_db):
        compare_paths(
            figure3_db,
            "SELECT a FROM r WHERE a IN ("
            "  SELECT c FROM s WHERE EXISTS ("
            "    SELECT * FROM r r2 WHERE r2.a = s.c))")

    def test_multiple_sublinks(self, figure3_db):
        compare_paths(
            figure3_db,
            "SELECT a FROM r WHERE a = ANY (SELECT c FROM s) "
            "AND a >= ALL (SELECT a FROM r r2 WHERE r2.a < 2)")

    def test_empty_result_keeps_schema(self, figure3_db):
        direct = compare_paths(
            figure3_db,
            "SELECT a FROM r WHERE a > 99 AND "
            "a = ANY (SELECT c FROM s)")
        assert any(name.startswith("prov_s") for name in
                   direct.schema.names)


small_int = st.integers(min_value=-3, max_value=3)
rows_st = st.lists(st.tuples(small_int, small_int), max_size=5)
shapes = st.sampled_from([
    "a {op} ANY (SELECT c FROM s)",
    "a {op} ALL (SELECT c FROM s WHERE d > 0)",
    "EXISTS (SELECT * FROM s WHERE c = b)",
    "NOT EXISTS (SELECT * FROM s WHERE c = b)",
    "a NOT IN (SELECT c FROM s)",
    "a {op} (SELECT min(c) FROM s)",
])
ops = st.sampled_from(["=", "<", ">="])


@settings(max_examples=50, deadline=None)
@given(rows_st, rows_st, shapes, ops)
def test_direct_matches_rewrite_on_random_databases(r_rows, s_rows,
                                                    shape, op):
    db = Database()
    db.execute("CREATE TABLE r (a int, b int)")
    db.insert("r", r_rows)
    db.execute("CREATE TABLE s (c int, d int)")
    db.insert("s", s_rows)
    predicate = shape.format(op=op)
    compare_paths(db, f"SELECT a, b FROM r WHERE {predicate}")
