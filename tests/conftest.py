"""Shared fixtures: the paper's example relations and small databases."""

from __future__ import annotations

import pytest

from repro import Database
from repro.catalog import Catalog
from repro.schema import Schema


@pytest.fixture
def figure3_db() -> Database:
    """The relations R and S from the paper's Figure 3."""
    db = Database()
    db.execute("CREATE TABLE r (a int, b int)")
    db.execute("INSERT INTO r VALUES (1, 1), (2, 1), (3, 2)")
    db.execute("CREATE TABLE s (c int, d int)")
    db.execute("INSERT INTO s VALUES (1, 3), (2, 4), (4, 5)")
    return db


@pytest.fixture
def figure3_catalog(figure3_db) -> Catalog:
    return figure3_db.catalog


@pytest.fixture
def section25_db() -> Database:
    """Relations of the Section 2.5 multiple-sublink ambiguity example:
    R = {(1)..(100)} (scaled down to 1..10), S = {(1),(5)}, U = {(5)}."""
    db = Database()
    db.execute("CREATE TABLE r (b int)")
    db.insert("r", [(i,) for i in range(1, 11)])
    db.execute("CREATE TABLE s (c int)")
    db.insert("s", [(1,), (5,)])
    db.execute("CREATE TABLE u (a int)")
    db.insert("u", [(5,)])
    return db


@pytest.fixture
def qex_db() -> Database:
    """Relations of the Section 3.1 representation example:
    R = {(1,2),(3,4)} schema (a,b); S = {(2),(5)} schema (c)."""
    db = Database()
    db.execute("CREATE TABLE r (a int, b int)")
    db.execute("INSERT INTO r VALUES (1, 2), (3, 4)")
    db.execute("CREATE TABLE s (c int)")
    db.execute("INSERT INTO s VALUES (2), (5)")
    return db


ALL_STRATEGIES = ("gen", "left", "move", "unn", "auto")
GENERAL_STRATEGIES = ("gen", "left", "move", "auto")
UNCORRELATED_STRATEGIES = ("gen", "left", "move")


def rows_of(db: Database, sql: str, strategy: str | None = None):
    """Sorted result rows of a query (test helper)."""
    relation = db.sql(sql, strategy=strategy)
    return sorted(relation.rows, key=_null_safe_key)


def _null_safe_key(row):
    return tuple((value is not None, str(type(value)), value)
                 for value in row)


def bag(rows):
    """Multiset view of a row list."""
    from collections import Counter
    return Counter(tuple(row) for row in rows)
