"""Three-valued logic, SQL comparisons and arithmetic."""

import pytest

from repro.datatypes import (
    NEGATED_COMPARISON, SQLType, arithmetic, compare, is_null, is_true,
    negate, null_safe_equal, null_safe_row_equal, render_value, sql_literal,
    tv_all, tv_and, tv_any, tv_not, tv_or,
)
from repro.errors import ExpressionError


class TestThreeValuedLogic:
    """Kleene truth tables (Figure 1's conditions use these)."""

    @pytest.mark.parametrize("left,right,expected", [
        (True, True, True), (True, False, False), (False, True, False),
        (False, False, False), (True, None, None), (None, True, None),
        (False, None, False), (None, False, False), (None, None, None),
    ])
    def test_and_table(self, left, right, expected):
        assert tv_and(left, right) == expected

    @pytest.mark.parametrize("left,right,expected", [
        (True, True, True), (True, False, True), (False, True, True),
        (False, False, False), (True, None, True), (None, True, True),
        (False, None, None), (None, False, None), (None, None, None),
    ])
    def test_or_table(self, left, right, expected):
        assert tv_or(left, right) == expected

    def test_not_table(self):
        assert tv_not(True) is False
        assert tv_not(False) is True
        assert tv_not(None) is None

    def test_tv_all_empty_is_vacuously_true(self):
        assert tv_all([]) is True

    def test_tv_any_empty_is_false(self):
        assert tv_any([]) is False

    def test_tv_all_short_circuits_on_false(self):
        def generator():
            yield False
            raise AssertionError("must short-circuit")
        assert tv_all(generator()) is False

    def test_tv_any_short_circuits_on_true(self):
        def generator():
            yield True
            raise AssertionError("must short-circuit")
        assert tv_any(generator()) is True

    def test_tv_all_unknown_propagates(self):
        assert tv_all([True, None, True]) is None

    def test_tv_any_unknown_propagates(self):
        assert tv_any([False, None]) is None

    def test_is_true_only_on_definite_true(self):
        assert is_true(True)
        assert not is_true(None)
        assert not is_true(False)


class TestComparisons:
    def test_null_operand_is_unknown(self):
        assert compare("=", None, 1) is None
        assert compare("<", 1, None) is None
        assert compare("<>", None, None) is None

    @pytest.mark.parametrize("op,left,right,expected", [
        ("=", 1, 1, True), ("=", 1, 2, False),
        ("<>", 1, 2, True), ("<>", 2, 2, False),
        ("<", 1, 2, True), ("<=", 2, 2, True),
        (">", 3, 2, True), (">=", 1, 2, False),
    ])
    def test_integer_comparisons(self, op, left, right, expected):
        assert compare(op, left, right) is expected

    def test_mixed_numeric_comparison(self):
        assert compare("=", 1, 1.0) is True
        assert compare("<", 1, 1.5) is True

    def test_string_comparison_is_lexicographic(self):
        assert compare("<", "1994-01-01", "1994-06-01") is True

    def test_incompatible_types_raise(self):
        with pytest.raises(ExpressionError):
            compare("=", 1, "one")

    def test_bool_only_compares_with_bool(self):
        assert compare("=", True, True) is True
        with pytest.raises(ExpressionError):
            compare("=", True, 1)

    def test_unknown_operator_raises(self):
        with pytest.raises(ExpressionError):
            compare("~", 1, 2)

    def test_negated_comparison_map_is_involutive(self):
        for op, negated in NEGATED_COMPARISON.items():
            assert NEGATED_COMPARISON[negated] == op


class TestNullSafeEquality:
    """The paper's =n operator: used by rules R5, G1 and the set ops."""

    def test_null_equals_null(self):
        assert null_safe_equal(None, None) is True

    def test_null_never_equals_value(self):
        assert null_safe_equal(None, 0) is False
        assert null_safe_equal("", None) is False

    def test_plain_equality(self):
        assert null_safe_equal(3, 3) is True
        assert null_safe_equal(3, 4) is False

    def test_row_equality(self):
        assert null_safe_row_equal((1, None), (1, None))
        assert not null_safe_row_equal((1, None), (1, 2))


class TestArithmetic:
    def test_null_propagates(self):
        assert arithmetic("+", None, 1) is None
        assert arithmetic("*", 2, None) is None

    def test_basic_operations(self):
        assert arithmetic("+", 2, 3) == 5
        assert arithmetic("-", 2, 3) == -1
        assert arithmetic("*", 2.5, 2) == 5.0
        assert arithmetic("/", 7, 2) == 3.5
        assert arithmetic("%", 7, 2) == 1

    def test_concatenation(self):
        assert arithmetic("||", "a", "b") == "ab"
        assert arithmetic("||", "n", 1) == "n1"

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            arithmetic("/", 1, 0)
        with pytest.raises(ExpressionError):
            arithmetic("%", 1, 0)

    def test_non_numeric_raises(self):
        with pytest.raises(ExpressionError):
            arithmetic("+", "a", 1)
        with pytest.raises(ExpressionError):
            arithmetic("+", True, 1)

    def test_negate(self):
        assert negate(3) == -3
        assert negate(None) is None
        with pytest.raises(ExpressionError):
            negate("x")


class TestRendering:
    def test_render_null(self):
        assert render_value(None) == "NULL"

    def test_render_bool(self):
        assert render_value(True) == "true"
        assert render_value(False) == "false"

    def test_sql_literal_escapes_quotes(self):
        assert sql_literal("it's") == "'it''s'"

    def test_sql_literal_null_and_bool(self):
        assert sql_literal(None) == "NULL"
        assert sql_literal(True) == "TRUE"


class TestSQLType:
    def test_parse_aliases(self):
        assert SQLType.parse("int") == SQLType.INTEGER
        assert SQLType.parse("VARCHAR(55)") == SQLType.TEXT
        assert SQLType.parse("decimal(15, 2)") == SQLType.FLOAT
        assert SQLType.parse("date") == SQLType.DATE

    def test_parse_unknown_raises(self):
        with pytest.raises(ExpressionError):
            SQLType.parse("blob")

    def test_is_null(self):
        assert is_null(None)
        assert not is_null(0)
