"""Sublink strategies on selections: the paper's Figure 3 examples and a
systematic matrix of sublink kinds x strategies."""

import pytest

from repro import Database, RewriteError

GENERAL = ("gen", "left", "move", "auto")


def prov_rows(db, sql, strategy):
    return sorted(db.provenance(sql, strategy=strategy).rows)


class TestFigure3Q1:
    """q1 = σ_{a = ANY(Π_c(S))}(R): Figure 3's exact provenance table."""

    EXPECTED = [(1, 1, 1, 1, 1, 3), (2, 1, 2, 1, 2, 4)]
    SQL = "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)"

    @pytest.mark.parametrize("strategy",
                             ("gen", "left", "move", "unn", "auto"))
    def test_all_strategies_match_paper(self, figure3_db, strategy):
        assert prov_rows(figure3_db, self.SQL, strategy) == self.EXPECTED

    def test_auto_picks_unn_for_equality_any(self, figure3_db):
        from repro.algebra.operators import Join, JoinKind
        from repro.algebra.trees import iter_operators
        from repro.expressions.ast import Sublink
        plan = figure3_db.plan(self.SQL, strategy="auto")
        # Unn produces a plain join and *no* sublink expressions at all
        sublinks = [
            e for op in iter_operators(plan) for e in op.expressions()
            if isinstance(e, Sublink)]
        assert not sublinks


class TestFigure3Q2:
    """q2 = σ_{c > ALL(Π_a(R))}(S): all of R contributes to (4,5)."""

    SQL = "SELECT * FROM s WHERE c > ALL (SELECT a FROM r)"
    EXPECTED = [(4, 5, 4, 5, 1, 1), (4, 5, 4, 5, 2, 1),
                (4, 5, 4, 5, 3, 2)]

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_matches_paper(self, figure3_db, strategy):
        assert prov_rows(figure3_db, self.SQL, strategy) == self.EXPECTED

    def test_unn_rejects_all_sublink(self, figure3_db):
        with pytest.raises(RewriteError):
            figure3_db.provenance(self.SQL, strategy="unn")


class TestFigure3Q3:
    """q3 = σ_{(a=3) ∨ ¬(a < ALL(σ_{c≠1}(Π_c(S))))}(R).

    Under Definition 2 (which Perm implements; Section 2.5 argues condition
    3 should apply to single sublinks too) tuple (3,2)'s sublink provenance
    is Tsub_false = {(2,4)} — the paper's Figure 3 lists {(2,4),(4,5)}
    because that figure still uses Definition 1's `ind` role.
    """

    SQL = ("SELECT * FROM r WHERE a = 3 OR "
           "NOT (a < ALL (SELECT c FROM s WHERE c <> 1))")
    EXPECTED = [(2, 1, 2, 1, 2, 4), (3, 2, 3, 2, 2, 4)]

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_definition2_provenance(self, figure3_db, strategy):
        assert prov_rows(figure3_db, self.SQL, strategy) == self.EXPECTED


class TestSublinkKinds:
    """Each sublink kind against each applicable strategy."""

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_exists_includes_whole_sublink_result(self, figure3_db,
                                                  strategy):
        sql = "SELECT a FROM r WHERE a = 1 AND EXISTS (SELECT c FROM s)"
        rows = prov_rows(figure3_db, sql, strategy)
        # one result tuple x three s-tuples (EXISTS provenance = Tsub)
        assert rows == [(1, 1, 1, 1, 3), (1, 1, 1, 2, 4),
                        (1, 1, 1, 4, 5)]

    def test_exists_unn_matches_gen(self, figure3_db):
        sql = "SELECT a FROM r WHERE a = 1 AND EXISTS (SELECT c FROM s)"
        assert prov_rows(figure3_db, sql, "unn") == \
            prov_rows(figure3_db, sql, "gen")

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_empty_exists_no_result(self, figure3_db, strategy):
        sql = ("SELECT a FROM r WHERE EXISTS "
               "(SELECT c FROM s WHERE c > 99)")
        assert prov_rows(figure3_db, sql, strategy) == []

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_not_exists_empty_sublink_null_padded(self, figure3_db,
                                                  strategy):
        sql = ("SELECT a FROM r WHERE a = 1 AND NOT EXISTS "
               "(SELECT c FROM s WHERE c > 99)")
        rows = prov_rows(figure3_db, sql, strategy)
        assert rows == [(1, 1, 1, None, None)]

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_scalar_sublink_provenance_is_whole_tsub(self, figure3_db,
                                                     strategy):
        sql = "SELECT a FROM r WHERE a < (SELECT max(c) FROM s)"
        rows = prov_rows(figure3_db, sql, strategy)
        # every result row carries all three s tuples (aggregate input)
        assert len(rows) == 3 * 3
        assert {row[0] for row in rows} == {1, 2, 3}

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_any_false_under_negation_keeps_whole_tsub(self, figure3_db,
                                                       strategy):
        # NOT IN: sublink is false for contributing tuples, provenance is
        # the entire sublink result (Figure 2, reqfalse for ANY)
        sql = "SELECT a FROM r WHERE a NOT IN (SELECT c FROM s WHERE c < 2)"
        rows = prov_rows(figure3_db, sql, strategy)
        assert rows == [(2, 2, 1, 1, 3), (3, 3, 2, 1, 3)]

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_multiple_sublinks_cross_provenance(self, figure3_db,
                                                strategy):
        sql = ("SELECT a FROM r WHERE a = ANY (SELECT c FROM s) "
               "AND a >= ALL (SELECT a FROM r r2 WHERE r2.a < 2)")
        rows = prov_rows(figure3_db, sql, strategy)
        # both sublinks contribute provenance columns
        prov_width = len(rows[0]) - 1
        assert prov_width == 2 + 2 + 2  # r + s + r2

    def test_forced_left_rejects_correlated(self, figure3_db):
        sql = ("SELECT a FROM r WHERE EXISTS "
               "(SELECT * FROM s WHERE c = b)")
        with pytest.raises(RewriteError, match="correlated"):
            figure3_db.provenance(sql, strategy="left")
        with pytest.raises(RewriteError, match="correlated"):
            figure3_db.provenance(sql, strategy="move")

    def test_unknown_strategy_rejected(self, figure3_db):
        with pytest.raises(RewriteError, match="unknown strategy"):
            figure3_db.provenance("SELECT a FROM r", strategy="turbo")


class TestCorrelatedSublinks:
    """Section 2.6/3.5: correlated sublinks require the Gen strategy."""

    def test_section35_example(self, figure3_db):
        # q = σ_{a = ANY(σ_{c=b}(S))}(R), the paper's Gen walkthrough
        sql = ("SELECT * FROM r WHERE a = ANY "
               "(SELECT c FROM s WHERE c = b)")
        rows = prov_rows(figure3_db, sql, "gen")
        assert rows == [(1, 1, 1, 1, 1, 3)]

    def test_correlated_exists(self, figure3_db):
        sql = ("SELECT * FROM s WHERE EXISTS "
               "(SELECT * FROM r WHERE r.b = s.c)")
        rows = prov_rows(figure3_db, sql, "gen")
        assert rows == [
            (1, 3, 1, 3, 1, 1), (1, 3, 1, 3, 2, 1), (2, 4, 2, 4, 3, 2)]

    def test_correlated_scalar_aggregate(self, figure3_db):
        # each r row compared against sum of matching s rows
        sql = ("SELECT a FROM r WHERE a < "
               "(SELECT sum(d) FROM s WHERE c >= a)")
        plain = sorted(figure3_db.sql(sql).rows)
        rows = prov_rows(figure3_db, sql, "gen")
        assert sorted({(row[0],) for row in rows}) == plain

    def test_auto_uses_gen_for_correlated(self, figure3_db):
        sql = ("SELECT * FROM s WHERE EXISTS "
               "(SELECT * FROM r WHERE r.b = s.c)")
        assert prov_rows(figure3_db, sql, "auto") == \
            prov_rows(figure3_db, sql, "gen")

    def test_nested_sublinks(self, figure3_db):
        # sublink inside a sublink (Q20 shape): inner correlated to middle
        sql = ("SELECT a FROM r WHERE a IN ("
               "  SELECT c FROM s WHERE EXISTS ("
               "    SELECT * FROM r r2 WHERE r2.a = s.c))")
        rows = prov_rows(figure3_db, sql, "auto")
        originals = sorted({(row[0],) for row in rows})
        assert originals == sorted(figure3_db.sql(sql).rows)
        # provenance spans r, s and r2
        assert len(rows[0]) == 1 + 2 + 2 + 2


class TestMultiplicities:
    """Bag semantics: duplicated input tuples duplicate provenance."""

    @pytest.mark.parametrize("strategy", GENERAL)
    def test_duplicate_input_rows(self, strategy):
        db = Database()
        db.execute("CREATE TABLE t (x int)")
        db.execute("INSERT INTO t VALUES (1), (1)")
        db.execute("CREATE TABLE u (y int)")
        db.execute("INSERT INTO u VALUES (1)")
        sql = "SELECT x FROM t WHERE x = ANY (SELECT y FROM u)"
        rows = db.provenance(sql, strategy=strategy).rows
        assert sorted(rows) == [(1, 1, 1), (1, 1, 1)]

    @pytest.mark.parametrize("strategy", ("gen", "left", "move", "unn"))
    def test_multiple_matches_duplicate_result_tuple(self, strategy):
        db = Database()
        db.execute("CREATE TABLE t (x int)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("CREATE TABLE u (y int, z int)")
        db.execute("INSERT INTO u VALUES (1, 10), (1, 20)")
        sql = "SELECT x FROM t WHERE x = ANY (SELECT y FROM u)"
        rows = db.provenance(sql, strategy=strategy).rows
        assert sorted(rows) == [(1, 1, 1, 10), (1, 1, 1, 20)]
