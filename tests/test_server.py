"""Integration tests of the network serving layer.

Every test boots a real :class:`~repro.server.Server` on an ephemeral
port inside its own event loop and talks to it through
:mod:`repro.client` — actual TCP, actual wire framing, no mocks.
Covered: the startup handshake (trust and cleartext-password auth,
database routing, admission control), the simple and extended query
protocols, transaction status across BEGIN/COMMIT/ROLLBACK including
failed-transaction recovery, provenance queries over the wire, graceful
shutdown, and the disconnect-mid-stream leak guarantee (an abandoned
portal's Result is closed server-side, releasing its leased plan
instance).

No pytest-asyncio dependency: each test wraps its scenario in
``asyncio.run`` via the :func:`serving` helper.
"""

from __future__ import annotations

import asyncio
import shutil
import subprocess
import sys
import threading
import time

import pytest

from repro.api import Engine
from repro.client import SyncConnection, connect
from repro.errors import (
    AnalyzerError, AuthenticationError, CatalogError, ConnectionLimitError,
    InterfaceError, ProtocolError, ReproError, TransactionError,
)
from repro.server import Server, ServerConfig
from repro.server.backend import command_tag, translate_placeholders
from repro.server import protocol


def serving(scenario, config: ServerConfig | None = None,
            engines: dict | None = None):
    """Run ``await scenario(server)`` against a freshly booted server."""
    async def runner():
        async with Server(config or ServerConfig(port=0),
                          engines) as server:
            return await scenario(server)
    return asyncio.run(runner())


async def wait_for(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.02)
    return predicate()


# -- handshake and auth -------------------------------------------------------

class TestHandshake:
    def test_startup_reports_parameters_and_key(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            assert conn.parameters["client_encoding"] == "UTF8"
            assert "server_version" in conn.parameters
            assert conn.backend_pid > 0
            assert conn.transaction_status == "I"
            await conn.close()
        serving(scenario)

    def test_cleartext_password_auth(self):
        config = ServerConfig(port=0, users={"alice": "secret",
                                             "bob": None})

        async def scenario(server):
            conn = await connect("127.0.0.1", server.port, user="alice",
                                 password="secret", database="repro")
            assert (await conn.execute("SELECT 1")).rows == [(1,)]
            await conn.close()
            # trust user connects with no password at all
            conn = await connect("127.0.0.1", server.port, user="bob",
                                 database="repro")
            await conn.close()
        serving(scenario, config)

    def test_wrong_password_and_unknown_user_rejected_alike(self):
        config = ServerConfig(port=0, users={"alice": "secret"},
                              databases={"repro": None})

        async def scenario(server):
            messages = []
            for kwargs in ({"user": "alice", "password": "nope"},
                           {"user": "mallory", "password": "x"}):
                with pytest.raises(AuthenticationError) as excinfo:
                    await connect("127.0.0.1", server.port,
                                  database="repro", **kwargs)
                messages.append(str(excinfo.value)
                                .replace("alice", "<u>")
                                .replace("mallory", "<u>"))
            # same message for both, so probing cannot enumerate users
            assert messages[0] == messages[1]
        serving(scenario, config)

    def test_unknown_database_rejected(self):
        async def scenario(server):
            with pytest.raises(AuthenticationError, match="nope"):
                await connect("127.0.0.1", server.port, database="nope")
        serving(scenario)

    def test_admission_control_over_limit(self):
        config = ServerConfig(port=0, max_connections=2)

        async def scenario(server):
            first = await connect("127.0.0.1", server.port)
            second = await connect("127.0.0.1", server.port)
            with pytest.raises(ConnectionLimitError):
                await connect("127.0.0.1", server.port)
            # a freed slot is usable again
            await first.close()
            assert await wait_for(lambda: server.connection_count < 2)
            third = await connect("127.0.0.1", server.port)
            await third.close()
            await second.close()
        serving(scenario, config)

    def test_database_routing_isolates_engines(self):
        config = ServerConfig(port=0,
                              databases={"db1": None, "db2": None})

        async def scenario(server):
            one = await connect("127.0.0.1", server.port, database="db1")
            two = await connect("127.0.0.1", server.port, database="db2")
            await one.execute("CREATE TABLE t (a int)")
            await one.execute("INSERT INTO t VALUES (1)")
            # db2 never sees db1's table
            with pytest.raises((CatalogError, AnalyzerError)):
                await two.execute("SELECT * FROM t")
            assert (await one.execute("SELECT count(*) FROM t")
                    ).rows == [(1,)]
            assert set(server.engines) == {"db1", "db2"}
            await one.close()
            await two.close()
        serving(scenario, config)


# -- simple protocol ----------------------------------------------------------

class TestSimpleQuery:
    def test_multi_statement_script(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            results = await conn.query(
                "CREATE TABLE r (a int, b text); "
                "INSERT INTO r VALUES (1, 'x'); "
                "INSERT INTO r VALUES (2, 'y'); "
                "SELECT a, b FROM r")
            assert [r.tag for r in results] == [
                "CREATE TABLE", "INSERT 0 1", "INSERT 0 1", "SELECT 2"]
            assert results[-1].columns == ("a", "b")
            assert sorted(results[-1].rows) == [(1, "x"), (2, "y")]
            await conn.close()
        serving(scenario)

    def test_empty_query_and_error_keep_session_alive(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            assert (await conn.query("")) == []
            with pytest.raises(ReproError):
                await conn.query("SELECT * FROM missing_table")
            # the session survives and is idle again
            assert conn.transaction_status == "I"
            assert (await conn.execute("SELECT 2")).rows == [(2,)]
            await conn.close()
        serving(scenario)

    def test_types_round_trip_through_text_format(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn.query(
                "CREATE TABLE v (i int, f float, t text, b bool); "
                "INSERT INTO v VALUES (-7, 1.5, 'héllo', true); "
                "INSERT INTO v VALUES (NULL, NULL, NULL, NULL)")
            result = await conn.execute("SELECT i, f, t, b FROM v")
            assert result.rows[0] == (-7, 1.5, "héllo", True)
            assert result.rows[1] == (None, None, None, None)
            await conn.close()
        serving(scenario)


# -- extended protocol --------------------------------------------------------

class TestExtendedProtocol:
    def test_parameterized_execute(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn.query("CREATE TABLE r (a int, b int)")
            for i in range(5):
                await conn.execute("INSERT INTO r VALUES ($1, $2)",
                                   (i, i * 10))
            result = await conn.execute(
                "SELECT a, b FROM r WHERE b >= $1 AND a < $2", (20, 4))
            assert sorted(result.rows) == [(2, 20), (3, 30)]
            assert result.tag == "SELECT 2"
            await conn.close()
        serving(scenario)

    def test_dollar_params_reuse_out_of_order(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn.query("CREATE TABLE r (a int); "
                             "INSERT INTO r VALUES (1); "
                             "INSERT INTO r VALUES (5)")
            # $2 appears before $1: values must be reordered, not zipped
            result = await conn.execute(
                "SELECT a FROM r WHERE a >= $2 AND a <= $1", (9, 2))
            assert result.rows == [(5,)]
            await conn.close()
        serving(scenario)

    def test_named_statement_describe_and_reuse(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn.query("CREATE TABLE r (a int, b text); "
                             "INSERT INTO r VALUES (1, 'x'); "
                             "INSERT INTO r VALUES (2, 'y')")
            stmt = await conn.prepare("SELECT a, b FROM r WHERE a = $1")
            assert stmt.param_count == 1
            assert [name for name, _ in stmt.description] == ["a", "b"]
            assert [oid for _, oid in stmt.description] == \
                [protocol.OID_INT8, protocol.OID_TEXT]
            assert (await stmt.execute((1,))).rows == [(1, "x")]
            assert (await stmt.execute((2,))).rows == [(2, "y")]
            await stmt.close()
            # closed statements are gone
            with pytest.raises(ReproError):
                await stmt.execute((1,))
            await conn.close()
        serving(scenario)

    def test_portal_streaming_with_suspension(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn.query("CREATE TABLE big (k int)")
            await conn.query("BEGIN; " + "; ".join(
                f"INSERT INTO big VALUES ({i})" for i in range(250))
                + "; COMMIT")
            stmt = await conn.prepare("SELECT k FROM big")
            rows = [row async for row in stmt.stream(batch=33)]
            assert sorted(rows) == [(i,) for i in range(250)]
            await conn.close()
        serving(scenario)

    def test_extended_error_skips_until_sync(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            with pytest.raises(ReproError):
                await conn.execute("SELECT * FROM nothing_here")
            # next extended-protocol cycle works: the server recovered
            # at Sync instead of choking on the queued Bind/Execute
            assert (await conn.execute("SELECT 41 + $1", (1,))
                    ).rows == [(42,)]
            await conn.close()
        serving(scenario)

    def test_unknown_portal_and_statement_errors(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn._send(protocol.Describe("S", "ghost"),
                             protocol.Sync())
            with pytest.raises(ReproError, match="ghost"):
                await conn._drain_until_ready()
            await conn._send(protocol.Execute("lost", 0), protocol.Sync())
            with pytest.raises(ReproError, match="lost"):
                await conn._drain_until_ready()
            await conn.close()
        serving(scenario)


# -- transactions -------------------------------------------------------------

class TestTransactions:
    def test_begin_commit_rollback_status(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn.query("CREATE TABLE t (a int)")
            assert conn.transaction_status == "I"
            result = await conn.execute("BEGIN")
            assert result.tag == "BEGIN"
            assert conn.transaction_status == "T"
            await conn.execute("INSERT INTO t VALUES (1)")
            assert (await conn.execute("COMMIT")).tag == "COMMIT"
            assert conn.transaction_status == "I"

            await conn.begin()
            await conn.execute("INSERT INTO t VALUES (2)")
            await conn.rollback()
            assert conn.transaction_status == "I"
            assert (await conn.execute("SELECT count(*) FROM t")
                    ).rows == [(1,)]
            await conn.close()
        serving(scenario)

    def test_failed_transaction_blocks_until_rollback(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn.query("CREATE TABLE t (a int)")
            await conn.begin()
            with pytest.raises(ReproError):
                await conn.execute("SELECT oops FROM t")
            assert conn.transaction_status == "E"
            # anything but COMMIT/ROLLBACK is refused with 25P02
            with pytest.raises(TransactionError) as excinfo:
                await conn.execute("SELECT 1")
            assert excinfo.value.sqlstate == "25P02"
            assert conn.transaction_status == "E"
            await conn.rollback()
            assert conn.transaction_status == "I"
            assert (await conn.execute("SELECT 1")).rows == [(1,)]
            await conn.close()
        serving(scenario)

    def test_commit_of_failed_transaction_rolls_back(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn.query("CREATE TABLE t (a int)")
            await conn.begin()
            await conn.execute("INSERT INTO t VALUES (1)")
            with pytest.raises(ReproError):
                await conn.execute("SELECT oops FROM t")
            # COMMIT of a failed transaction reports ROLLBACK, as
            # PostgreSQL does, and the insert is gone
            result = await conn.execute("COMMIT")
            assert result.tag == "ROLLBACK"
            assert conn.transaction_status == "I"
            assert (await conn.execute("SELECT count(*) FROM t")
                    ).rows == [(0,)]
            await conn.close()
        serving(scenario)

    def test_sessions_are_isolated(self):
        async def scenario(server):
            one = await connect("127.0.0.1", server.port)
            two = await connect("127.0.0.1", server.port)
            await one.query("CREATE TABLE t (a int)")
            await one.begin()
            await one.execute("INSERT INTO t VALUES (7)")
            # uncommitted write is invisible to the other session
            assert (await two.execute("SELECT count(*) FROM t")
                    ).rows == [(0,)]
            await one.commit()
            assert (await two.execute("SELECT count(*) FROM t")
                    ).rows == [(1,)]
            await one.close()
            await two.close()
        serving(scenario)


# -- provenance over the wire -------------------------------------------------

class TestProvenance:
    def test_select_provenance_describes_prov_columns(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn.query("CREATE TABLE r (a int, b int); "
                             "CREATE TABLE s (c int, d int); "
                             "INSERT INTO r VALUES (1, 10); "
                             "INSERT INTO s VALUES (1, 100)")
            result = await conn.execute(
                "SELECT PROVENANCE r.a, s.d FROM r, s WHERE r.a = s.c")
            assert result.provenance_columns == (
                "prov_r_a", "prov_r_b", "prov_s_c", "prov_s_d")
            assert result.rows == [(1, 100, 1, 10, 1, 100)]
            # the same shape through a described prepared statement
            stmt = await conn.prepare(
                "SELECT PROVENANCE a FROM r WHERE a = $1")
            described = [name for name, _ in stmt.description]
            assert described == ["a", "prov_r_a", "prov_r_b"]
            assert (await stmt.execute((1,))).rows == [(1, 1, 10)]
            await conn.close()
        serving(scenario)


# -- disconnect cleanup (the leak guarantee) ----------------------------------

class TestDisconnectCleanup:
    def test_abandoned_portal_releases_plan_instance(self):
        """A client that vanishes holding a suspended portal must not
        leak the portal's streaming Result: the server's disconnect path
        closes it, returning the leased physical-plan instance."""
        engine = Engine()
        with engine.connect() as setup:
            setup.execute("CREATE TABLE big (k int)")
            insert = setup.prepare("INSERT INTO big VALUES (?)")
            with setup.transaction():
                for i in range(2000):
                    insert.execute((i,))

        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            stmt = await conn.prepare("SELECT k FROM big")
            iterator = stmt.stream(batch=10)
            first = await anext(iterator)
            assert first == (0,)
            # mid-stream: the portal's Result is open server-side,
            # holding a leased plan instance
            assert engine.plan_cache.leased_instances() == 1
            conn.abort()                      # vanish without Terminate
            assert await wait_for(
                lambda: engine.plan_cache.leased_instances() == 0)
            assert await wait_for(
                lambda: server.connection_count == 0)
            # engine still fully serviceable for new clients
            fresh = await connect("127.0.0.1", server.port)
            assert (await fresh.execute("SELECT count(*) FROM big")
                    ).rows == [(2000,)]
            await fresh.close()

        serving(scenario, ServerConfig(port=0),
                engines={"repro": engine})
        assert engine.plan_cache.leased_instances() == 0
        engine.close()

    def test_abort_mid_unbounded_stream(self):
        """Dropping the socket while the server is actively streaming an
        unbounded Execute also cleans up (the writer hits a reset, the
        response generator is closed, the Result released)."""
        engine = Engine()
        with engine.connect() as setup:
            setup.execute("CREATE TABLE big (k int, pad text)")
            insert = setup.prepare("INSERT INTO big VALUES (?, ?)")
            with setup.transaction():
                for i in range(5000):
                    insert.execute((i, "x" * 200))

        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            # fire the query, read a little, then yank the socket
            await conn._send(
                protocol.Parse("", "SELECT k, pad FROM big"),
                protocol.Bind("", ""),
                protocol.Execute("", 0),
                protocol.Sync())
            await conn._recv()                # ParseComplete
            await conn._recv()                # BindComplete
            assert isinstance(await conn._recv(), protocol.DataRow)
            conn.abort()
            assert await wait_for(
                lambda: engine.plan_cache.leased_instances() == 0)

        serving(scenario, ServerConfig(port=0),
                engines={"repro": engine})
        engine.close()


# -- graceful shutdown --------------------------------------------------------

class TestShutdown:
    def test_stop_drains_in_flight_query(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await conn.query("CREATE TABLE t (a int)")
            insert = await conn.prepare("INSERT INTO t VALUES ($1)")
            for i in range(200):
                await insert.execute((i,))
            # a cross join is slow enough that stop() races with it;
            # the simple protocol makes the whole cycle one in-flight
            # unit, so the drain must let it finish through RFQ
            query = asyncio.ensure_future(
                conn.query("SELECT count(*) FROM t t1, t t2"))
            await wait_for(lambda: server._in_flight > 0)
            await server.stop()
            results = await query
            assert results[0].rows == [(40000,)]

        asyncio.run(_boot(scenario))

    def test_idle_client_sees_server_shutdown(self):
        async def scenario(server):
            conn = await connect("127.0.0.1", server.port)
            await server.stop()
            with pytest.raises(ReproError):
                await conn.execute("SELECT 1")

        asyncio.run(_boot(scenario))

    def test_stop_is_idempotent(self):
        async def scenario(server):
            await server.stop()
            await server.stop()

        asyncio.run(_boot(scenario))

    def test_stop_tolerates_already_closed_client_transport(self):
        # the shutdown notice is written to every client; a transport
        # torn down mid-stop raises OSError/RuntimeError, which must
        # not abort the rest of the shutdown sequence
        from repro.server.server import _Client

        class _DeadWriter:
            def write(self, data):
                raise RuntimeError(
                    "unable to perform operation on closed transport")

        async def scenario(server):
            server._clients.add(_Client(_DeadWriter(), task=None))
            await server.stop()
            assert server._stopped

        asyncio.run(_boot(scenario))

    def test_stop_does_not_swallow_unexpected_write_failures(self):
        # the teardown handler is typed: a bug that surfaces as
        # anything other than a transport error must propagate, not
        # vanish into a broad except
        from repro.server.server import _Client

        class _BuggyWriter:
            def write(self, data):
                raise ZeroDivisionError("handler bug")

        async def scenario(server):
            server._clients.add(_Client(_BuggyWriter(), task=None))
            with pytest.raises(ZeroDivisionError):
                await server.stop()
            server._clients.clear()

        asyncio.run(_boot(scenario))


async def _boot(scenario):
    server = await Server(ServerConfig(port=0)).start()
    try:
        await scenario(server)
    finally:
        await server.stop()


# -- the sync client ----------------------------------------------------------

class TestSyncClient:
    def test_blocking_facade(self):
        ready = threading.Event()
        holder: dict = {}

        def serve_thread():
            async def body():
                holder["loop"] = asyncio.get_running_loop()
                holder["stop"] = asyncio.Event()
                async with Server(ServerConfig(port=0)) as server:
                    holder["port"] = server.port
                    ready.set()
                    await holder["stop"].wait()

            asyncio.run(body())

        thread = threading.Thread(target=serve_thread, daemon=True)
        thread.start()
        assert ready.wait(10)
        try:
            with SyncConnection("127.0.0.1", holder["port"]) as conn:
                conn.query("CREATE TABLE t (a int)")
                conn.execute("INSERT INTO t VALUES ($1)", (3,))
                assert conn.execute("SELECT a FROM t").rows == [(3,)]
                conn.begin()
                assert conn.transaction_status == "T"
                conn.rollback()
        finally:
            holder["loop"].call_soon_threadsafe(holder["stop"].set)
            thread.join(timeout=10)


# -- placeholder translation and command tags (backend units) ----------------

class TestPlaceholders:
    def test_basic_translation(self):
        sql, order = translate_placeholders(
            "SELECT * FROM r WHERE a = $1 AND b = $2")
        assert sql == "SELECT * FROM r WHERE a = ? AND b = ?"
        assert order == (1, 2)

    def test_out_of_order_and_reuse(self):
        sql, order = translate_placeholders("SELECT $2, $1, $2")
        assert sql == "SELECT ?, ?, ?"
        assert order == (2, 1, 2)

    def test_quotes_and_comments_are_opaque(self):
        sql, order = translate_placeholders(
            "SELECT '$1', \"$2\" -- $3\n, /* $4 */ $1 FROM r")
        assert order == (1,)
        assert sql.endswith("? FROM r")
        assert "'$1'" in sql and '"$2"' in sql

    def test_escaped_quote_inside_literal(self):
        sql, order = translate_placeholders("SELECT 'it''s $1', $1")
        assert order == (1,)
        assert "'it''s $1'" in sql

    def test_gap_in_parameter_numbers_rejected(self):
        with pytest.raises(ProtocolError, match=r"\$1"):
            translate_placeholders("SELECT $2")

    def test_no_placeholders_passthrough(self):
        sql, order = translate_placeholders("SELECT 1")
        assert sql == "SELECT 1"
        assert order is None


class TestCommandTags:
    def test_tags(self):
        from repro.sql.parser import parse_statement
        assert command_tag(parse_statement("SELECT 1"), 3) == "SELECT 3"
        assert command_tag(
            parse_statement("INSERT INTO r VALUES (1)"), 1) == "INSERT 0 1"
        assert command_tag(
            parse_statement("DELETE FROM r"), 2) == "DELETE 2"
        assert command_tag(
            parse_statement("CREATE TABLE r (a int)"), 0) == "CREATE TABLE"
        assert command_tag(parse_statement("BEGIN"), 0) == "BEGIN"


# -- psql interoperability ----------------------------------------------------

@pytest.mark.skipif(shutil.which("psql") is None,
                    reason="psql not installed")
class TestPsql:
    def test_psql_end_to_end(self, tmp_path):
        """A stock PostgreSQL psql runs DDL, DML, a provenance query and
        failed-transaction recovery against the server."""
        ready = threading.Event()
        state: dict = {}

        def serve_thread():
            async def main():
                async with Server(ServerConfig(port=0)) as server:
                    state["port"] = server.port
                    state["loop"] = asyncio.get_running_loop()
                    state["stop"] = asyncio.Event()
                    ready.set()
                    await state["stop"].wait()
            asyncio.run(main())

        thread = threading.Thread(target=serve_thread, daemon=True)
        thread.start()
        assert ready.wait(10)
        script = (
            "CREATE TABLE t (x int, y text);\n"
            "INSERT INTO t VALUES (1, 'one');\n"
            "INSERT INTO t VALUES (2, 'two');\n"
            "BEGIN;\n"
            "SELECT broken FROM t;\n"
            "SELECT 1;\n"
            "ROLLBACK;\n"
            "SELECT PROVENANCE x FROM t;\n")
        proc = subprocess.run(
            ["psql", "-h", "127.0.0.1", "-p", str(state["port"]),
             "-U", "repro", "-d", "repro", "-X", "-v", "ON_ERROR_STOP=0"],
            input=script, capture_output=True, text=True, timeout=60,
            env={"PATH": "/usr/bin:/bin", "PGCONNECT_TIMEOUT": "10"})
        state["loop"].call_soon_threadsafe(state["stop"].set)
        thread.join(timeout=10)
        out = proc.stdout + proc.stderr
        assert "CREATE TABLE" in out
        assert out.count("INSERT 0 1") == 2
        assert "ROLLBACK" in out
        assert "prov_t_x" in out and "prov_t_y" in out
        assert "ERROR" in out
        assert "current transaction is aborted" in out


if sys.version_info < (3, 10):     # pragma: no cover
    raise RuntimeError("tests require Python 3.10+")
