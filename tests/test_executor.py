"""Executor: joins, aggregation, set ops, sorting, sublinks, caching."""

import pytest

from repro import Database
from repro.errors import ExecutionError
from repro.algebra.operators import (
    Join, JoinKind, Values,
)
from repro.expressions.ast import TRUE
from repro.engine import Executor
from repro.catalog import Catalog
from repro.schema import Schema


@pytest.fixture
def db(figure3_db):
    return figure3_db


class TestJoins:
    def test_inner_join(self, db):
        rows = db.sql(
            "SELECT a, d FROM r JOIN s ON a = c ORDER BY a").rows
        assert rows == [(1, 3), (2, 4)]

    def test_left_join_pads_nulls(self, db):
        rows = db.sql(
            "SELECT a, d FROM r LEFT JOIN s ON a = c ORDER BY a").rows
        assert rows == [(1, 3), (2, 4), (3, None)]

    def test_left_join_empty_right(self, db):
        db.execute("CREATE TABLE empty (e int)")
        rows = db.sql("SELECT a, e FROM r LEFT JOIN empty ON a = e").rows
        assert sorted(rows) == [(1, None), (2, None), (3, None)]

    def test_cross_join_cardinality(self, db):
        assert len(db.sql("SELECT 1 FROM r CROSS JOIN s").rows) == 9

    def test_hash_join_used_for_equality(self, db):
        db.sql("SELECT a FROM r JOIN s ON a = c")
        assert db.last_stats.hash_joins >= 1
        assert db.last_stats.nested_loop_joins == 0

    def test_nested_loop_used_for_inequality(self, db):
        db.sql("SELECT a FROM r JOIN s ON a < c")
        assert db.last_stats.nested_loop_joins >= 1

    def test_hash_join_residual_condition(self, db):
        rows = db.sql(
            "SELECT a, d FROM r JOIN s ON a = c AND d > 3").rows
        assert rows == [(2, 4)]

    def test_null_keys_never_equijoin(self, db):
        db.execute("CREATE TABLE n1 (x int)")
        db.execute("INSERT INTO n1 VALUES (NULL), (1)")
        db.execute("CREATE TABLE n2 (y int)")
        db.execute("INSERT INTO n2 VALUES (NULL), (1)")
        rows = db.sql("SELECT x, y FROM n1 JOIN n2 ON x = y").rows
        assert rows == [(1, 1)]

    def test_left_join_null_key_pads(self, db):
        db.execute("CREATE TABLE n1 (x int)")
        db.execute("INSERT INTO n1 VALUES (NULL)")
        rows = db.sql("SELECT x, c FROM n1 LEFT JOIN s ON x = c").rows
        assert rows == [(None, None)]


class TestAggregation:
    def test_group_by_with_nulls_grouped_together(self, db):
        db.execute("CREATE TABLE g (k int, v int)")
        db.execute(
            "INSERT INTO g VALUES (NULL, 1), (NULL, 2), (1, 3)")
        rows = sorted(db.sql(
            "SELECT k, sum(v) AS s FROM g GROUP BY k").rows,
            key=lambda r: (r[0] is not None, r[0]))
        assert rows == [(None, 3), (1, 3)]

    def test_scalar_aggregate_over_empty_input(self, db):
        db.execute("CREATE TABLE empty (e int)")
        rows = db.sql(
            "SELECT count(*) AS n, sum(e) AS s, min(e) AS m "
            "FROM empty").rows
        assert rows == [(0, None, None)]

    def test_group_by_empty_input_yields_no_rows(self, db):
        db.execute("CREATE TABLE empty (e int)")
        assert db.sql("SELECT e, count(*) FROM empty GROUP BY e").rows == []

    def test_count_distinct(self, db):
        rows = db.sql("SELECT count(DISTINCT b) AS n FROM r").rows
        assert rows == [(2,)]

    def test_avg(self, db):
        assert db.sql("SELECT avg(a) AS m FROM r").rows == [(2.0,)]

    def test_aggregate_of_expression(self, db):
        assert db.sql("SELECT sum(a * b) AS s FROM r").rows == [(9,)]


class TestSortLimit:
    def test_sort_asc_nulls_first(self, db):
        db.execute("CREATE TABLE n (x int)")
        db.execute("INSERT INTO n VALUES (2), (NULL), (1)")
        assert db.sql("SELECT x FROM n ORDER BY x").rows == [
            (None,), (1,), (2,)]

    def test_sort_desc_nulls_last(self, db):
        db.execute("CREATE TABLE n (x int)")
        db.execute("INSERT INTO n VALUES (2), (NULL), (1)")
        assert db.sql("SELECT x FROM n ORDER BY x DESC").rows == [
            (2,), (1,), (None,)]

    def test_multi_key_sort(self, db):
        rows = db.sql("SELECT b, a FROM r ORDER BY b DESC, a").rows
        assert rows == [(2, 3), (1, 1), (1, 2)]

    def test_limit_offset(self, db):
        rows = db.sql("SELECT a FROM r ORDER BY a LIMIT 1 OFFSET 1").rows
        assert rows == [(2,)]

    def test_limit_zero(self, db):
        assert db.sql("SELECT a FROM r LIMIT 0").rows == []


class TestSublinks:
    def test_scalar_sublink_empty_is_null(self, db):
        rows = db.sql(
            "SELECT (SELECT c FROM s WHERE c > 100) AS v FROM r").rows
        assert rows == [(None,), (None,), (None,)]

    def test_scalar_sublink_multiple_rows_raises(self, db):
        with pytest.raises(ExecutionError, match="scalar sublink"):
            db.sql("SELECT (SELECT c FROM s) AS v FROM r")

    def test_any_with_null_test_value(self, db):
        db.execute("CREATE TABLE n (x int)")
        db.execute("INSERT INTO n VALUES (NULL)")
        rows = db.sql(
            "SELECT x FROM n WHERE x = ANY (SELECT c FROM s)").rows
        assert rows == []  # unknown, filtered

    def test_not_in_with_null_in_subquery_is_empty(self, db):
        # classic SQL trap: NOT IN over a set containing NULL
        db.execute("CREATE TABLE n (x int)")
        db.execute("INSERT INTO n VALUES (NULL), (2)")
        rows = db.sql(
            "SELECT a FROM r WHERE a NOT IN (SELECT x FROM n)").rows
        assert rows == []

    def test_all_over_empty_set_is_true(self, db):
        rows = db.sql(
            "SELECT a FROM r WHERE a < ALL (SELECT c FROM s WHERE c > 99)"
        ).rows
        assert len(rows) == 3

    def test_exists_over_empty_is_false(self, db):
        rows = db.sql(
            "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE c > 99)"
        ).rows
        assert rows == []

    def test_uncorrelated_sublink_cached(self, db):
        db.sql("SELECT a FROM r WHERE a = ANY (SELECT c FROM s)")
        stats = db.last_stats
        assert stats.sublink_executions == 1
        assert stats.sublink_cache_hits >= 2

    def test_correlated_sublink_not_cached(self, db):
        db.sql("SELECT a FROM r WHERE EXISTS "
               "(SELECT * FROM s WHERE c = b)")
        assert db.last_stats.sublink_executions == 3  # once per r row


class TestMisc:
    def test_values_operator(self):
        catalog = Catalog()
        executor = Executor(catalog)
        values = Values(Schema.of("x"), [(1,), (2,)])
        assert executor.execute(values).rows == [(1,), (2,)]

    def test_join_on_true_left_empty_right(self):
        catalog = Catalog()
        executor = Executor(catalog)
        left = Values(Schema.of("x"), [(1,)])
        right = Values(Schema.of("y"), [])
        join = Join(left, right, TRUE, JoinKind.LEFT)
        assert executor.execute(join).rows == [(1, None)]

    def test_stats_rows_produced(self, db):
        db.sql("SELECT a FROM r")
        assert db.last_stats.rows_produced >= 3

    def test_distinct_projection(self, db):
        assert sorted(db.sql("SELECT DISTINCT b FROM r").rows) == [
            (1,), (2,)]
