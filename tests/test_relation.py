"""Bag-semantics relation operations (Figure 1's set/bag operators)."""

import pytest

from repro.errors import SchemaError
from repro.relation import Relation
from repro.schema import Schema


def rel(names, rows):
    return Relation.from_columns(names, rows)


class TestConstruction:
    def test_arity_checked_on_init(self):
        with pytest.raises(SchemaError):
            rel(["a", "b"], [(1,)])

    def test_arity_checked_on_insert(self):
        relation = rel(["a"], [])
        with pytest.raises(SchemaError):
            relation.insert((1, 2))

    def test_len_and_iter(self):
        relation = rel(["a"], [(1,), (1,), (2,)])
        assert len(relation) == 3
        assert list(relation) == [(1,), (1,), (2,)]

    def test_from_trusted_rows_adopts_list(self):
        # The engine-sink fast path: the list is adopted as-is, no
        # per-row re-tupling.
        rows = [(1, 2), (3, 4)]
        relation = Relation.from_trusted_rows(Schema.of("a", "b"), rows)
        assert relation.rows is rows
        assert relation.rows[0] is rows[0]
        assert list(relation.schema.names) == ["a", "b"]

    def test_from_trusted_rows_skips_coercion(self):
        # Trusted means trusted: unlike __init__, nothing is checked or
        # converted — the caller (the engine) guarantees tuple rows.
        rows = [[1, 2]]  # a list row would be rejected/coerced by init
        relation = Relation.from_trusted_rows(Schema.of("a", "b"), rows)
        assert relation.rows[0] is rows[0]

    def test_trusted_relation_supports_bag_algebra(self):
        left = Relation.from_trusted_rows(Schema.of("a"), [(1,), (1,)])
        right = Relation.from_trusted_rows(Schema.of("a"), [(1,), (2,)])
        assert left.bag_union(right).multiset() == {(1,): 3, (2,): 1}
        assert left.bag_intersect(right).multiset() == {(1,): 1}


class TestBagOperations:
    """Multiplicity identities from Figure 1."""

    def test_bag_union_adds_multiplicities(self):
        left = rel(["a"], [(1,), (1,)])
        right = rel(["a"], [(1,), (2,)])
        assert left.bag_union(right).multiset() == {(1,): 3, (2,): 1}

    def test_bag_intersect_takes_min(self):
        left = rel(["a"], [(1,), (1,), (1,), (2,)])
        right = rel(["a"], [(1,), (1,), (3,)])
        assert left.bag_intersect(right).multiset() == {(1,): 2}

    def test_bag_difference_subtracts_floored(self):
        left = rel(["a"], [(1,), (1,), (2,)])
        right = rel(["a"], [(1,), (1,), (1,), (3,)])
        assert left.bag_difference(right).multiset() == {(2,): 1}

    def test_set_union_removes_duplicates(self):
        left = rel(["a"], [(1,), (1,)])
        right = rel(["a"], [(2,), (2,)])
        assert left.set_union(right).multiset() == {(1,): 1, (2,): 1}

    def test_set_intersect(self):
        left = rel(["a"], [(1,), (1,), (2,)])
        right = rel(["a"], [(1,), (1,)])
        assert left.set_intersect(right).multiset() == {(1,): 1}

    def test_set_difference(self):
        left = rel(["a"], [(1,), (1,), (2,), (3,)])
        right = rel(["a"], [(3,)])
        assert left.set_difference(right).multiset() == {(1,): 1, (2,): 1}

    def test_incompatible_arity_raises(self):
        with pytest.raises(SchemaError):
            rel(["a"], []).bag_union(rel(["a", "b"], []))

    def test_distinct_preserves_first_occurrence_order(self):
        relation = rel(["a"], [(2,), (1,), (2,), (1,)])
        assert relation.distinct().rows == [(2,), (1,)]

    def test_bag_equal(self):
        left = rel(["a"], [(1,), (2,), (1,)])
        right = rel(["a"], [(2,), (1,), (1,)])
        assert left.bag_equal(right)
        assert not left.bag_equal(rel(["a"], [(1,), (2,)]))


class TestHelpers:
    def test_project_names(self):
        relation = rel(["a", "b"], [(1, 10), (2, 20)])
        assert relation.project_names(["b"]).rows == [(10,), (20,)]

    def test_sorted_nulls_first(self):
        relation = rel(["a"], [(2,), (None,), (1,)])
        assert relation.sorted().rows == [(None,), (1,), (2,)]

    def test_pretty_contains_header_and_rows(self):
        relation = rel(["a", "b"], [(1, None)])
        text = relation.pretty()
        assert "a" in text and "b" in text and "NULL" in text

    def test_pretty_truncates(self):
        relation = rel(["a"], [(i,) for i in range(100)])
        text = relation.pretty(max_rows=5)
        assert "95 more rows" in text
