"""Engine parity and physical-plan behaviour.

The pipelined, vectorized engine must produce bag-identical results to
the materializing reference engine on every query shape — the paper
examples and the strategy-comparison queries included — and its
physical plans must keep the execution decisions the paper's figures
depend on (hash joins for Unn equi-joins, InitPlans for uncorrelated
sublinks, streaming limits).
"""

import os
from collections import Counter

import pytest

from repro import connect
from repro.errors import InterfaceError

# Queries over the Figure 3 relations r(a, b) / s(c, d) covering every
# operator the engines implement; bag-compared (order-insensitive).
PARITY_QUERIES = [
    "SELECT a, b FROM r",
    "SELECT a + b AS t FROM r WHERE a * b > 1",
    "SELECT DISTINCT b FROM r",
    "SELECT a, d FROM r JOIN s ON a = c",
    "SELECT a, d FROM r LEFT JOIN s ON a = c",
    "SELECT a, d FROM r JOIN s ON a = c AND d > 3",
    "SELECT a, c FROM r JOIN s ON a < c",
    "SELECT a, c FROM r LEFT JOIN s ON a < c AND d < 5",
    "SELECT a, c FROM r CROSS JOIN s",
    "SELECT b, count(*) AS n, sum(a) AS s FROM r GROUP BY b",
    "SELECT count(*) AS n, min(a) AS lo, max(a) AS hi FROM r",
    "SELECT count(DISTINCT b) AS n FROM r",
    "SELECT a FROM r UNION SELECT c FROM s",
    "SELECT a FROM r UNION ALL SELECT c FROM s",
    "SELECT a FROM r INTERSECT SELECT c FROM s",
    "SELECT a FROM r INTERSECT ALL SELECT c FROM s",
    "SELECT a FROM r EXCEPT SELECT c FROM s",
    "SELECT a FROM r EXCEPT ALL SELECT c FROM s",
    "SELECT a FROM r WHERE a = ANY (SELECT c FROM s)",
    "SELECT a FROM r WHERE a < ALL (SELECT c FROM s WHERE d > 3)",
    "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE c = b)",
    "SELECT a, (SELECT max(c) FROM s) AS m FROM r",
    "SELECT a FROM r WHERE a IN (SELECT c FROM s WHERE d < 5)",
]

#: The paper-example / strategy-comparison provenance queries.
PROVENANCE_QUERIES = [
    ("SELECT PROVENANCE a FROM r WHERE a = ANY "
     "(SELECT c FROM s WHERE d < 5)", strategy)
    for strategy in ("gen", "left", "move", "unn")
] + [
    ("SELECT PROVENANCE a FROM r WHERE a < ALL (SELECT c FROM s)",
     strategy)
    for strategy in ("gen", "left", "move")
] + [
    ("SELECT PROVENANCE a FROM r WHERE EXISTS "
     "(SELECT * FROM s WHERE c = b)", "gen"),
]

#: Ordered queries: results must match row-for-row, not just as bags.
ORDERED_QUERIES = [
    "SELECT a, b FROM r ORDER BY b DESC, a",
    "SELECT a FROM r ORDER BY a LIMIT 2",
    "SELECT a FROM r ORDER BY a DESC LIMIT 1 OFFSET 1",
]


def _populate(conn) -> None:
    conn.execute("CREATE TABLE r (a int, b int)")
    conn.execute("INSERT INTO r VALUES (1, 1), (2, 1), (3, 2), (2, 1)")
    conn.execute("CREATE TABLE s (c int, d int)")
    conn.execute("INSERT INTO s VALUES (1, 3), (2, 4), (4, 5), (2, 4)")


@pytest.fixture
def engines():
    """A (fast, materializing) connection pair over one catalog.

    The fast engine defaults to ``pipelined``; CI also runs this module
    with ``REPRO_ENGINE=vectorized`` so the whole parity matrix covers
    the columnar engine too.
    """
    fast_engine = os.environ.get("REPRO_ENGINE", "pipelined")
    fast = connect(engine=fast_engine)
    _populate(fast)
    materializing = connect(engine="materializing",
                            catalog=fast.catalog)
    return fast, materializing


class TestEngineParity:
    @pytest.mark.parametrize("sql", PARITY_QUERIES)
    def test_bag_parity(self, engines, sql):
        pipelined, materializing = engines
        fast = pipelined.sql(sql)
        slow = materializing.sql(sql)
        assert Counter(fast.rows) == Counter(slow.rows)
        assert fast.schema.names == slow.schema.names

    @pytest.mark.parametrize("sql,strategy", PROVENANCE_QUERIES)
    def test_provenance_bag_parity(self, engines, sql, strategy):
        pipelined, materializing = engines
        fast = pipelined.sql(sql, strategy=strategy)
        slow = materializing.sql(sql, strategy=strategy)
        assert Counter(fast.rows) == Counter(slow.rows)

    @pytest.mark.parametrize("sql", ORDERED_QUERIES)
    def test_ordered_parity(self, engines, sql):
        pipelined, materializing = engines
        assert pipelined.sql(sql).rows == materializing.sql(sql).rows

    @pytest.mark.parametrize("batch_size", (1, 2, 3, 7, 64))
    def test_parity_across_batch_sizes(self, batch_size):
        reference = connect(engine="materializing")
        _populate(reference)
        small = connect(engine="pipelined", batch_size=batch_size,
                        catalog=reference.catalog)
        for sql in ("SELECT PROVENANCE a FROM r WHERE a = ANY "
                    "(SELECT c FROM s WHERE d < 5)",
                    "SELECT b, count(*) AS n FROM r GROUP BY b",
                    "SELECT a, d FROM r LEFT JOIN s ON a = c"):
            assert Counter(small.sql(sql).rows) == \
                Counter(reference.sql(sql).rows)

    def test_parameters_through_pipeline(self, engines):
        pipelined, materializing = engines
        sql = ("SELECT a FROM r WHERE a = ANY "
               "(SELECT c FROM s WHERE c < ?)")
        fast = pipelined.sql(sql, params=(2,))
        slow = materializing.sql(sql, params=(2,))
        assert Counter(fast.rows) == Counter(slow.rows)


class TestStreamingLimit:
    def test_limit_short_circuits(self):
        """The streaming engine must stop pulling once LIMIT is
        satisfied: rows_produced stays bounded by a few batches, not the
        table size (the regression the materializing executor had)."""
        conn = connect(batch_size=64)
        conn.create_table("big", [("x", "int")])
        conn.insert("big", [(i,) for i in range(5000)])
        relation = conn.sql("SELECT x FROM big LIMIT 5")
        assert len(relation.rows) == 5
        stats = conn.last_stats
        assert stats.rows_produced <= 4 * 64
        # the materializing engine pays for the whole table
        baseline = connect(engine="materializing", catalog=conn.catalog)
        baseline.sql("SELECT x FROM big LIMIT 5")
        assert baseline.last_stats.rows_produced >= 5000

    def test_limit_offset_streams(self):
        conn = connect(batch_size=16)
        conn.create_table("big", [("x", "int")])
        conn.insert("big", [(i,) for i in range(1000)])
        relation = conn.sql("SELECT x FROM big LIMIT 3 OFFSET 40")
        assert relation.rows == [(40,), (41,), (42,)]
        assert conn.last_stats.rows_produced <= 10 * 16

    def test_limit_zero_rows(self):
        conn = connect()
        conn.create_table("t", [("x", "int")])
        conn.insert("t", [(1,), (2,)])
        assert conn.sql("SELECT x FROM t LIMIT 0").rows == []


class TestPhysicalPlans:
    def test_unn_plan_hash_joins(self, engines):
        pipelined, _ = engines
        sql = ("SELECT PROVENANCE a FROM r WHERE a = ANY "
               "(SELECT c FROM s WHERE d < 5)")
        text = pipelined.explain_physical(sql, strategy="unn")
        assert "HashJoin" in text
        assert "NestedLoopJoin" not in text
        pipelined.sql(sql, strategy="unn")
        assert pipelined.last_stats.hash_joins >= 1
        assert pipelined.last_stats.nested_loop_joins == 0

    def test_sublinks_classified_init_vs_sub(self, engines):
        pipelined, _ = engines
        uncorrelated = pipelined.explain_physical(
            "SELECT a FROM r WHERE a = ANY (SELECT c FROM s)")
        assert "InitPlanSublink" in uncorrelated
        correlated = pipelined.explain_physical(
            "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE c = b)")
        assert "SubPlanSublink" in correlated

    def test_limit_lowered_to_streaming(self, engines):
        pipelined, _ = engines
        text = pipelined.explain_physical("SELECT a FROM r LIMIT 1")
        assert "StreamingLimit" in text

    def test_plan_cache_stores_physical_plan(self, engines):
        pipelined, _ = engines
        sql = "SELECT a FROM r WHERE b = 1"
        pipelined.execute(sql)
        key = pipelined._plan_key(sql, None)
        cached = pipelined.plan_cache.peek(key)
        assert cached is not None and cached.physical is not None
        first = cached.physical
        pipelined.execute(sql)
        assert pipelined.plan_cache.peek(key).physical is first

    def test_explain_analyze_annotates_nodes(self, engines):
        pipelined, _ = engines
        text = pipelined.explain_analyze(
            "SELECT a FROM r WHERE a = ANY (SELECT c FROM s) "
            "ORDER BY a LIMIT 2")
        assert "rows=" in text and "time=" in text and "ms" in text
        assert "InitPlanSublink" in text
        assert "Result:" in text

    def test_execution_stats_timings(self, engines):
        pipelined, _ = engines
        pipelined.sql("SELECT a, d FROM r JOIN s ON a = c")
        stats = pipelined.last_stats
        assert stats.batches_produced >= 1
        assert stats.operator_timings  # per-operator wall clock present
        assert any("HashJoin" in name for name in stats.operator_timings)

    def test_uncorrelated_sublink_is_initplan_once(self, engines):
        pipelined, _ = engines
        pipelined.sql("SELECT a FROM r WHERE a = ANY (SELECT c FROM s)")
        stats = pipelined.last_stats
        assert stats.sublink_executions == 1
        assert stats.sublink_cache_hits >= 2


class TestIndexParity:
    """Indexes are a pure access-path change: every query must return
    the same bag with indexes present as without, on both engines."""

    INDEX_DDL = (
        "CREATE INDEX r_a ON r (a)",
        "CREATE INDEX r_b ON r (b) USING sorted",
        "CREATE INDEX s_c ON s (c)",
    )

    @pytest.fixture
    def indexed(self):
        """(indexed+analyzed, plain) connection pair over equal data."""
        plain = connect(use_indexes=False)
        _populate(plain)
        indexed = connect(catalog=plain.catalog)
        for ddl in self.INDEX_DDL:
            indexed.execute(ddl)
        indexed.execute("ANALYZE")
        return indexed, plain

    @pytest.mark.parametrize("sql", PARITY_QUERIES)
    def test_bag_parity_with_indexes(self, indexed, sql):
        with_indexes, without = indexed
        assert Counter(with_indexes.sql(sql).rows) == \
            Counter(without.sql(sql).rows)

    @pytest.mark.parametrize("sql,strategy", PROVENANCE_QUERIES)
    def test_provenance_parity_with_indexes(self, indexed, sql, strategy):
        with_indexes, without = indexed
        assert Counter(with_indexes.sql(sql, strategy=strategy).rows) == \
            Counter(without.sql(sql, strategy=strategy).rows)

    def test_materializing_engine_agrees_with_indexed_pipeline(self,
                                                               indexed):
        with_indexes, _ = indexed
        materializing = connect(engine="materializing",
                                catalog=with_indexes.catalog)
        sql = "SELECT a, d FROM r JOIN s ON a = c WHERE b = 1"
        assert Counter(with_indexes.sql(sql).rows) == \
            Counter(materializing.sql(sql).rows)


class TestAutoStrategyParity:
    """``auto`` (cost-based) must agree with every fixed strategy on the
    paper's nested-subquery examples, whatever it picks."""

    NESTED_QUERIES = [
        # Figure 3 q1: equality ANY
        "SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)",
        # Figure 3 q2 shape: inequality ALL
        "SELECT PROVENANCE a FROM r WHERE a < ALL (SELECT c FROM s)",
        # IN (= ANY) with an inner filter
        ("SELECT PROVENANCE a FROM r WHERE a IN "
         "(SELECT c FROM s WHERE d < 5)"),
        # scalar aggregate sublink
        "SELECT PROVENANCE a FROM r WHERE a < (SELECT max(c) FROM s)",
        # uncorrelated EXISTS
        "SELECT PROVENANCE b FROM r WHERE EXISTS (SELECT * FROM s)",
    ]

    @pytest.mark.parametrize("sql", NESTED_QUERIES)
    @pytest.mark.parametrize("strategy", ("gen", "left", "move"))
    def test_auto_matches_fixed_strategy(self, engines, sql, strategy):
        pipelined, _ = engines
        auto = Counter(pipelined.sql(sql, strategy="auto").rows)
        fixed = Counter(pipelined.sql(sql, strategy=strategy).rows)
        assert auto == fixed

    @pytest.mark.parametrize("sql", NESTED_QUERIES)
    def test_auto_parity_across_engines(self, engines, sql):
        pipelined, materializing = engines
        assert Counter(pipelined.sql(sql, strategy="auto").rows) == \
            Counter(materializing.sql(sql, strategy="auto").rows)


class TestConfigKnobs:
    def test_unknown_engine_rejected(self):
        with pytest.raises(InterfaceError):
            connect(engine="quantum")

    def test_batch_size_validated(self):
        with pytest.raises(InterfaceError):
            connect(batch_size=0)

    def test_materializing_engine_selectable(self):
        conn = connect(engine="materializing")
        _populate(conn)
        assert len(conn.sql("SELECT a FROM r").rows) == 4


class TestShellExplain:
    def run(self, shell, line: str) -> str:
        import io
        out = io.StringIO()
        shell.run_line(line, out)
        return out.getvalue()

    def test_explain_analyze_command(self):
        from repro.cli import Shell
        shell = Shell()
        _populate(shell.conn)
        text = self.run(
            shell, "EXPLAIN ANALYZE SELECT a FROM r WHERE b = 1")
        assert "Filter" in text and "rows=" in text and "time=" in text

    def test_explain_command_prints_physical_plan(self):
        from repro.cli import Shell
        shell = Shell()
        _populate(shell.conn)
        text = self.run(shell, "EXPLAIN SELECT a FROM r LIMIT 1")
        assert "StreamingLimit" in text
        assert "rows=" not in text  # not executed
