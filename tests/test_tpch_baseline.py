"""Sublink-free TPC-H templates: execution + provenance baselines."""

import pytest

from repro.tpch import BASELINE_QUERIES, baseline_sql, load_tpch


@pytest.fixture(scope="module")
def db():
    return load_tpch(scale=0.0001, seed=11)


class TestBaselineTemplates:
    def test_template_set(self):
        assert BASELINE_QUERIES == (1, 3, 5, 6, 10)

    def test_seeded(self):
        assert baseline_sql(1, 2) == baseline_sql(1, 2)
        assert baseline_sql(1, 2) != baseline_sql(1, 3)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            baseline_sql(7)

    @pytest.mark.parametrize("number", BASELINE_QUERIES)
    def test_runs(self, db, number):
        relation = db.sql(baseline_sql(number, seed=1))
        assert relation is not None

    @pytest.mark.parametrize("number", BASELINE_QUERIES)
    def test_provenance_result_preserved(self, db, number):
        sql = baseline_sql(number, seed=1)
        plain = {tuple(row) for row in db.sql(sql).rows}
        prov = db.provenance(sql)
        width = len(db.sql(sql).schema)
        assert {row[:width] for row in prov.rows} == plain

    def test_q1_aggregates_sensible(self, db):
        rows = db.sql(baseline_sql(1, seed=1)).rows
        for row in rows:
            # count_order >= 1 and sum >= avg for every group
            assert row[-1] >= 1
            assert row[2] >= row[6]

    def test_q6_single_scalar(self, db):
        rows = db.sql(baseline_sql(6, seed=1)).rows
        assert len(rows) == 1

    def test_q1_provenance_group_sizes(self, db):
        sql = baseline_sql(1, seed=1)
        plain = db.sql(sql)
        prov = db.provenance(sql)
        # total provenance rows == total contributing line items
        counts = {row[-1] for row in plain.rows}
        assert len(prov.rows) == sum(row[-1] for row in plain.rows)
