"""SQL feature matrix: end-to-end behaviour of the dialect's constructs
(the features the TPC-H templates depend on, exercised in isolation)."""

import pytest

from repro import Database


@pytest.fixture
def db():
    database = Database()
    database.execute_script("""
        CREATE TABLE items (id int, name text, price float, qty int,
                            category text);
        INSERT INTO items VALUES
            (1, 'forest bench', 10.0, 3, 'garden'),
            (2, 'lamp', 25.5, 1, 'indoor'),
            (3, 'forest table', 99.0, NULL, 'garden'),
            (4, 'rug', 12.0, 7, 'indoor'),
            (5, 'pot', 3.5, 20, NULL);
    """)
    return database


class TestPredicates:
    def test_between(self, db):
        rows = db.sql("SELECT id FROM items WHERE price "
                      "BETWEEN 10 AND 30 ORDER BY id").rows
        assert rows == [(1,), (2,), (4,)]

    def test_like_prefix(self, db):
        rows = db.sql("SELECT id FROM items WHERE name LIKE 'forest%' "
                      "ORDER BY id").rows
        assert rows == [(1,), (3,)]

    def test_not_like_with_underscore(self, db):
        rows = db.sql(
            "SELECT name FROM items WHERE name LIKE '_ot'").rows
        assert rows == [("pot",)]

    def test_in_list(self, db):
        rows = db.sql("SELECT id FROM items WHERE category IN "
                      "('garden', 'indoor') ORDER BY id").rows
        assert rows == [(1,), (2,), (3,), (4,)]

    def test_null_category_excluded_by_in(self, db):
        rows = db.sql(
            "SELECT id FROM items WHERE category NOT IN ('garden')"
            " ORDER BY id").rows
        assert rows == [(2,), (4,)]  # NULL category is unknown -> dropped

    def test_is_null(self, db):
        assert db.sql("SELECT id FROM items WHERE qty IS NULL").rows == [
            (3,)]
        assert len(db.sql(
            "SELECT id FROM items WHERE qty IS NOT NULL").rows) == 4


class TestExpressions:
    def test_case_in_select(self, db):
        rows = db.sql("""
            SELECT id, CASE WHEN price > 20 THEN 'pricey'
                            WHEN price > 5 THEN 'fair'
                            ELSE 'cheap' END AS tier
            FROM items ORDER BY id""").rows
        assert [tier for _, tier in rows] == [
            "fair", "pricey", "pricey", "fair", "cheap"]

    def test_arithmetic_with_null(self, db):
        rows = db.sql("SELECT id, price * qty AS total FROM items "
                      "WHERE id = 3").rows
        assert rows == [(3, None)]

    def test_string_functions(self, db):
        rows = db.sql(
            "SELECT upper(substr(name, 1, 3)) AS code FROM items "
            "WHERE id = 2").rows
        assert rows == [("LAM",)]

    def test_concat_operator(self, db):
        rows = db.sql("SELECT name || '!' AS loud FROM items "
                      "WHERE id = 5").rows
        assert rows == [("pot!",)]

    def test_coalesce(self, db):
        rows = db.sql("SELECT coalesce(qty, 0) AS q FROM items "
                      "WHERE id = 3").rows
        assert rows == [(0,)]

    def test_cast_in_where(self, db):
        rows = db.sql("SELECT id FROM items "
                      "WHERE CAST(price AS int) = 12").rows
        assert rows == [(4,)]


class TestNestedQueries:
    def test_derived_table_over_aggregate(self, db):
        rows = db.sql("""
            SELECT category, total
            FROM (SELECT category, sum(price) AS total FROM items
                  WHERE category IS NOT NULL GROUP BY category) AS t
            WHERE total > 30 ORDER BY category""").rows
        assert rows == [("garden", 109.0), ("indoor", 37.5)]

    def test_correlated_scalar_in_select(self, db):
        rows = db.sql("""
            SELECT i.category,
                   (SELECT max(price) FROM items j
                    WHERE j.category = i.category) AS top
            FROM items i WHERE i.id = 1""").rows
        assert rows == [("garden", 99.0)]

    def test_three_level_nesting(self, db):
        rows = db.sql("""
            SELECT id FROM items WHERE price > (
                SELECT avg(price) FROM items WHERE id IN (
                    SELECT id FROM items WHERE category = 'indoor'))
            ORDER BY id""").rows
        assert rows == [(2,), (3,)]  # avg(indoor) = 18.75

    def test_exists_with_aggregate_subquery(self, db):
        rows = db.sql("""
            SELECT category FROM items i WHERE EXISTS (
                SELECT category FROM items GROUP BY category
                HAVING count(*) > 1 AND category = i.category)
            ORDER BY id""").rows
        assert [r[0] for r in rows] == ["garden", "indoor", "garden",
                                        "indoor"]


class TestProvenanceOfFeatures:
    """Provenance flows through every dialect feature."""

    def test_provenance_with_case(self, db):
        prov = db.provenance(
            "SELECT CASE WHEN price > 20 THEN 'hi' ELSE 'lo' END AS t "
            "FROM items WHERE id = 2")
        assert prov.rows[0][0] == "hi"
        assert prov.rows[0][1] == 2  # prov_items_id

    def test_provenance_with_like_filtered_sublink(self, db):
        prov = db.provenance(
            "SELECT id FROM items WHERE price = ANY ("
            "  SELECT price FROM items j WHERE j.name LIKE 'forest%')")
        ids = {row[0] for row in prov.rows}
        assert ids == {1, 3}

    def test_provenance_union_of_filters(self, db):
        prov = db.provenance(
            "SELECT id FROM items WHERE category = 'garden' "
            "UNION ALL SELECT id FROM items WHERE qty > 10")
        assert {row[0] for row in prov.rows} == {1, 3, 5}

    def test_provenance_correlated_aggregate_comparison(self, db):
        # each item compared to its category's average (Q17's shape)
        sql = ("SELECT id FROM items i WHERE price < ("
               "  SELECT avg(price) FROM items j "
               "  WHERE j.category = i.category)")
        plain = {row[0] for row in db.sql(sql).rows}
        prov = db.provenance(sql, strategy="gen")
        assert {row[0] for row in prov.rows} == plain
        # provenance covers both accesses of items
        assert len(prov.schema) == 1 + 5 + 5
