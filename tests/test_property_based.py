"""Property-based tests (hypothesis): the paper's key invariants over
randomly generated databases and sublink queries.

1. Result preservation (Theorem 4, first half): the distinct original
   attributes of q+ equal the result of q — for every strategy.
2. Strategy agreement: Gen, Left, Move (and Unn where applicable) produce
   identical provenance bags.
3. Provenance tuples are real: every non-NULL provenance tuple embedded in
   q+'s output occurs in the corresponding base relation.
4. Bag-algebra laws of the substrate (Figure 1 multiplicity identities).
5. Cardinality-estimator sanity: estimates are non-negative, bounded by
   the table's row count for single-table filters, and exact for
   ``col = const`` on a unique indexed column.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database, connect
from repro.relation import Relation


# ---------------------------------------------------------------------------
# Random databases and queries
# ---------------------------------------------------------------------------

small_int = st.integers(min_value=-3, max_value=3)
nullable_int = st.one_of(st.none(), small_int)

rows_r = st.lists(st.tuples(small_int, small_int), min_size=0, max_size=6)
rows_s = st.lists(st.tuples(small_int, small_int), min_size=0, max_size=6)

comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
sublink_shapes = st.sampled_from([
    "a {op} ANY (SELECT c FROM s {where})",
    "a {op} ALL (SELECT c FROM s {where})",
    "EXISTS (SELECT * FROM s {where})",
    "NOT EXISTS (SELECT * FROM s {where})",
    "a {op} (SELECT max(c) FROM s {where})",
    "a IN (SELECT c FROM s {where})",
    "a NOT IN (SELECT c FROM s {where})",
])
sublink_filters = st.sampled_from([
    "", "WHERE c > 0", "WHERE d <= 1", "WHERE c = d",
])


def make_db(r_rows, s_rows) -> Database:
    db = Database()
    db.execute("CREATE TABLE r (a int, b int)")
    db.insert("r", r_rows)
    db.execute("CREATE TABLE s (c int, d int)")
    db.insert("s", s_rows)
    return db


def build_query(shape: str, op: str, where: str) -> str:
    predicate = shape.format(op=op, where=where)
    return f"SELECT a, b FROM r WHERE b >= 0 AND {predicate}"


@settings(max_examples=60, deadline=None)
@given(rows_r, rows_s, sublink_shapes, comparison_ops, sublink_filters)
def test_result_preservation_all_strategies(r_rows, s_rows, shape, op,
                                            where):
    db = make_db(r_rows, s_rows)
    sql = build_query(shape, op, where)
    plain = set(db.sql(sql).rows)
    for strategy in ("gen", "left", "move", "auto"):
        prov = db.provenance(sql, strategy=strategy)
        originals = {row[:2] for row in prov.rows}
        assert originals == plain, (sql, strategy)


@settings(max_examples=60, deadline=None)
@given(rows_r, rows_s, sublink_shapes, comparison_ops, sublink_filters)
def test_strategy_agreement(r_rows, s_rows, shape, op, where):
    db = make_db(r_rows, s_rows)
    sql = build_query(shape, op, where)
    reference = Counter(db.provenance(sql, strategy="gen").rows)
    for strategy in ("left", "move"):
        other = Counter(db.provenance(sql, strategy=strategy).rows)
        assert other == reference, (sql, strategy)


@settings(max_examples=40, deadline=None)
@given(rows_r, rows_s, sublink_filters)
def test_unn_agreement_on_equality_any(r_rows, s_rows, where):
    db = make_db(r_rows, s_rows)
    sql = build_query("a {op} ANY (SELECT c FROM s {where})", "=", where)
    reference = Counter(db.provenance(sql, strategy="gen").rows)
    unn = Counter(db.provenance(sql, strategy="unn").rows)
    assert unn == reference, sql


@settings(max_examples=40, deadline=None)
@given(rows_r, rows_s, sublink_shapes, comparison_ops)
def test_provenance_tuples_are_real(r_rows, s_rows, shape, op):
    db = make_db(r_rows, s_rows)
    sql = build_query(shape, op, "")
    prov = db.provenance(sql, strategy="gen")
    r_set = set(r_rows)
    s_set = set(s_rows)
    for row in prov.rows:
        r_part, s_part = row[2:4], row[4:6]
        if r_part != (None, None):
            assert tuple(r_part) in r_set
        if s_part != (None, None):
            assert tuple(s_part) in s_set


@settings(max_examples=40, deadline=None)
@given(rows_r, rows_s)
def test_correlated_gen_preserves_results(r_rows, s_rows):
    db = make_db(r_rows, s_rows)
    sql = ("SELECT a, b FROM r WHERE EXISTS "
           "(SELECT * FROM s WHERE c = b)")
    plain = set(db.sql(sql).rows)
    prov = db.provenance(sql, strategy="gen")
    assert {row[:2] for row in prov.rows} == plain


@settings(max_examples=40, deadline=None)
@given(rows_r, rows_s)
def test_aggregation_provenance_covers_group(r_rows, s_rows):
    db = make_db(r_rows, s_rows)
    sql = "SELECT b, count(*) AS n FROM r GROUP BY b"
    prov = db.provenance(sql)
    # every group of size n appears exactly n times in the provenance
    group_sizes = Counter(row[1] for row in r_rows)
    prov_counts = Counter(row[0] for row in prov.rows)
    for key, size in group_sizes.items():
        assert prov_counts[key] == size


# ---------------------------------------------------------------------------
# Bag-algebra laws (Figure 1)
# ---------------------------------------------------------------------------

bags = st.lists(st.tuples(small_int), min_size=0, max_size=8)


def as_rel(rows):
    return Relation.from_columns(["x"], rows)


@settings(max_examples=100, deadline=None)
@given(bags, bags)
def test_bag_union_multiplicity(xs, ys):
    combined = as_rel(xs).bag_union(as_rel(ys)).multiset()
    expected = Counter(xs) + Counter(ys)
    assert combined == expected


@settings(max_examples=100, deadline=None)
@given(bags, bags)
def test_bag_intersect_multiplicity(xs, ys):
    combined = as_rel(xs).bag_intersect(as_rel(ys)).multiset()
    expected = Counter(xs) & Counter(ys)
    assert combined == expected


@settings(max_examples=100, deadline=None)
@given(bags, bags)
def test_bag_difference_multiplicity(xs, ys):
    combined = as_rel(xs).bag_difference(as_rel(ys)).multiset()
    expected = Counter(xs) - Counter(ys)
    assert combined == expected


@settings(max_examples=100, deadline=None)
@given(bags, bags)
def test_union_via_sql_matches_relation_layer(xs, ys):
    db = Database()
    db.execute("CREATE TABLE t1 (x int)")
    db.insert("t1", xs)
    db.execute("CREATE TABLE t2 (x int)")
    db.insert("t2", ys)
    rows = db.sql("SELECT x FROM t1 UNION ALL SELECT x FROM t2").rows
    assert Counter(rows) == Counter(xs) + Counter(ys)


# ---------------------------------------------------------------------------
# Cardinality-estimator sanity
# ---------------------------------------------------------------------------

filter_predicates = st.sampled_from([
    "a = {v}", "a <> {v}", "a < {v}", "a >= {v}", "a IS NULL",
    "a = {v} AND b > {v}", "a = {v} OR b = {v}", "NOT a = {v}",
])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(nullable_int, small_int),
                min_size=0, max_size=12),
       filter_predicates, small_int, st.booleans())
def test_estimates_bounded_for_single_table_filters(rows, predicate,
                                                    value, analyzed):
    conn = connect()
    conn.execute("CREATE TABLE t (a int, b int)")
    conn.insert("t", rows)
    if analyzed:
        conn.execute("ANALYZE t")
    sql = f"SELECT a FROM t WHERE {predicate.format(v=value)}"
    estimate = conn.estimate_rows(sql)
    assert estimate >= 0.0
    assert estimate <= len(rows) + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=-50, max_value=50),
                min_size=1, max_size=20, unique=True),
       st.booleans())
def test_unique_indexed_equality_estimate_is_exact(values, analyzed):
    conn = connect()
    conn.execute("CREATE TABLE u (k int, v int)")
    conn.insert("u", [(value, 0) for value in values])
    conn.execute("CREATE UNIQUE INDEX u_k ON u (k)")
    if analyzed:
        conn.execute("ANALYZE u")
    for value in values:
        estimate = conn.estimate_rows(f"SELECT v FROM u WHERE k = {value}")
        actual = len(conn.sql(f"SELECT v FROM u WHERE k = {value}").rows)
        assert actual == 1
        assert estimate == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(small_int, small_int), min_size=0, max_size=12),
       st.sampled_from(["hash", "sorted"]))
def test_indexed_and_plain_plans_agree(rows, kind):
    """Whatever the planner picks, indexed execution returns the same
    bag as the index-free plan."""
    plain = connect(use_indexes=False)
    plain.execute("CREATE TABLE t (a int, b int)")
    plain.insert("t", rows)
    indexed = connect(catalog=plain.catalog)
    indexed.execute(f"CREATE INDEX t_a ON t (a) USING {kind}")
    indexed.execute("ANALYZE t")
    for sql in ("SELECT b FROM t WHERE a = 1",
                "SELECT b FROM t WHERE a >= 0 AND b < 2"):
        assert Counter(indexed.sql(sql).rows) == \
            Counter(plain.sql(sql).rows)


@settings(max_examples=60, deadline=None)
@given(bags, bags)
def test_intersect_distinct_via_sql(xs, ys):
    db = Database()
    db.execute("CREATE TABLE t1 (x int)")
    db.insert("t1", xs)
    db.execute("CREATE TABLE t2 (x int)")
    db.insert("t2", ys)
    rows = db.sql("SELECT x FROM t1 INTERSECT SELECT x FROM t2").rows
    assert set(rows) == set(xs) & set(ys)
    assert len(rows) == len(set(rows))
