"""Algebra trees: schema inference, cloning, correlation utilities."""

import pytest

from repro.errors import SchemaError
from repro.expressions.ast import (
    Col, Comparison, Const, Not, Sublink, SublinkKind, TRUE,
)
from repro.algebra.operators import (
    Aggregate, BaseRelation, Join, JoinKind, Project, Select, SetOp,
    SetOpKind, Values,
)
from repro.algebra.printer import explain
from repro.algebra.properties import (
    collect_base_relations, contains_sublinks, correlation_depth,
    is_correlated,
)
from repro.algebra.trees import (
    clone, clone_expr, iter_operators, shift_correlation,
    shift_correlation_expr, transform_expressions,
)
from repro.expressions.ast import AggCall
from repro.schema import Schema


def scan(name="t", *columns):
    return BaseRelation(name, name, Schema.of(*(columns or ("a", "b"))))


class TestSchemaInference:
    def test_project_schema(self):
        plan = Project(scan(), [("x", Col("a")), ("y", Const(1))])
        assert plan.schema.names == ("x", "y")

    def test_select_passthrough(self):
        plan = Select(scan(), TRUE)
        assert plan.schema.names == ("a", "b")

    def test_join_concat(self):
        plan = Join(scan("t"), scan("u", "c", "d"), TRUE, JoinKind.CROSS)
        assert plan.schema.names == ("a", "b", "c", "d")

    def test_join_name_collision_raises(self):
        plan = Join(scan("t"), scan("u"), TRUE, JoinKind.CROSS)
        with pytest.raises(SchemaError):
            plan.schema

    def test_aggregate_schema(self):
        plan = Aggregate(scan(), ("b",),
                         [("total", AggCall("sum", Col("a")))])
        assert plan.schema.names == ("b", "total")

    def test_setop_arity_mismatch_raises(self):
        plan = SetOp(SetOpKind.UNION, scan(), scan("u", "x"), all=True)
        with pytest.raises(SchemaError):
            plan.schema

    def test_values_arity_checked(self):
        with pytest.raises(SchemaError):
            Values(Schema.of("a"), [(1, 2)])

    def test_schema_caching(self):
        plan = Select(scan(), TRUE)
        assert plan.schema is plan.schema


class TestClone:
    def test_clone_is_deep_for_operators(self):
        original = Select(scan(), Comparison("=", Col("a"), Const(1)))
        copy = clone(original)
        assert copy is not original
        assert copy.input is not original.input
        assert copy.schema == original.schema

    def test_clone_expr_clones_sublink_queries(self):
        sub = Sublink(SublinkKind.EXISTS, scan("u", "c"))
        copy = clone_expr(sub)
        assert copy.query is not sub.query


class TestShiftCorrelation:
    def test_plain_column_shifts(self):
        shifted = shift_correlation_expr(Col("a"), 1, boundary=0)
        assert shifted == Col("a", 1)

    def test_below_boundary_untouched(self):
        shifted = shift_correlation_expr(Col("a", 0), 1, boundary=1)
        assert shifted == Col("a", 0)

    def test_shift_through_sublink(self):
        # sublink query references level 1 (the host scope): escaping
        inner = Select(scan("u", "c"),
                       Comparison("=", Col("c"), Col("a", level=1)))
        expr = Sublink(SublinkKind.EXISTS, inner)
        shifted = shift_correlation_expr(expr, 1, boundary=0)
        condition = shifted.query.condition
        assert condition.right == Col("a", 2)
        assert condition.left == Col("c", 0)

    def test_shift_deeply_nested(self):
        # two sublink levels: innermost ref at level 2 escapes, level 1
        # (referencing the middle query) does not
        innermost = Select(
            scan("w", "e"),
            Comparison("=", Col("e"), Col("a", level=2)))
        middle = Select(
            scan("u", "c"),
            Sublink(SublinkKind.EXISTS, innermost))
        expr = Sublink(SublinkKind.EXISTS, middle)
        shifted = shift_correlation_expr(expr, 1, boundary=0)
        inner_cond = shifted.query.condition.query.condition
        assert inner_cond.right == Col("a", 3)
        assert inner_cond.left == Col("e", 0)

    def test_zero_delta_is_identity(self):
        op = Select(scan(), Comparison("=", Col("a"), Col("x", 1)))
        assert shift_correlation(op, 0) is op


class TestProperties:
    def test_is_correlated_true(self):
        query = Select(scan("u", "c"),
                       Comparison("=", Col("c"), Col("a", level=1)))
        assert is_correlated(query)
        assert correlation_depth(query) == 1

    def test_is_correlated_false(self):
        query = Select(scan("u", "c"),
                       Comparison("=", Col("c"), Const(1)))
        assert not is_correlated(query)

    def test_correlation_through_nested_sublink(self):
        innermost = Select(
            scan("w", "e"),
            Comparison("=", Col("e"), Col("a", level=2)))
        query = Select(scan("u", "c"),
                       Sublink(SublinkKind.EXISTS, innermost))
        assert is_correlated(query)

    def test_internal_reference_not_correlated(self):
        innermost = Select(
            scan("w", "e"),
            Comparison("=", Col("e"), Col("c", level=1)))
        query = Select(scan("u", "c"),
                       Sublink(SublinkKind.EXISTS, innermost))
        assert not is_correlated(query)

    def test_contains_sublinks(self):
        assert contains_sublinks(
            Not(Sublink(SublinkKind.EXISTS, scan())))
        assert not contains_sublinks(Comparison("=", Col("a"), Const(1)))

    def test_collect_base_relations_includes_sublink_queries(self):
        sub = Sublink(SublinkKind.EXISTS, scan("u", "c"))
        plan = Select(scan("t"), sub)
        tables = [b.table for b in collect_base_relations(plan)]
        assert tables == ["t", "u"]


class TestTreeWalking:
    def test_iter_operators_preorder(self):
        plan = Select(Join(scan("t"), scan("u", "c", "d"), TRUE,
                           JoinKind.CROSS), TRUE)
        kinds = [type(op).__name__ for op in iter_operators(plan)]
        assert kinds == ["Select", "Join", "BaseRelation", "BaseRelation"]

    def test_transform_expressions_rebuilds(self):
        plan = Select(scan(), Comparison("=", Col("a"), Const(1)))

        def widen(expr):
            return TRUE

        new_plan = transform_expressions(plan, widen)
        assert new_plan.condition == TRUE
        assert plan.condition != TRUE  # original untouched

    def test_explain_renders_tree(self):
        sub = Sublink(SublinkKind.EXISTS, scan("u", "c"))
        plan = Select(scan("t"), sub)
        text = explain(plan)
        assert "Scan t" in text and "Scan u" in text
        assert "sublink exists" in text
