"""Logical optimizer: pushdown correctness and plan-shape checks."""

import pytest

from repro import Database
from repro.catalog import Catalog
from repro.engine import Executor
from repro.engine.optimizer import optimize, scope_column_names
from repro.expressions.ast import (
    Col, Comparison, Const, Sublink, SublinkKind, TRUE, and_all,
)
from repro.algebra.operators import (
    BaseRelation, Join, JoinKind, Project, Select,
)
from repro.algebra.trees import iter_operators
from repro.schema import Schema


@pytest.fixture
def db(figure3_db):
    return figure3_db


def equivalent(db, sql):
    """Optimized and unoptimized executions must agree (as bags)."""
    plan = db.plan(sql)
    fast = Executor(db.catalog, optimize=True).execute(plan)
    slow = Executor(db.catalog, optimize=False).execute(plan)
    assert fast.bag_equal(slow), sql
    return fast


class TestEquivalence:
    """The optimizer must never change results."""

    @pytest.mark.parametrize("sql", [
        "SELECT a, c FROM r, s WHERE a = c",
        "SELECT a, c FROM r, s WHERE a = c AND b > 1 AND d < 5",
        "SELECT a FROM r, s WHERE a < c",
        "SELECT a, d FROM r LEFT JOIN s ON a = c WHERE b = 1",
        "SELECT a FROM r WHERE a = ANY (SELECT c FROM s WHERE d > 3)",
        "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE c = b)",
        "SELECT b, count(*) AS n FROM r, s WHERE a = c GROUP BY b",
        "SELECT x.a FROM r x, r y WHERE x.a = y.a AND y.b = 1",
    ])
    def test_same_results(self, db, sql):
        equivalent(db, sql)

    def test_provenance_plans_equivalent(self, db):
        for strategy in ("gen", "left", "move", "unn"):
            plan = db.plan(
                "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)",
                strategy=strategy)
            fast = Executor(db.catalog, optimize=True).execute(plan)
            slow = Executor(db.catalog, optimize=False).execute(plan)
            assert fast.bag_equal(slow), strategy


class TestPlanShapes:
    def test_equality_becomes_join_condition(self, db):
        plan = optimize(db.plan("SELECT a, c FROM r, s WHERE a = c"))
        joins = [op for op in iter_operators(plan)
                 if isinstance(op, Join) and op.condition != TRUE]
        assert joins, "equality conjunct should move into the join"

    def test_single_side_predicate_pushed_below_join(self, db):
        plan = optimize(
            db.plan("SELECT a, c FROM r, s WHERE a = c AND b = 1"))
        join = next(op for op in iter_operators(plan)
                    if isinstance(op, Join))
        # the b = 1 filter must now be on the r side, below the join
        left_side = list(iter_operators(join.left))
        assert any(isinstance(op, Select) for op in left_side)

    def test_left_join_right_side_not_filtered_early(self, db):
        # filtering s before the outer join would change null-padding
        sql = ("SELECT a, d FROM r LEFT JOIN s ON a = c "
               "WHERE d IS NULL")
        rows = equivalent(db, sql).rows
        assert (3, None) in rows

    def test_pushdown_through_rename_projection(self):
        scan_op = BaseRelation("t", "t", Schema.of("a", "b"))
        renamed = Project(scan_op, [("x", Col("a")), ("y", Col("b"))])
        plan = Select(renamed, Comparison("=", Col("x"), Const(1)))
        optimized = optimize(plan)
        assert isinstance(optimized, Project)
        inner = optimized.input
        assert isinstance(inner, Select)
        assert inner.condition == Comparison("=", Col("a"), Const(1))

    def test_select_chains_flattened(self):
        scan_op = BaseRelation("t", "t", Schema.of("a", "b"))
        plan = Select(Select(scan_op, Comparison("=", Col("a"), Const(1))),
                      Comparison("=", Col("b"), Const(2)))
        optimized = optimize(plan)
        selects = [op for op in iter_operators(optimized)
                   if isinstance(op, Select)]
        assert len(selects) == 1
        assert len(and_all([selects[0].condition]).items) == 2


class TestScopeColumnNames:
    def test_plain_columns(self):
        expr = and_all([Comparison("=", Col("a"), Col("b"))])
        assert scope_column_names(expr) == {"a", "b"}

    def test_outer_levels_ignored(self):
        expr = Comparison("=", Col("a"), Col("x", level=1))
        assert scope_column_names(expr) == {"a"}

    def test_correlated_refs_inside_sublinks_counted(self):
        inner = Select(BaseRelation("u", "u", Schema.of("c")),
                       Comparison("=", Col("c"), Col("b", level=1)))
        expr = Sublink(SublinkKind.EXISTS, inner)
        assert scope_column_names(expr) == {"b"}

    def test_sublink_internal_refs_not_counted(self):
        inner = Select(BaseRelation("u", "u", Schema.of("c")),
                       Comparison("=", Col("c"), Const(1)))
        expr = Sublink(SublinkKind.EXISTS, inner)
        assert scope_column_names(expr) == set()
