"""End-to-end Database facade scenarios (DDL/DML, scripts, explain)."""

import pytest

from repro import AnalyzerError, Database


class TestDDLDML:
    def test_create_insert_select(self):
        db = Database()
        db.execute("CREATE TABLE t (x int, name text)")
        db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
        assert db.sql("SELECT name FROM t WHERE x = 2").rows == [("two",)]

    def test_insert_expressions(self):
        db = Database()
        db.execute("CREATE TABLE t (x int)")
        db.execute("INSERT INTO t VALUES (1 + 2), (-4)")
        assert sorted(db.sql("SELECT x FROM t").rows) == [(-4,), (3,)]

    def test_delete_with_predicate(self):
        db = Database()
        db.execute("CREATE TABLE t (x int)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("DELETE FROM t WHERE x >= 2")
        assert db.sql("SELECT x FROM t").rows == [(1,)]

    def test_delete_all(self):
        db = Database()
        db.execute("CREATE TABLE t (x int)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("DELETE FROM t")
        assert db.sql("SELECT x FROM t").rows == []

    def test_drop_table_and_view(self):
        db = Database()
        db.execute("CREATE TABLE t (x int)")
        db.execute("CREATE VIEW v AS SELECT x FROM t")
        db.execute("DROP VIEW v")
        db.execute("DROP TABLE t")
        assert "t" not in db.catalog

    def test_drop_missing_view_raises(self):
        with pytest.raises(AnalyzerError):
            Database().execute("DROP VIEW ghost")

    def test_execute_script(self):
        db = Database()
        db.execute_script("""
            CREATE TABLE t (x int);
            INSERT INTO t VALUES (1), (2);
            CREATE VIEW doubled AS SELECT x * 2 AS y FROM t;
        """)
        assert sorted(db.sql("SELECT y FROM doubled").rows) == [
            (2,), (4,)]

    def test_programmatic_api(self):
        db = Database()
        db.create_table("t", [("x", "int"), ("y", "text")])
        inserted = db.insert("t", [(1, "a"), (2, "b")])
        assert inserted == 2

    def test_sql_rejects_non_select(self):
        db = Database()
        with pytest.raises(AnalyzerError):
            db.sql("CREATE TABLE t (x int)")


class TestExplainAndPlan:
    def test_explain_contains_operators(self, figure3_db):
        text = figure3_db.explain(
            "SELECT a FROM r WHERE a = ANY (SELECT c FROM s)")
        assert "Scan r" in text and "Scan s" in text

    def test_explain_provenance_strategy_changes_plan(self, figure3_db):
        sql = "SELECT a FROM r WHERE a = ANY (SELECT c FROM s)"
        gen_plan = figure3_db.explain(sql, strategy="gen")
        unn_plan = figure3_db.explain(sql, strategy="unn")
        assert gen_plan != unn_plan
        assert "sublink" in gen_plan  # Gen keeps sublinks
        assert "sublink" not in unn_plan  # Unn eliminates them

    def test_strategy_in_sql_text(self, figure3_db):
        rel = figure3_db.sql(
            "SELECT PROVENANCE (unn) a FROM r "
            "WHERE a = ANY (SELECT c FROM s)")
        assert sorted(rel.rows) == [(1, 1, 1, 1, 3), (2, 2, 1, 2, 4)]

    def test_strategy_argument_overrides_sql(self, figure3_db):
        sql = ("SELECT PROVENANCE (gen) a FROM r "
               "WHERE a = ANY (SELECT c FROM s)")
        rel = figure3_db.sql(sql, strategy="left")
        assert sorted(rel.rows) == [(1, 1, 1, 1, 3), (2, 2, 1, 2, 4)]


class TestQuickstartScenario:
    """The README quickstart, verified end to end."""

    def test_quickstart(self):
        db = Database()
        db.execute("CREATE TABLE r (a int, b int)")
        db.execute("INSERT INTO r VALUES (1, 1), (2, 1), (3, 2)")
        db.execute("CREATE TABLE s (c int, d int)")
        db.execute("INSERT INTO s VALUES (1, 3), (2, 4), (4, 5)")
        result = db.sql(
            "SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)")
        assert list(result.schema.names) == [
            "a", "b", "prov_r_a", "prov_r_b", "prov_s_c", "prov_s_d"]
        assert sorted(result.rows) == [
            (1, 1, 1, 1, 1, 3), (2, 1, 2, 1, 2, 4)]

    def test_pretty_output(self, figure3_db):
        text = figure3_db.sql("SELECT PROVENANCE a FROM r").pretty()
        assert "prov_r_a" in text


class TestErrorTraceability:
    """A curated-database debugging scenario: trace a wrong result back
    to its source tuple via provenance."""

    def test_trace_bad_tuple(self):
        db = Database()
        db.execute("CREATE TABLE measurements (sensor int, value float)")
        db.execute("INSERT INTO measurements VALUES "
                   "(1, 10.0), (1, 12.0), (2, 999999.0), (2, 11.0)")
        prov = db.provenance(
            "SELECT sensor, avg(value) AS mean FROM measurements "
            "GROUP BY sensor")
        suspicious = [row for row in prov.rows if row[1] > 1000]
        # the provenance columns point at the culprit tuple
        culprits = {(row[2], row[3]) for row in suspicious}
        assert (2, 999999.0) in culprits
