"""SQL parser: statements, expressions, sublinks, precedence."""

import pytest

from repro.errors import SQLSyntaxError
from repro.expressions.ast import (
    AggCall, Arith, BoolOp, Case, Cast, Col, Comparison, Const, IsNull,
    Like, Not, Sublink, SublinkKind,
)
from repro.sql.ast import (
    CreateTableStmt, CreateViewStmt, DeleteStmt, DropStmt, InsertStmt,
    JoinExpr, SelectStmt, Star, SubqueryRef, TableRef,
)
from repro.sql.parser import parse_statement, parse_statements


def parse_select(text) -> SelectStmt:
    stmt = parse_statement(text)
    assert isinstance(stmt, SelectStmt)
    return stmt


def where_of(text):
    return parse_select(f"SELECT * FROM t WHERE {text}").where


class TestStatements:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (a int, b varchar(10), c decimal(15, 2))")
        assert isinstance(stmt, CreateTableStmt)
        assert stmt.columns == [("a", "int"), ("b", "varchar"),
                                ("c", "decimal")]

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT 1 AS x")
        assert isinstance(stmt, CreateViewStmt)
        assert stmt.name == "v"

    def test_insert_multiple_rows(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, InsertStmt)
        assert len(stmt.rows) == 2

    def test_drop(self):
        stmt = parse_statement("DROP TABLE t")
        assert isinstance(stmt, DropStmt) and stmt.kind == "table"

    def test_delete_with_where(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, DeleteStmt)
        assert stmt.where is not None

    def test_trailing_semicolon_ok(self):
        parse_statement("SELECT 1;")

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError, match="trailing"):
            parse_statement("SELECT 1 1")

    def test_parse_statements_script(self):
        stmts = parse_statements(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT 1;")
        assert len(stmts) == 3


class TestSelectClauses:
    def test_provenance_flag(self):
        assert parse_select("SELECT PROVENANCE 1").provenance == "auto"
        assert parse_select("SELECT 1").provenance is None

    def test_provenance_strategy(self):
        assert parse_select(
            "SELECT PROVENANCE (left) 1").provenance == "left"

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_star_and_qualified_star(self):
        stmt = parse_select("SELECT *, t.*, a FROM t")
        assert isinstance(stmt.items[0].expr, Star)
        assert stmt.items[1].expr.qualifier == "t"
        assert isinstance(stmt.items[2].expr, Col)

    def test_aliases(self):
        stmt = parse_select("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_from_comma_list(self):
        stmt = parse_select("SELECT * FROM a, b c, (SELECT 1 AS x) AS d")
        assert isinstance(stmt.from_items[0], TableRef)
        assert stmt.from_items[1].alias == "c"
        assert isinstance(stmt.from_items[2], SubqueryRef)

    def test_join_syntax(self):
        stmt = parse_select(
            "SELECT * FROM a JOIN b ON a.x = b.x "
            "LEFT OUTER JOIN c ON b.y = c.y")
        join = stmt.from_items[0]
        assert isinstance(join, JoinExpr) and join.kind == "left"
        assert isinstance(join.left, JoinExpr)
        assert join.left.kind == "inner"

    def test_cross_join(self):
        stmt = parse_select("SELECT * FROM a CROSS JOIN b")
        assert stmt.from_items[0].kind == "cross"

    def test_group_by_having(self):
        stmt = parse_select(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_limit_offset(self):
        stmt = parse_select(
            "SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5")
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == 10 and stmt.offset == 5

    def test_set_operations(self):
        stmt = parse_select(
            "SELECT a FROM t UNION ALL SELECT b FROM u "
            "EXCEPT SELECT c FROM v")
        assert [(op, all_) for op, all_, _ in stmt.set_ops] == [
            ("union", True), ("except", False)]


class TestExpressions:
    def test_precedence_or_and(self):
        expr = where_of("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BoolOp) and expr.op == "or"
        assert isinstance(expr.items[1], BoolOp)
        assert expr.items[1].op == "and"

    def test_precedence_arith(self):
        expr = where_of("a + b * c = 7")
        assert isinstance(expr, Comparison)
        addition = expr.left
        assert isinstance(addition, Arith) and addition.op == "+"
        assert isinstance(addition.right, Arith)
        assert addition.right.op == "*"

    def test_not(self):
        expr = where_of("NOT a = 1")
        assert isinstance(expr, Not)

    def test_between_desugars(self):
        expr = where_of("a BETWEEN 1 AND 5")
        assert isinstance(expr, BoolOp) and expr.op == "and"
        assert expr.items[0].op == ">=" and expr.items[1].op == "<="

    def test_not_between(self):
        assert isinstance(where_of("a NOT BETWEEN 1 AND 5"), Not)

    def test_in_list_desugars_to_or(self):
        expr = where_of("a IN (1, 2, 3)")
        assert isinstance(expr, BoolOp) and expr.op == "or"
        assert len(expr.items) == 3

    def test_in_select_is_any_sublink(self):
        expr = where_of("a IN (SELECT b FROM u)")
        assert isinstance(expr, Sublink)
        assert expr.kind == SublinkKind.ANY and expr.op == "="

    def test_not_in_select(self):
        expr = where_of("a NOT IN (SELECT b FROM u)")
        assert isinstance(expr, Not)
        assert isinstance(expr.operand, Sublink)

    def test_any_all_some(self):
        any_expr = where_of("a = ANY (SELECT b FROM u)")
        assert any_expr.kind == SublinkKind.ANY
        some_expr = where_of("a < SOME (SELECT b FROM u)")
        assert some_expr.kind == SublinkKind.ANY and some_expr.op == "<"
        all_expr = where_of("a >= ALL (SELECT b FROM u)")
        assert all_expr.kind == SublinkKind.ALL

    def test_exists(self):
        expr = where_of("EXISTS (SELECT * FROM u)")
        assert isinstance(expr, Sublink)
        assert expr.kind == SublinkKind.EXISTS and expr.test is None

    def test_scalar_sublink(self):
        expr = where_of("a > (SELECT max(b) FROM u)")
        assert isinstance(expr.right, Sublink)
        assert expr.right.kind == SublinkKind.SCALAR

    def test_is_null_and_is_not_null(self):
        assert isinstance(where_of("a IS NULL"), IsNull)
        assert isinstance(where_of("a IS NOT NULL"), Not)

    def test_like_and_not_like(self):
        assert isinstance(where_of("a LIKE 'x%'"), Like)
        assert isinstance(where_of("a NOT LIKE 'x%'"), Not)

    def test_case(self):
        expr = where_of(
            "CASE WHEN a = 1 THEN 'one' ELSE 'other' END = 'one'")
        assert isinstance(expr.left, Case)

    def test_cast(self):
        expr = where_of("CAST(a AS int) = 1")
        assert isinstance(expr.left, Cast)
        assert expr.left.type_name == "int"

    def test_aggregates(self):
        stmt = parse_select(
            "SELECT count(*), count(DISTINCT a), sum(a + b) FROM t")
        star, distinct, total = (item.expr for item in stmt.items)
        assert isinstance(star, AggCall) and star.arg is None
        assert distinct.distinct is True
        assert isinstance(total.arg, Arith)

    def test_string_concat(self):
        expr = where_of("a || 'x' = 'bx'")
        assert isinstance(expr.left, Arith) and expr.left.op == "||"

    def test_unary_minus_and_plus(self):
        stmt = parse_select("SELECT -a, +b FROM t")
        from repro.expressions.ast import Neg
        assert isinstance(stmt.items[0].expr, Neg)
        assert isinstance(stmt.items[1].expr, Col)

    def test_number_literals(self):
        stmt = parse_select("SELECT 1, 2.5, 1e3")
        values = [item.expr.value for item in stmt.items]
        assert values == [1, 2.5, 1000.0]
        assert isinstance(values[0], int)

    def test_boolean_and_null_literals(self):
        stmt = parse_select("SELECT TRUE, FALSE, NULL")
        assert [item.expr.value for item in stmt.items] == [
            True, False, None]

    def test_error_messages_have_position(self):
        with pytest.raises(SQLSyntaxError, match="line"):
            parse_statement("SELECT FROM")
