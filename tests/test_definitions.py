"""Brute-force validation of Definitions 1 and 2 (Theorems 1-3) and the
Section 2.5 multiple-sublink ambiguity example."""

import pytest

from repro.datatypes import compare, tv_all, tv_any, tv_not, tv_or
from repro.provenance.oracle import (
    SelectionWithSublinks, brute_force_provenance,
)


def identity_query(sub_input, t):
    """Identity sublink query: Tsub = its input relation."""
    return list(sub_input)


def any_value(op):
    """``t.a op ANY Tsub`` over single-column rows."""
    return lambda t, rows: tv_any(compare(op, t[0], r[0]) for r in rows)


def all_value(op):
    """``t.a op ALL Tsub`` over single-column rows."""
    return lambda t, rows: tv_all(compare(op, t[0], r[0]) for r in rows)


def exists_value(t, rows):
    return len(rows) > 0


class TestSection25Ambiguity:
    """σ_{(a = ANY R) ∨ (a > ALL S)}(U) with R = {1..10} (scaled down
    from the paper's 1..100), S = {1, 5}, U = {5}: Definition 1 admits
    several incomparable maximal solutions; Definition 2 exactly one."""

    @pytest.fixture
    def selection(self):
        r_rows = [(i,) for i in range(1, 11)]
        s_rows = [(1,), (5,)]
        u_rows = [(5,)]
        return SelectionWithSublinks(
            u_rows, [r_rows, s_rows],
            [identity_query, identity_query],
            [any_value("="), all_value(">")],
            lambda t, values: tv_or(values[0], values[1]))

    def test_tuple_is_in_result(self, selection):
        assert selection.evaluate() == [(5,)]

    def test_definition1_is_ambiguous(self, selection):
        maxima = brute_force_provenance(selection, (5,), definition=1)
        assert len(maxima) > 1
        normalized = {tuple(tuple(sorted(s)) for s in m) for m in maxima}
        # the paper's two solutions are among the maxima
        solution1 = (((5,),), ((1,), (5,)))
        solution2 = (tuple((i,) for i in range(1, 11)), ((1,),))
        assert tuple(tuple(sorted(s)) for s in solution1) in normalized
        assert tuple(tuple(sorted(s)) for s in solution2) in normalized

    def test_definition2_is_unique(self, selection):
        maxima = brute_force_provenance(selection, (5,), definition=2)
        assert len(maxima) == 1
        r_star, s_star = maxima[0]
        # C1 (a = ANY R) is true: each provenance tuple alone must keep it
        # true -> R* = {5}.  C2 (a > ALL S) is false: each tuple alone
        # must keep it false -> S* = {5} (5 > 1 alone would flip it).
        assert sorted(r_star) == [(5,)]
        assert sorted(s_star) == [(5,)]


class TestTheorem1ANYSublinks:
    """Single ANY-sublink: brute force matches Figure 2's closed forms."""

    def build(self, input_rows, sub_rows):
        return SelectionWithSublinks(
            input_rows, [sub_rows], [identity_query], [any_value("=")],
            lambda t, values: values[0])

    def test_reqtrue_gives_tsub_true(self):
        selection = self.build([(2,)], [(1,), (2,), (3,)])
        maxima = brute_force_provenance(selection, (2,), definition=2)
        assert maxima == [(((2,),),)]

    def test_definition1_reqtrue_matches(self):
        selection = self.build([(2,)], [(1,), (2,), (3,)])
        maxima = brute_force_provenance(selection, (2,), definition=1)
        assert maxima == [(((2,),),)]

    def test_multiple_matches_all_kept(self):
        selection = self.build([(2,)], [(2,), (2,), (3,)])
        maxima = brute_force_provenance(selection, (2,), definition=2)
        (subsets,) = maxima
        assert sorted(subsets[0]) == [(2,), (2,)]


class TestTheorem1ALLSublinks:
    def build(self, input_rows, sub_rows, negate=False):
        condition = (lambda t, values: tv_not(values[0])) if negate \
            else (lambda t, values: values[0])
        return SelectionWithSublinks(
            input_rows, [sub_rows], [identity_query], [all_value("<")],
            condition)

    def test_reqtrue_gives_whole_tsub(self):
        # 1 < ALL {2,3}: true; provenance = Tsub
        selection = self.build([(1,)], [(2,), (3,)])
        maxima = brute_force_provenance(selection, (1,), definition=2)
        (subsets,) = maxima
        assert sorted(subsets[0]) == [(2,), (3,)]

    def test_reqfalse_gives_tsub_false(self):
        # NOT(3 < ALL {2,5}): sublink false; provenance = failing tuples
        selection = self.build([(3,)], [(2,), (5,)], negate=True)
        maxima = brute_force_provenance(selection, (3,), definition=2)
        (subsets,) = maxima
        assert sorted(subsets[0]) == [(2,)]

    def test_definition1_ind_differs_from_definition2(self):
        """Section 2.5's false-positive discussion: with an `ind` sublink
        (condition true regardless), Definition 1 keeps all of Tsub while
        Definition 2 restricts to the value-preserving tuples."""
        selection = SelectionWithSublinks(
            [(3,)], [[(2,), (5,)]], [identity_query], [all_value("<")],
            lambda t, values: tv_or(compare("=", t[0], 3), values[0]))
        def1 = brute_force_provenance(selection, (3,), definition=1)
        assert sorted(def1[0][0]) == [(2,), (5,)]  # whole Tsub (ind role)
        def2 = brute_force_provenance(selection, (3,), definition=2)
        # sublink is false (3 < 2 fails): only (2,) preserves falseness
        assert sorted(def2[0][0]) == [(2,)]


class TestExistsSublinks:
    def test_exists_provenance_is_whole_tsub(self):
        selection = SelectionWithSublinks(
            [(1,)], [[(7,), (8,)]], [identity_query], [exists_value],
            lambda t, values: values[0])
        for definition in (1, 2):
            maxima = brute_force_provenance(
                selection, (1,), definition=definition)
            (subsets,) = maxima
            assert sorted(subsets[0]) == [(7,), (8,)]

    def test_not_exists_requires_empty_tsub(self):
        selection = SelectionWithSublinks(
            [(1,)], [[]], [identity_query], [exists_value],
            lambda t, values: tv_not(values[0]))
        maxima = brute_force_provenance(selection, (1,), definition=2)
        assert maxima == [((),)]


class TestCorrelatedBruteForce:
    def test_correlated_sublink_query(self):
        # Tsub = σ_{c = t.b}(S): parameterized by the input tuple
        def corr_query(sub_input, t):
            return [row for row in sub_input if row[0] == t[1]]

        selection = SelectionWithSublinks(
            [(1, 1)], [[(1,), (2,)]], [corr_query], [any_value("=")],
            lambda t, values: values[0])
        maxima = brute_force_provenance(selection, (1, 1), definition=2)
        (subsets,) = maxima
        # (2,) is filtered by the correlation, and alone it changes
        # nothing; (1,) is the match.  Both definitions keep (2,) out of
        # Tsub_true but condition 3 also demands Csub equality: Csub with
        # {(2,)} alone is false != true -> excluded.
        assert sorted(subsets[0]) == [(1,)]


class TestRewriteAgreesWithBruteForce:
    """End-to-end: the Gen rewrite's provenance equals the brute-force
    Definition-2 maxima on a tiny instance."""

    def test_any_sublink(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)",
            strategy="gen")
        by_tuple = {}
        for row in prov.rows:
            by_tuple.setdefault((row[0], row[1]), set()).add(row[4:6])

        def sub_query(sub_input, t):
            return [(row[0],) for row in sub_input]

        selection = SelectionWithSublinks(
            [(1, 1), (2, 1), (3, 2)], [[(1, 3), (2, 4), (4, 5)]],
            [sub_query], [any_value("=")],
            lambda t, values: values[0])
        for result_tuple, prov_set in by_tuple.items():
            maxima = brute_force_provenance(
                selection, result_tuple, definition=2)
            (subsets,) = maxima
            assert {tuple(r) for r in subsets[0]} == prov_set
