"""Plan cache behaviour (hits, DDL invalidation, LRU, keying) and the
pluggable strategy registry."""

from __future__ import annotations

import pytest

from repro import Connection, RewriteError, connect
from repro.api.plan_cache import CachedPlan, PlanCache
from repro.provenance import strategies
from repro.provenance.strategies import LeftStrategy


@pytest.fixture
def conn() -> Connection:
    connection = connect()
    cur = connection.cursor()
    cur.execute("CREATE TABLE r (a int, b int)")
    cur.executemany("INSERT INTO r VALUES (?, ?)",
                    [(1, 1), (2, 1), (3, 2)])
    cur.execute("CREATE TABLE s (c int, d int)")
    cur.executemany("INSERT INTO s VALUES (?, ?)",
                    [(1, 3), (2, 4), (4, 5)])
    return connection


PROV_SQL = ("SELECT PROVENANCE * FROM r WHERE a = ANY "
            "(SELECT c FROM s WHERE c < ?)")


class TestPlanCacheHits:
    def test_prepared_reexecution_hits_cache(self, conn):
        ps = conn.prepare(PROV_SQL)
        ps.execute((10,))
        hits = conn.last_stats.plan_cache_hits
        ps.execute((10,))
        assert conn.last_stats.plan_cache_hits == hits + 1
        # no new planning happened
        assert conn.last_stats.plan_cache_misses == \
            conn.plan_cache.misses

    def test_cursor_shares_cache_with_prepared(self, conn):
        ps = conn.prepare(PROV_SQL)
        ps.execute((10,))
        size = len(conn.plan_cache)
        cur = conn.cursor()
        cur.execute(PROV_SQL, (10,))
        assert len(conn.plan_cache) == size  # same entry reused
        assert conn.last_stats.plan_cache_hits >= 2

    def test_two_cursors_share_one_plan(self, conn):
        a, b = conn.cursor(), conn.cursor()
        a.execute("SELECT a FROM r WHERE a = ?", (1,))
        misses = conn.plan_cache.misses
        b.execute("SELECT a FROM r WHERE a = ?", (2,))
        assert conn.plan_cache.misses == misses
        assert b.fetchall() == [(2,)]

    def test_cached_plan_results_match_uncached(self, conn):
        ps = conn.prepare(PROV_SQL)
        cached = sorted(ps.execute((10,)).rows)
        cached_again = sorted(ps.execute((10,)).rows)
        uncached = sorted(conn.sql(PROV_SQL.replace("?", "10")).rows)
        assert cached == cached_again == uncached


class TestInvalidation:
    def test_ddl_bumps_catalog_version(self, conn):
        version = conn.catalog.version
        conn.execute("CREATE TABLE t (x int)")
        assert conn.catalog.version == version + 1
        conn.execute("DROP TABLE t")
        assert conn.catalog.version == version + 2
        conn.create_view("v", "SELECT a FROM r")
        assert conn.catalog.version == version + 3
        conn.execute("DROP VIEW v")
        assert conn.catalog.version == version + 4

    def test_dml_does_not_bump_version(self, conn):
        version = conn.catalog.version
        conn.execute("INSERT INTO r VALUES (9, 9)")
        conn.execute("DELETE FROM r WHERE a = 9")
        assert conn.catalog.version == version

    def test_create_table_invalidates_cached_plan(self, conn):
        ps = conn.prepare(PROV_SQL)
        ps.execute((10,))
        misses = conn.plan_cache.misses
        conn.execute("CREATE TABLE unrelated (x int)")
        ps.execute((10,))   # version changed -> key miss -> replanned
        assert conn.plan_cache.misses > misses

    def test_analyze_invalidates_cached_plan(self, conn):
        """Regression: the key must fold in the statistics generation —
        a plan costed before ANALYZE may no longer be the plan the cost
        model would pick, so it must never be served afterwards."""
        sql = "SELECT a FROM r WHERE a = 1"
        conn.execute(sql)
        stale_key = conn._plan_key(sql, None)
        cached = conn.plan_cache.peek(stale_key)
        assert cached is not None
        misses = conn.plan_cache.misses
        conn.execute("ANALYZE r")
        conn.execute(sql)
        assert conn.plan_cache.misses > misses          # replanned
        fresh = conn.plan_cache.peek(conn._plan_key(sql, None))
        assert fresh is not None and fresh is not cached
        assert fresh.stats_version == conn.catalog.stats_version

    def test_create_index_invalidates_cached_plan(self, conn):
        """Regression: after CREATE INDEX the same SQL must re-lower —
        and actually switch from the stale SeqScan plan to an IndexScan."""
        from repro.engine.physical import IndexScan, SeqScan

        sql = "SELECT b FROM r WHERE a = 2"
        conn.execute(sql)
        stale = conn.plan_cache.peek(conn._plan_key(sql, None))
        assert any(isinstance(node, SeqScan)
                   for node in stale.physical.nodes())
        conn.execute("CREATE INDEX r_a ON r (a)")
        assert conn.plan_cache.peek(conn._plan_key(sql, None)) is None
        assert conn.execute(sql).rows == [(1,)]
        fresh = conn.plan_cache.peek(conn._plan_key(sql, None))
        assert any(isinstance(node, IndexScan)
                   for node in fresh.physical.nodes())

    def test_drop_index_invalidates_cached_plan(self, conn):
        from repro.engine.physical import IndexScan

        conn.execute("CREATE INDEX r_a ON r (a)")
        sql = "SELECT b FROM r WHERE a = 2"
        conn.execute(sql)
        cached = conn.plan_cache.peek(conn._plan_key(sql, None))
        assert any(isinstance(node, IndexScan)
                   for node in cached.physical.nodes())
        conn.execute("DROP INDEX r_a")
        assert conn.plan_cache.peek(conn._plan_key(sql, None)) is None
        assert conn.execute(sql).rows == [(1,)]   # replanned, no index

    def test_view_redefinition_changes_results(self, conn):
        conn.create_view("v", "SELECT a FROM r WHERE a >= 2")
        cur = conn.cursor()
        cur.execute("SELECT a FROM v ORDER BY a")
        assert cur.fetchall() == [(2,), (3,)]
        conn.execute("DROP VIEW v")
        conn.create_view("v", "SELECT a FROM r WHERE a = 1")
        cur.execute("SELECT a FROM v ORDER BY a")
        assert cur.fetchall() == [(1,)]


class TestKeyingAndLRU:
    def test_strategy_override_is_part_of_the_key(self, conn):
        sql = "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)"
        conn.prepare(sql, strategy="gen").execute()
        conn.prepare(sql, strategy="unn").execute()
        assert len(conn.plan_cache) == 2

    def test_default_strategy_is_part_of_the_key(self, conn):
        ps = conn.prepare(
            "SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)")
        ps.execute()
        misses = conn.plan_cache.misses
        conn.config.default_strategy = "gen"
        ps.execute()   # same text, different effective strategy
        assert conn.plan_cache.misses > misses

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        plans = {
            name: CachedPlan(plan=None, param_count=0, strategy=None,
                             catalog_version=0)
            for name in "abc"}
        cache.store("a", plans["a"])
        cache.store("b", plans["b"])
        assert cache.lookup("a") is plans["a"]   # refresh a
        cache.store("c", plans["c"])             # evicts b
        assert cache.lookup("b") is None
        assert cache.lookup("a") is plans["a"]
        assert cache.lookup("c") is plans["c"]

    def test_zero_capacity_disables_caching(self):
        connection = connect(plan_cache_size=0)
        cur = connection.cursor()
        cur.execute("CREATE TABLE t (x int)")
        cur.execute("INSERT INTO t VALUES (1)")
        cur.execute("SELECT x FROM t")
        cur.execute("SELECT x FROM t")
        assert len(connection.plan_cache) == 0
        assert connection.plan_cache.hits == 0

    def test_stats_shape(self, conn):
        stats = conn.plan_cache.stats()
        assert set(stats) == {"hits", "misses", "size", "capacity"}

    def test_ddl_and_dml_do_not_inflate_miss_counter(self):
        connection = connect()
        cur = connection.cursor()
        cur.execute("CREATE TABLE t (x int)")
        cur.executemany("INSERT INTO t VALUES (?)", [(1,), (2,), (3,)])
        assert connection.plan_cache.misses == 0
        cur.execute("SELECT x FROM t")      # first SELECT: exactly 1 miss
        assert connection.plan_cache.misses == 1
        assert connection.plan_cache.hits == 0
        cur.execute("SELECT x FROM t")
        assert connection.plan_cache.misses == 1
        assert connection.plan_cache.hits == 1

    def test_peek_does_not_count(self, conn):
        conn.prepare("SELECT a FROM r").execute()
        hits, misses = conn.plan_cache.hits, conn.plan_cache.misses
        assert conn.plan_cache.peek(("nope",)) is None
        assert (conn.plan_cache.hits, conn.plan_cache.misses) == \
            (hits, misses)


class TestStrategyRegistry:
    def test_builtins_registered(self):
        assert set(strategies.available()) >= {"gen", "left", "move", "unn"}
        assert strategies.strategy_names()[0] == "auto"

    def test_resolve_unknown_raises(self):
        with pytest.raises(RewriteError, match="unknown strategy"):
            strategies.resolve("turbo")

    def test_duplicate_registration_raises(self):
        with pytest.raises(RewriteError, match="already registered"):
            strategies.register("left", LeftStrategy())

    def test_auto_is_reserved(self):
        with pytest.raises(RewriteError, match="automatic mode"):
            strategies.register("auto", LeftStrategy())

    def test_unregister_unknown_raises(self):
        with pytest.raises(RewriteError, match="not registered"):
            strategies.unregister("turbo")

    def test_custom_strategy_pluggable_everywhere(self, conn):
        class EchoLeft(LeftStrategy):
            name = "echoleft"

        strategies.register("echoleft", EchoLeft())
        try:
            sql = "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)"
            via_left = sorted(conn.provenance(sql, strategy="left").rows)
            # programmatic API
            assert sorted(
                conn.provenance(sql, strategy="echoleft").rows) == via_left
            # SELECT PROVENANCE (name) syntax
            assert sorted(conn.sql(
                "SELECT PROVENANCE (echoleft) * FROM r "
                "WHERE a = ANY (SELECT c FROM s)").rows) == via_left
            # session default strategy
            session = connect(default_strategy="echoleft",
                              catalog=conn.catalog)
            assert sorted(session.sql(
                "SELECT PROVENANCE * FROM r "
                "WHERE a = ANY (SELECT c FROM s)").rows) == via_left
        finally:
            strategies.unregister("echoleft")

    def test_replace_registration(self):
        original = strategies.resolve("left")
        replacement = LeftStrategy()
        strategies.register("left", replacement, replace=True)
        try:
            assert strategies.resolve("left") is replacement
        finally:
            strategies.register("left", original, replace=True)

    def test_unknown_strategy_in_sql_raises(self, conn):
        with pytest.raises(RewriteError, match="unknown strategy"):
            conn.sql("SELECT PROVENANCE (turbo) a FROM r")


class TestSmokeBenchmark:
    def test_zero_repeats_rejected(self):
        from repro.bench.smoke import run_smoke
        with pytest.raises(ValueError, match="repeats"):
            run_smoke(repeats=0)

    def test_prepared_path_beats_legacy_and_hits_cache(self):
        from repro.bench.smoke import run_smoke
        result = run_smoke(repeats=5)
        assert result.cache_hits == 5
        # CI enforces the full 2x floor via `python -m repro.bench
        # --smoke`; here we only require a strict win to avoid timing
        # flakiness under parallel test load.
        assert result.speedup > 1.0
