"""TPC-H substrate: generator properties and the nine sublink templates."""

import pytest

from repro.tpch import (
    ALL_QUERIES, PAPER_SUBLINK_QUERIES, UNCORRELATED_QUERIES,
    TPCHGenerator, install_views, load_tpch, query_sql, query_strategies,
    scale_rows,
)

SCALE = 0.0002


@pytest.fixture(scope="module")
def db():
    database = load_tpch(scale=SCALE, seed=7)
    install_views(database)
    return database


class TestGenerator:
    def test_deterministic(self):
        first = load_tpch(scale=0.0001, seed=3)
        second = load_tpch(scale=0.0001, seed=3)
        for table in first.catalog.names():
            assert first.catalog.get(table).rows == \
                second.catalog.get(table).rows

    def test_seed_changes_data(self):
        first = load_tpch(scale=0.0001, seed=1)
        second = load_tpch(scale=0.0001, seed=2)
        assert first.catalog.get("supplier").rows != \
            second.catalog.get("supplier").rows

    def test_row_counts_scale_linearly(self):
        small = scale_rows(0.001)
        large = scale_rows(0.01)
        assert large["orders"] == 10 * small["orders"]
        assert small["supplier"] == 10
        assert small["part"] == 200

    def test_fixed_tables(self, db):
        assert len(db.catalog.get("region").rows) == 5
        assert len(db.catalog.get("nation").rows) == 25

    def test_partsupp_four_per_part(self, db):
        parts = len(db.catalog.get("part").rows)
        assert len(db.catalog.get("partsupp").rows) == 4 * parts

    def test_foreign_keys_valid(self, db):
        suppliers = {r[0] for r in db.catalog.get("supplier").rows}
        partsupp = db.catalog.get("partsupp").rows
        assert all(row[1] in suppliers for row in partsupp)
        orders = {r[0] for r in db.catalog.get("orders").rows}
        lineitems = db.catalog.get("lineitem").rows
        assert all(row[0] in orders for row in lineitems)

    def test_date_ordering_invariant(self, db):
        # receiptdate > shipdate for every line item (Q4/Q21 rely on this
        # kind of arithmetic being coherent)
        for row in db.catalog.get("lineitem").rows:
            assert row[12] > row[10]  # receipt > ship

    def test_value_domains(self, db):
        for row in db.catalog.get("part").rows:
            assert row[3].startswith("Brand#")
            assert 1 <= row[5] <= 50
        phones = [row[4] for row in db.catalog.get("customer").rows]
        assert all(phone[2] == "-" for phone in phones)

    def test_complaints_comments_exist_at_scale(self):
        generator = TPCHGenerator(scale=0.01, seed=0)
        comments = [s[6] for s in generator.suppliers()]
        assert any("Customer" in c and "Complaints" in c
                   for c in comments)


class TestQueryTemplates:
    def test_paper_query_set(self):
        assert PAPER_SUBLINK_QUERIES == (2, 4, 11, 15, 16, 17, 20, 21, 22)
        assert UNCORRELATED_QUERIES == (11, 15, 16)

    def test_strategies_per_query(self):
        assert query_strategies(11) == ("gen", "left", "move")
        assert query_strategies(2) == ("gen",)

    def test_templates_are_seeded(self):
        assert query_sql(4, seed=1) == query_sql(4, seed=1)
        assert query_sql(4, seed=1) != query_sql(4, seed=2)

    def test_unknown_template_raises(self):
        with pytest.raises(KeyError):
            query_sql(99)

    @pytest.mark.parametrize("number", ALL_QUERIES)
    def test_all_templates_execute(self, db, number):
        relation = db.sql(query_sql(number, seed=5))
        assert relation is not None

    @pytest.mark.parametrize("number", UNCORRELATED_QUERIES)
    @pytest.mark.parametrize("strategy", ("gen", "left", "move"))
    def test_uncorrelated_queries_all_strategies(self, db, number,
                                                 strategy):
        sql = query_sql(number, seed=5)
        plain = {tuple(row) for row in db.sql(sql).rows}
        prov = db.provenance(sql, strategy=strategy)
        width = len(db.sql(sql).schema)
        assert {row[:width] for row in prov.rows} == plain

    @pytest.mark.parametrize("number", [4, 17, 22])
    def test_correlated_queries_gen(self, db, number):
        sql = query_sql(number, seed=5)
        plain = {tuple(row) for row in db.sql(sql).rows}
        prov = db.provenance(sql, strategy="gen")
        width = len(db.sql(sql).schema)
        assert {row[:width] for row in prov.rows} == plain

    def test_q18_under_auto(self, db):
        # Q18's ORDER BY runs under provenance once LIMIT is absent
        sql = query_sql(18, seed=5)
        plain = {tuple(row) for row in db.sql(sql).rows}
        prov = db.provenance(sql, strategy="auto")
        width = len(db.sql(sql).schema)
        assert {row[:width] for row in prov.rows} == plain

    def test_q15_view_provenance_reaches_lineitem(self, db):
        sql = query_sql(15, seed=5)
        prov = db.provenance(sql, strategy="left")
        names = list(prov.schema.names)
        assert any(name.startswith("prov_lineitem") for name in names)
        assert any(name.startswith("prov_supplier") for name in names)

    def test_left_strategy_rejected_for_correlated(self, db):
        from repro import RewriteError
        with pytest.raises(RewriteError):
            db.provenance(query_sql(4, seed=5), strategy="left")


class TestProvenanceVolume:
    def test_provenance_row_counts_exceed_results(self, db):
        """The paper notes Q11 at 1GB yields ~38M provenance tuples —
        provenance output is much larger than the query output."""
        sql = query_sql(11, seed=5)
        plain = db.sql(sql)
        prov = db.provenance(sql, strategy="left")
        if plain.rows:
            assert len(prov.rows) >= len(plain.rows)
