"""Expression compiler: semantics identical to the interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.engine import Executor
from repro.expressions.ast import (
    Arith, BoolOp, Case, Cast, Col, Comparison, Const, FuncCall, IsNull,
    Like, Neg, Not, NullSafeEq,
)
from repro.expressions.compiler import compile_expr
from repro.expressions.evaluator import EvalContext, Frame, evaluate
from repro.errors import ExpressionError


def ctx(**values):
    names = list(values)
    frame = Frame(Frame.index_for(names), tuple(values[n] for n in names))
    return EvalContext((frame,), None)


def both(expr, **values):
    context = ctx(**values)
    interpreted = evaluate(expr, context)
    compiled = compile_expr(expr)(context)
    assert compiled == interpreted or (
        compiled is None and interpreted is None)
    return compiled


class TestCompiledNodes:
    def test_constants_and_columns(self):
        assert both(Const(5)) == 5
        assert both(Col("a"), a=7) == 7

    def test_outer_level_column(self):
        outer = Frame(Frame.index_for(["x"]), (10,))
        inner = Frame(Frame.index_for(["y"]), (20,))
        context = EvalContext((outer, inner), None)
        assert compile_expr(Col("x", 1))(context) == 10

    def test_comparison_and_3vl(self):
        assert both(Comparison("<", Col("a"), Const(3)), a=None) is None
        assert both(Comparison("=", Col("a"), Const(3)), a=3) is True

    def test_boolean_short_circuit(self):
        expr = BoolOp("and", (Const(False),
                              Comparison("=", Const(1), Const("boom"))))
        assert compile_expr(expr)(ctx()) is False
        expr = BoolOp("or", (Const(True),
                             Comparison("=", Const(1), Const("boom"))))
        assert compile_expr(expr)(ctx()) is True

    def test_boolean_unknowns(self):
        assert both(BoolOp("and", (Const(True), Const(None)))) is None
        assert both(BoolOp("or", (Const(False), Const(None)))) is None

    def test_not_isnull_neg(self):
        assert both(Not(Const(None))) is None
        assert both(IsNull(Const(None))) is True
        assert both(Neg(Const(4))) == -4

    def test_arith_and_nullsafe(self):
        assert both(Arith("+", Col("a"), Const(1)), a=2) == 3
        assert both(NullSafeEq(Const(None), Const(None))) is True

    def test_func_like_cast_case(self):
        assert both(FuncCall("abs", (Const(-2),))) == 2
        assert both(Like(Const("abc"), Const("a%"))) is True
        assert both(Cast(Const("3"), "int")) == 3
        case = Case(((Comparison(">", Col("a"), Const(0)), Const("pos")),),
                    Const("neg"))
        assert both(case, a=1) == "pos"
        assert both(case, a=-1) == "neg"

    def test_unknown_function_raises_at_compile_time(self):
        with pytest.raises(ExpressionError):
            compile_expr(FuncCall("nope", ()))


# randomized agreement over generated arithmetic/boolean trees -------------

values = st.one_of(st.none(), st.integers(-5, 5))


def exprs(depth=2):
    leaf = st.one_of(
        st.builds(Const, values),
        st.just(Col("a")), st.just(Col("b")))
    if depth == 0:
        return leaf
    sub = exprs(depth - 1)
    return st.one_of(
        leaf,
        st.builds(lambda l, r: Arith("+", l, r), sub, sub),
        st.builds(lambda l, r: Comparison("<", l, r), sub, sub),
        st.builds(lambda l, r: BoolOp(
            "and", (Comparison("=", l, r),
                    Comparison("<>", l, r))), sub, sub),
        st.builds(lambda e: IsNull(e), sub),
        st.builds(lambda e: Neg(e), sub),
    )


@settings(max_examples=200, deadline=None)
@given(exprs(3), values, values)
def test_compiled_matches_interpreter(expr, a, b):
    context = ctx(a=a, b=b)
    try:
        interpreted = evaluate(expr, context)
        interpreted_error = None
    except ExpressionError as exc:
        interpreted, interpreted_error = None, type(exc)
    try:
        compiled = compile_expr(expr)(context)
        compiled_error = None
    except ExpressionError as exc:
        compiled, compiled_error = None, type(exc)
    assert compiled_error == interpreted_error
    if interpreted_error is None:
        assert compiled == interpreted or (
            compiled is None and interpreted is None)


class TestExecutorModes:
    """Compiled and interpreted execution produce identical relations."""

    @pytest.mark.parametrize("sql", [
        "SELECT a + b AS s FROM r WHERE a >= 2",
        "SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)",
        "SELECT b, sum(a) AS t FROM r GROUP BY b",
    ])
    def test_modes_agree(self, figure3_db, sql):
        plan = figure3_db.plan(sql.replace("PROVENANCE ", ""),
                               strategy="gen" if "PROVENANCE" in sql
                               else None)
        fast = Executor(figure3_db.catalog,
                        compile_expressions=True).execute(plan)
        slow = Executor(figure3_db.catalog,
                        compile_expressions=False).execute(plan)
        assert fast.bag_equal(slow)
