"""Property-based tests of the on-disk codec (hypothesis).

1. Round trips: randomized schemas and values — every SQLType, NULLs,
   unicode text, huge integers, non-finite floats, empty tables — must
   survive snapshot-write → load **byte-exactly** (floats compared by
   bit pattern, so NaN and signed zero count), through both the columnar
   snapshot layout and the row-wise WAL layout.
2. Corruption: any flipped payload byte in a snapshot raises a clean
   :class:`~repro.errors.StorageError` — never garbage data.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import Catalog
from repro.datatypes import SQLType
from repro.errors import StorageError
from repro.relation import Relation
from repro.schema import Attribute, Schema
from repro.storage.codec import (
    decode_columnar_rows, decode_rows, decode_value, decode_varint,
    encode_columnar_rows, encode_rows, encode_value, encode_varint,
)
from repro.storage.snapshot import load_snapshot, write_snapshot

# -- value strategies (one per SQLType) --------------------------------------

_TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40)
_INTS = st.integers(min_value=-(10 ** 30), max_value=10 ** 30)
_FLOATS = st.floats(allow_nan=True, allow_infinity=True)
_DATES = st.dates().map(lambda d: d.isoformat())

_BY_TYPE = {
    SQLType.INTEGER: _INTS,
    SQLType.FLOAT: _FLOATS,
    SQLType.TEXT: _TEXT,
    SQLType.BOOLEAN: st.booleans(),
    SQLType.DATE: _DATES,
    SQLType.ANY: st.one_of(_INTS, _FLOATS, _TEXT, st.booleans()),
}


@st.composite
def tables(draw):
    """A random (schema, rows) pair over every SQLType, with NULLs."""
    n_cols = draw(st.integers(min_value=1, max_value=5))
    types = draw(st.lists(st.sampled_from(list(_BY_TYPE)),
                          min_size=n_cols, max_size=n_cols))
    schema = Schema(Attribute(f"c{i}", t) for i, t in enumerate(types))
    row = st.tuples(*(st.one_of(st.none(), _BY_TYPE[t]) for t in types))
    rows = draw(st.lists(row, max_size=25))
    return schema, rows


def _bits(value):
    """Comparison key that is exact for floats (NaN, -0.0) and keeps
    int/float/bool values of equal magnitude distinct."""
    if isinstance(value, float):
        return ("f", struct.pack("<d", value))
    return (type(value).__name__, value)


def _same_rows(left, right):
    assert len(left) == len(right)
    for lrow, rrow in zip(left, right):
        assert tuple(map(_bits, lrow)) == tuple(map(_bits, rrow))


# -- round trips --------------------------------------------------------------

class TestRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(table=tables())
    def test_snapshot_round_trip(self, tmp_path_factory, table):
        schema, rows = table
        path = tmp_path_factory.mktemp("codec") / "snapshot.bin"
        catalog = Catalog()
        catalog.install_table("t", Relation.from_trusted_rows(
            schema, list(rows)))
        write_snapshot(path, catalog, last_lsn=7)
        loaded, last_lsn = load_snapshot(path)
        assert last_lsn == 7
        assert loaded.names() == ["t"]
        reloaded = loaded.get("t")
        assert [(a.name, a.type) for a in reloaded.schema] == \
            [(a.name, a.type) for a in schema]
        _same_rows(rows, reloaded.rows)

    @settings(max_examples=60, deadline=None)
    @given(tables())
    def test_columnar_block_round_trip(self, table):
        schema, rows = table
        out = bytearray()
        encode_columnar_rows(out, len(schema), rows)
        decoded, pos = decode_columnar_rows(bytes(out), 0, len(schema))
        assert pos == len(out)
        _same_rows(rows, decoded)

    @settings(max_examples=60, deadline=None)
    @given(tables())
    def test_row_wise_block_round_trip(self, table):
        _, rows = table
        out = bytearray()
        encode_rows(out, rows)
        decoded, pos = decode_rows(bytes(out), 0)
        assert pos == len(out)
        _same_rows(rows, decoded)

    @settings(max_examples=100, deadline=None)
    @given(st.one_of(st.none(), st.booleans(), _INTS, _FLOATS, _TEXT))
    def test_value_round_trip(self, value):
        out = bytearray()
        encode_value(out, value)
        decoded, pos = decode_value(bytes(out), 0)
        assert pos == len(out)
        assert _bits(decoded) == _bits(value)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 64))
    def test_varint_round_trip(self, value):
        out = bytearray()
        encode_varint(out, value)
        decoded, pos = decode_varint(bytes(out), 0)
        assert (decoded, pos) == (value, len(out))

    def test_empty_table_round_trip(self, tmp_path):
        catalog = Catalog()
        catalog.install_table("empty", Relation.from_trusted_rows(
            Schema.of("a", "b"), []))
        write_snapshot(tmp_path / "s.bin", catalog)
        loaded, _ = load_snapshot(tmp_path / "s.bin")
        assert loaded.get("empty").rows == []
        assert list(loaded.get("empty").schema.names) == ["a", "b"]


# -- corruption ---------------------------------------------------------------

def _snapshot_bytes(tmp_path) -> tuple:
    catalog = Catalog()
    catalog.install_table("t", Relation.from_trusted_rows(
        Schema.of("a", "b"),
        [(i, f"value-{i}") for i in range(50)]))
    catalog.create_index("t_a", "t", "a", unique=True)
    catalog.analyze("t")
    path = tmp_path / "snapshot.bin"
    write_snapshot(path, catalog, last_lsn=3)
    return path, bytearray(path.read_bytes())


class TestCorruption:
    def test_every_flipped_byte_raises_storage_error(self, tmp_path):
        """Flip each byte of a real snapshot in turn: the loader must
        raise StorageError every time (CRC framing catches payload and
        header damage alike) — corrupted data never loads as if valid."""
        path, image = _snapshot_bytes(tmp_path)
        for position in range(8, len(image)):       # past the magic
            mutated = bytearray(image)
            mutated[position] ^= 0x5A
            path.write_bytes(mutated)
            with pytest.raises(StorageError):
                load_snapshot(path)

    def test_flipped_magic_raises(self, tmp_path):
        path, image = _snapshot_bytes(tmp_path)
        image[0] ^= 0xFF
        path.write_bytes(image)
        with pytest.raises(StorageError, match="magic"):
            load_snapshot(path)

    def test_truncated_snapshot_raises(self, tmp_path):
        path, image = _snapshot_bytes(tmp_path)
        for cut in (4, len(image) // 2, len(image) - 1):
            path.write_bytes(image[:cut])
            with pytest.raises(StorageError):
                load_snapshot(path)

    def test_unsupported_python_type_refused(self):
        with pytest.raises(StorageError, match="cannot encode"):
            encode_value(bytearray(), object())

    def test_crafted_view_pickle_never_resolves_foreign_code(self):
        """View records go through a restricted unpickler: a crafted
        database directory must not be able to make ``connect(path=)``
        resolve (let alone call) anything outside the SQL AST modules."""
        import pickle

        from repro.storage.codec import loads_ast

        class Exploit:
            def __reduce__(self):
                import os
                return (os.system, ("echo pwned",))

        payload = pickle.dumps(Exploit())
        with pytest.raises(StorageError, match="not a SQL AST class"):
            loads_ast(payload)
        # the legitimate round trip still works
        from repro import connect
        from repro.sql.ast import SelectStmt
        from repro.sql.parser import parse_statement
        from repro.storage.codec import dumps_ast
        query = parse_statement(
            "SELECT a FROM r WHERE a = ANY (SELECT c FROM s)")
        restored = loads_ast(dumps_ast(query))
        assert isinstance(restored, SelectStmt)
        conn = connect()
        conn.execute("CREATE TABLE r (a int)")
        conn.execute("CREATE TABLE s (c int)")
        conn.execute("INSERT INTO r VALUES (1), (2), (3)")
        conn.execute("INSERT INTO s VALUES (2), (3), (9)")
        conn.catalog.create_view("v", restored)
        assert sorted(conn.execute("SELECT * FROM v").rows) == \
            [(2,), (3,)]
        conn.close()
