"""CSV import/export and the interactive shell."""

import io

import pytest

from repro import Database
from repro.cli import Shell
from repro.errors import ReproError
from repro.io import dump_csv, load_csv


class TestCSV:
    def test_load_with_type_inference(self):
        db = Database()
        source = io.StringIO("a,b,name\n1,2.5,x\n2,,y\n")
        inserted = load_csv(db, "t", source)
        assert inserted == 2
        assert db.sql("SELECT a, b, name FROM t ORDER BY a").rows == [
            (1, 2.5, "x"), (2, None, "y")]

    def test_load_into_existing_table(self):
        db = Database()
        db.execute("CREATE TABLE t (a int, name text)")
        load_csv(db, "t", io.StringIO("a,name\n7,z\n"))
        assert db.sql("SELECT * FROM t").rows == [(7, "z")]

    def test_load_without_header(self):
        db = Database()
        load_csv(db, "t", io.StringIO("1,x\n2,y\n"), header=False)
        assert db.sql("SELECT col1 FROM t ORDER BY col1").rows == [
            (1,), (2,)]

    def test_column_mismatch_raises(self):
        db = Database()
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(ReproError, match="columns"):
            load_csv(db, "t", io.StringIO("a,b\n1,2\n"))

    def test_missing_table_without_create_raises(self):
        db = Database()
        with pytest.raises(ReproError, match="does not exist"):
            load_csv(db, "t", io.StringIO("a\n1\n"), create=False)

    def test_roundtrip_with_nulls(self, figure3_db):
        text = dump_csv(figure3_db.sql(
            "SELECT a, (SELECT c FROM s WHERE c > 99) AS v FROM r"))
        db2 = Database()
        load_csv(db2, "t", io.StringIO(text))
        assert db2.sql("SELECT v FROM t").rows == [
            (None,), (None,), (None,)]

    def test_dump_provenance_result(self, figure3_db):
        text = dump_csv(figure3_db.provenance(
            "SELECT a FROM r WHERE a = 1"))
        assert text.splitlines()[0] == "a,prov_r_a,prov_r_b"
        assert text.splitlines()[1] == "1,1,1"

    def test_file_roundtrip(self, tmp_path, figure3_db):
        path = tmp_path / "out.csv"
        dump_csv(figure3_db.sql("SELECT a FROM r"), path)
        db2 = Database()
        assert load_csv(db2, "t", path) == 3


class TestShell:
    def run(self, shell, *lines):
        out = io.StringIO()
        for line in lines:
            assert shell.run_line(line, out)
        return out.getvalue()

    def test_sql_and_listing(self):
        shell = Shell()
        text = self.run(
            shell,
            "CREATE TABLE t (x int)",
            "INSERT INTO t VALUES (1), (2)",
            "SELECT x FROM t ORDER BY x",
            "\\d")
        assert "ok" in text
        assert "(2 rows)" in text
        assert "table t (2 rows)" in text

    def test_describe(self):
        shell = Shell()
        self.run(shell, "CREATE TABLE t (x int, s text)")
        text = self.run(shell, "\\d t")
        assert "x" in text and "integer" in text

    def test_strategy_applies_to_provenance(self, figure3_db):
        shell = Shell(figure3_db)
        self.run(shell, "\\strategy unn")
        text = self.run(
            shell,
            "SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s)")
        assert "prov_s_c" in text

    def test_bad_strategy_reports_error(self, figure3_db):
        shell = Shell(figure3_db)
        self.run(shell, "\\strategy turbo")
        text = self.run(
            shell, "SELECT PROVENANCE a FROM r")
        assert "error:" in text

    def test_timing_toggle(self):
        shell = Shell()
        text = self.run(shell, "\\timing")
        assert "timing: on" in text

    def test_explain(self, figure3_db):
        shell = Shell(figure3_db)
        text = self.run(shell, "\\explain SELECT a FROM r")
        assert "Scan r" in text

    def test_sql_error_reported_not_raised(self):
        shell = Shell()
        text = self.run(shell, "SELECT nope FROM nothing")
        assert "error:" in text

    def test_quit(self):
        shell = Shell()
        out = io.StringIO()
        assert shell.run_line("\\q", out) is False

    def test_unknown_meta(self):
        shell = Shell()
        text = self.run(shell, "\\frobnicate")
        assert "unknown command" in text

    def test_tpch_loader(self):
        shell = Shell()
        text = self.run(shell, "\\tpch 0.00004")
        assert "loaded TPC-H" in text
        text = self.run(shell, "SELECT count(*) AS n FROM region")
        assert "(1 rows)" in text

    def test_script_file(self, tmp_path):
        script = tmp_path / "setup.sql"
        script.write_text("CREATE TABLE t (x int); "
                          "INSERT INTO t VALUES (9);")
        shell = Shell()
        self.run(shell, f"\\i {script}")
        assert "9" in self.run(shell, "SELECT x FROM t")
