"""Tests for :mod:`repro.analysis` — the project static-analysis framework.

Each rule family gets a known-bad and a known-good fixture package
written to ``tmp_path`` and analyzed through the public
:func:`repro.analysis.analyze_tree` entry point, so the tests exercise
the loader, the call graph and the rules exactly as the CLI does.  The
final class is the self-check: the live ``repro`` tree must produce no
findings beyond the committed ``analysis_baseline.json``.
"""

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis import AnalysisConfig, Baseline, analyze_tree
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.baseline import diff_violations
from repro.analysis.rules import Violation, available_rules


def write_fixture(tmp_path, files, name="fix"):
    """Materialize *files* (relpath -> source) as package *name*."""
    root = tmp_path / name
    root.mkdir(exist_ok=True)
    (root / "__init__.py").touch()
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.parent != root:
            init = path.parent / "__init__.py"
            if not init.exists():
                init.touch()
        path.write_text(dedent(text), encoding="utf-8")
    return root


def findings(root, rules=None, config=None):
    _, violations = analyze_tree(root, config=config, rules=rules)
    return violations


def rule_ids(violations):
    return sorted({v.rule for v in violations})


# -- registry and loader ------------------------------------------------------

class TestRegistry:
    def test_all_families_registered(self):
        assert available_rules() == (
            "exhaustiveness", "hygiene", "lock-discipline", "purity",
            "typing")

    def test_unknown_rule_family_is_an_interface_error(self, tmp_path):
        from repro.errors import InterfaceError
        root = write_fixture(tmp_path, {"mod.py": "X = 1\n"})
        with pytest.raises(InterfaceError):
            analyze_tree(root, rules=["no-such-family"])

    def test_loader_maps_modules_and_functions(self, tmp_path):
        root = write_fixture(tmp_path, {
            "engine/core.py": """
                def outer() -> None:
                    def inner():
                        pass
            """,
        })
        project, _ = analyze_tree(root)
        assert "fix.engine.core" in project.modules
        assert "fix.engine.core.outer" in project.functions
        # nested closures are tracked with their definer as parent
        inner = project.functions["fix.engine.core.outer.inner"]
        assert inner.parent == "fix.engine.core.outer"


# -- pragma suppression -------------------------------------------------------

class TestPragmas:
    def _bare_except(self, pragma_lines):
        return dedent("""
            def teardown() -> None:
                try:
                    pass
                {}except:
                    pass
        """).format(pragma_lines)

    def test_inline_pragma_suppresses(self, tmp_path):
        root = write_fixture(tmp_path, {"mod.py": """
            def teardown() -> None:
                try:
                    pass
                except:  # repro: allow(hygiene-bare-except)
                    pass
        """})
        assert findings(root, rules=["hygiene"]) == []

    def test_comment_block_above_def_suppresses(self, tmp_path):
        root = write_fixture(tmp_path, {"mod.py": """
            # The teardown path intentionally drops everything; see
            # docs/invariants.md for the triage note.
            # repro: allow(hygiene-bare-except)
            def teardown() -> None:
                try:
                    pass
                except:
                    pass
        """})
        assert findings(root, rules=["hygiene"]) == []

    def test_family_pragma_covers_specific_ids(self, tmp_path):
        root = write_fixture(tmp_path, {"mod.py": """
            # repro: allow(hygiene)
            def teardown() -> None:
                try:
                    pass
                except:
                    pass
        """})
        assert findings(root, rules=["hygiene"]) == []

    def test_unrelated_pragma_does_not_suppress(self, tmp_path):
        root = write_fixture(tmp_path, {"mod.py": """
            # repro: allow(lock-discipline)
            def teardown() -> None:
                try:
                    pass
                except:
                    pass
        """})
        assert rule_ids(findings(root, rules=["hygiene"])) == \
            ["hygiene-bare-except"]


# -- lock discipline ----------------------------------------------------------

_CATALOG = """
    class Catalog:
        def __init__(self) -> None:
            self.version = 0

        def bump(self) -> None:
            self.version = self.version + 1
"""


class TestLockDiscipline:
    def test_unprotected_shared_mutation_is_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {
            "catalog.py": _CATALOG,
            "api.py": """
                def rename(engine) -> None:
                    engine.catalog.bump()
            """,
        })
        out = findings(root, rules=["lock-discipline"])
        assert rule_ids(out) == ["lock-discipline"]
        assert any("fix.api.rename" == v.symbol for v in out)

    def test_write_locked_mutation_is_clean(self, tmp_path):
        root = write_fixture(tmp_path, {
            "catalog.py": _CATALOG,
            "api.py": """
                def rename(engine) -> None:
                    with engine.lock.write():
                        engine.catalog.bump()
            """,
        })
        assert findings(root, rules=["lock-discipline"]) == []

    def test_caller_side_lock_protects_helper(self, tmp_path):
        # the mutating helper is only reachable through the locked
        # entry point, so the reachability engine must clear it
        root = write_fixture(tmp_path, {
            "catalog.py": _CATALOG,
            "api.py": """
                def entry(engine) -> None:
                    with engine.lock.write():
                        _mutate(engine)

                def _mutate(engine) -> None:
                    engine.catalog.bump()
            """,
        })
        assert findings(root, rules=["lock-discipline"]) == []

    def test_fork_side_lock_is_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"worker.py": """
            import threading

            _lock = threading.Lock()

            def _worker_main(conn) -> None:
                _helper()

            def _helper() -> None:
                with _lock:
                    pass
        """})
        out = findings(root, rules=["lock-discipline"])
        assert rule_ids(out) == ["lock-fork"]
        assert any("fix.worker._helper" == v.symbol for v in out)

    def test_fork_side_fsync_is_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"worker.py": """
            import os

            def _worker_main(conn) -> None:
                os.fsync(3)
        """})
        out = findings(root, rules=["lock-discipline"])
        assert [v.rule for v in out] == ["lock-fork"]
        assert "fsync" in out[0].message

    def test_commit_section_without_table_locks_is_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"api.py": """
            def commit(engine, txn) -> None:
                publish_commit(txn, engine.catalog)

            def publish_commit(txn, live) -> None:
                pass
        """})
        out = findings(root, rules=["lock-discipline"])
        assert rule_ids(out) == ["lock-tables"]
        assert any(v.symbol == "fix.api.publish_commit" for v in out)

    def test_commit_section_under_table_locks_is_clean(self, tmp_path):
        root = write_fixture(tmp_path, {"api.py": """
            def commit(engine, txn) -> None:
                with engine.table_locks.acquire(["t:a"]):
                    validate_commit(txn, engine.catalog)
                    publish_commit(txn, engine.catalog)

            def validate_commit(txn, live) -> None:
                pass

            def publish_commit(txn, live) -> None:
                pass
        """})
        assert findings(root, rules=["lock-discipline"]) == []

    def test_flusher_touching_catalog_is_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"store.py": """
            def _flush_loop(self) -> None:
                _flush_batch(self)

            def _flush_batch(self) -> None:
                self.engine.catalog.drop("t")
        """})
        out = findings(root, rules=["lock-discipline"])
        assert rule_ids(out) == ["lock-flusher"]
        assert any(v.symbol == "fix.store._flush_batch" for v in out)

    def test_flusher_taking_engine_lock_is_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"store.py": """
            def _flush_loop(self) -> None:
                self.engine.lock.acquire_write()
        """})
        out = findings(root, rules=["lock-discipline"])
        assert rule_ids(out) == ["lock-flusher"]
        assert "engine lock" in out[0].message

    def test_flusher_owning_the_wal_tail_is_clean(self, tmp_path):
        root = write_fixture(tmp_path, {"store.py": """
            import os

            def _flush_loop(self) -> None:
                self._wal.write(b"batch")
                os.fsync(self._wal.fileno())
        """})
        assert findings(root, rules=["lock-discipline"]) == []


# -- hygiene ------------------------------------------------------------------

class TestHygiene:
    def test_bare_except_flagged_everywhere(self, tmp_path):
        root = write_fixture(tmp_path, {"anywhere.py": """
            def f() -> None:
                try:
                    pass
                except:
                    pass
        """})
        assert rule_ids(findings(root, rules=["hygiene"])) == \
            ["hygiene-bare-except"]

    def test_broad_except_in_critical_module_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"storage.py": """
            def commit() -> None:
                try:
                    pass
                except Exception:
                    pass
        """})
        assert rule_ids(findings(root, rules=["hygiene"])) == \
            ["hygiene-broad-except"]

    def test_broad_except_that_reraises_is_clean(self, tmp_path):
        root = write_fixture(tmp_path, {"storage.py": """
            def commit() -> None:
                try:
                    pass
                except Exception:
                    raise
        """})
        assert findings(root, rules=["hygiene"]) == []

    def test_broad_except_outside_critical_modules_is_clean(
            self, tmp_path):
        root = write_fixture(tmp_path, {"sql_parser.py": """
            def parse() -> None:
                try:
                    pass
                except Exception:
                    pass
        """})
        assert findings(root, rules=["hygiene"]) == []

    def test_builtin_raise_in_core_module_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"engine/exec.py": """
            def run() -> None:
                raise ValueError("late")
        """})
        out = findings(root, rules=["hygiene"])
        assert rule_ids(out) == ["hygiene-raise"]
        assert "ValueError" in out[0].message

    def test_library_error_raise_is_clean(self, tmp_path):
        root = write_fixture(tmp_path, {
            "errors.py": """
                class ReproError(Exception):
                    pass

                class StoreError(ReproError):
                    pass
            """,
            "engine/exec.py": """
                from ..errors import StoreError

                def run() -> None:
                    raise StoreError("typed")
            """,
        })
        assert findings(root, rules=["hygiene"]) == []

    def test_pickle_outside_restricted_unpickler_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"server/rpc.py": """
            import pickle

            def recv(blob) -> object:
                return pickle.loads(blob)
        """})
        assert rule_ids(findings(root, rules=["hygiene"])) == \
            ["hygiene-pickle"]

    def test_pickle_in_allowed_module_is_clean(self, tmp_path):
        root = write_fixture(tmp_path, {"storage/codec.py": """
            import pickle

            def decode(blob) -> object:
                return pickle.loads(blob)
        """})
        assert findings(root, rules=["hygiene"]) == []


# -- exhaustiveness -----------------------------------------------------------

class TestExhaustivenessWal:
    def test_missing_replay_branch_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"wal.py": """
            _OP_INSERT = 1
            _OP_DELETE = 2

            def encode_op(op) -> bytes:
                return bytes([_OP_INSERT, _OP_DELETE])

            def apply_op(tag) -> None:
                if tag == _OP_INSERT:
                    pass
        """})
        out = findings(root, rules=["exhaustiveness"])
        assert [v.rule for v in out] == ["exhaustiveness-wal"]
        assert "_OP_DELETE" in out[0].symbol
        assert "decode/replay" in out[0].message

    def test_fully_wired_ops_are_clean(self, tmp_path):
        root = write_fixture(tmp_path, {"wal.py": """
            _OP_INSERT = 1
            _OP_DELETE = 2

            def encode_op(op) -> bytes:
                return bytes([_OP_INSERT, _OP_DELETE])

            def replay_op(tag) -> None:
                if tag in (_OP_INSERT, _OP_DELETE):
                    pass
        """})
        assert findings(root, rules=["exhaustiveness"]) == []


class TestExhaustivenessWire:
    def test_message_without_encode_or_parser_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"protocol.py": """
            from dataclasses import dataclass

            @dataclass
            class Query:
                sql: str

                def encode(self) -> bytes:
                    return self.sql.encode()

            @dataclass
            class Orphan:
                tag: int

            _FRONTEND_PARSERS = {b"Q": Query}
        """})
        out = findings(root, rules=["exhaustiveness"])
        assert all(v.rule == "exhaustiveness-wire" for v in out)
        symbols = {v.symbol for v in out}
        assert symbols == {"fix.protocol.Orphan"}
        messages = " ".join(v.message for v in out)
        assert "no encode()" in messages
        assert "parse path" in messages


class TestExhaustivenessPhysical:
    def test_orphan_operator_flagged_twice(self, tmp_path):
        root = write_fixture(tmp_path, {"physical.py": """
            class PhysicalOperator:
                def label(self):
                    return type(self).__name__

            class Orphan(PhysicalOperator):
                pass
        """})
        out = findings(root, rules=["exhaustiveness"])
        assert [v.rule for v in out] == ["exhaustiveness-physical"] * 2
        messages = " ".join(v.message for v in out)
        assert "never constructed" in messages
        assert "no label()" in messages

    _LOWERED = """
        class PhysicalOperator:
            def label(self):
                return type(self).__name__

        class SeqScan(PhysicalOperator):
            def label(self):
                return "SeqScan"

        def lower() -> SeqScan:
            return SeqScan()
    """

    def test_lowered_labelled_operator_is_clean(self, tmp_path):
        root = write_fixture(tmp_path, {"physical.py": self._LOWERED})
        assert findings(root, rules=["exhaustiveness"]) == []

    def test_row_operator_missing_from_fallback_registry(self, tmp_path):
        # the registry's presence arms the vector-coverage check
        root = write_fixture(tmp_path, {
            "physical.py": self._LOWERED,
            "vectorized.py": """
                ROW_ONLY_FALLBACK = {"SomethingElse": "reason"}

                def _vectorize(op) -> None:
                    pass
            """,
        })
        out = findings(root, rules=["exhaustiveness"])
        assert [v.rule for v in out] == ["exhaustiveness-physical"]
        assert "ROW_ONLY_FALLBACK" in out[0].message

    def test_registry_listing_satisfies_coverage(self, tmp_path):
        root = write_fixture(tmp_path, {
            "physical.py": self._LOWERED,
            "vectorized.py": """
                ROW_ONLY_FALLBACK = {"SeqScan": "streams rows"}

                def _vectorize(op) -> None:
                    pass
            """,
        })
        assert findings(root, rules=["exhaustiveness"]) == []


# -- purity -------------------------------------------------------------------

class TestPurity:
    def test_kernel_os_call_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"compiler.py": """
            def compile_vector_eq(column):
                def kernel(values):
                    print(values)
                    return values
                return kernel
        """})
        out = findings(root, rules=["purity"])
        assert [v.rule for v in out] == ["purity-kernel"]
        assert "'print'" in out[0].message

    def test_pure_kernel_is_clean(self, tmp_path):
        root = write_fixture(tmp_path, {"compiler.py": """
            def compile_vector_eq(column):
                def kernel(values):
                    return [v == column for v in values]
                return kernel
        """})
        assert findings(root, rules=["purity"]) == []

    def test_worker_global_write_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"worker.py": """
            _COUNTER = 0

            def _worker_main(conn) -> None:
                global _COUNTER
                _COUNTER = _COUNTER + 1
        """})
        out = findings(root, rules=["purity"])
        assert [v.rule for v in out] == ["purity-worker"]
        assert "_COUNTER" in out[0].message


# -- typing gate --------------------------------------------------------------

class TestTypingGate:
    def test_unannotated_def_in_gated_module_flagged(self, tmp_path):
        root = write_fixture(tmp_path, {"engine/exec.py": """
            def run(plan, params):
                return plan
        """})
        out = findings(root, rules=["typing"])
        assert [v.rule for v in out] == ["typing-annotations"]
        assert "plan, params" in out[0].message
        assert "return type" in out[0].message

    def test_annotated_def_is_clean(self, tmp_path):
        root = write_fixture(tmp_path, {"engine/exec.py": """
            def run(plan: object, params: tuple) -> object:
                return plan
        """})
        assert findings(root, rules=["typing"]) == []

    def test_nested_closures_are_exempt(self, tmp_path):
        root = write_fixture(tmp_path, {"engine/exec.py": """
            def run(plan: object) -> object:
                def step(row):
                    return row
                return step
        """})
        assert findings(root, rules=["typing"]) == []

    def test_ungated_modules_are_exempt(self, tmp_path):
        root = write_fixture(tmp_path, {"sql_parser.py": """
            def parse(text):
                return text
        """})
        assert findings(root, rules=["typing"]) == []


# -- baseline and CLI ---------------------------------------------------------

_BAD_PACKAGE = {"engine/exec.py": """
    def run(plan):
        return plan
"""}


class TestBaseline:
    def test_fingerprint_excludes_line_numbers(self):
        one = Violation(path="p.py", line=10, rule="r", symbol="s",
                        message="m")
        two = Violation(path="p.py", line=99, rule="r", symbol="s",
                        message="m")
        assert one.fingerprint == two.fingerprint
        assert one.fingerprint != Violation(
            path="p.py", line=10, rule="r", symbol="s",
            message="other").fingerprint

    def test_diff_against_written_baseline(self, tmp_path):
        root = write_fixture(tmp_path, _BAD_PACKAGE)
        violations = findings(root, rules=["typing"])
        assert violations
        path = tmp_path / "baseline.json"
        Baseline.write(path, violations, None)
        new, fixed = diff_violations(violations, Baseline.load(path))
        assert new == [] and fixed == []
        # fixing the finding turns the entry into a ratchet candidate
        new, fixed = diff_violations([], Baseline.load(path))
        assert new == [] and len(fixed) == len(violations)

    def test_cli_fails_then_baselines_then_passes(self, tmp_path,
                                                  capsys):
        root = write_fixture(tmp_path, _BAD_PACKAGE)
        baseline = tmp_path / "baseline.json"
        argv = ["--root", str(root), "--baseline", str(baseline)]
        assert analysis_main(argv) == 1
        assert analysis_main(argv + ["--write-baseline"]) == 0
        assert analysis_main(argv) == 0
        capsys.readouterr()
        # a new finding on top of the baseline still fails
        (root / "engine" / "more.py").write_text(
            "def f(x):\n    return x\n", encoding="utf-8")
        assert analysis_main(argv) == 1

    def test_json_report_shape(self, tmp_path, capsys):
        root = write_fixture(tmp_path, _BAD_PACKAGE)
        baseline = tmp_path / "baseline.json"
        code = analysis_main(["--root", str(root), "--baseline",
                              str(baseline), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["ok"] is False
        assert report["by_rule"] == {"typing-annotations": 1}
        assert report["baseline"]["exists"] is False
        assert report["mypy"] == {"ran": False, "errors": None}
        (finding,) = report["violations"]
        assert set(finding) == {"fingerprint", "rule", "path", "line",
                                "symbol", "message"}
        assert finding["symbol"] == "fix.engine.exec.run"


# -- the live tree ------------------------------------------------------------

def _repo_root():
    import repro
    package = Path(repro.__file__).resolve().parent
    if package.parent.name == "src":
        return package.parent.parent
    return package.parent


class TestLiveTree:
    """The committed tree itself is the ultimate fixture."""

    def test_live_tree_matches_committed_baseline(self):
        import repro
        root = Path(repro.__file__).resolve().parent
        baseline_path = _repo_root() / "analysis_baseline.json"
        assert baseline_path.exists(), \
            "analysis_baseline.json must be committed at the repo root"
        _, violations = analyze_tree(root)
        baseline = Baseline.load(baseline_path)
        new, _ = diff_violations(violations, baseline)
        assert new == [], "\n".join(
            ["new static-analysis findings (fix, pragma, or re-triage "
             "with --write-baseline):"] + [v.render() for v in new])

    def test_live_tree_row_fallbacks_are_declared(self):
        # PR-8's operators must be explicitly declared row-only (or be
        # vectorized); this pins the registry contents themselves
        from repro.engine.vectorized import ROW_ONLY_FALLBACK
        assert {"PartitionScan", "Gather", "IndexScan",
                "IndexNestedLoopJoin"} <= set(ROW_ONLY_FALLBACK)
