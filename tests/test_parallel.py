"""Intra-query parallelism: partitioned tables + exchange operators.

The contract under test is *bit-identical parity*: any query executed
with ``max_parallel_workers >= 2`` must return exactly the rows, in
exactly the order, of the serial plan — across all three engines, the
provenance rewrite strategies and the TPC-H sublink templates.  On top
of that: hash partitioning must survive DML, commits, WAL replay and
snapshot reload; partition pruning must plan a ``PartitionScan``; a
worker killed mid-query must surface a clean :class:`ExecutionError`
and the pool must recover for the next statement.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro import connect
from repro.engine import parallel as par
from repro.engine.parallel import (
    Gather, PartitionScan, partition_map, stable_hash,
)
from repro.errors import CatalogError, ExecutionError, SQLSyntaxError
from repro.synthetic import SyntheticConfig, load_synthetic, q1_sql, q2_sql

#: Fan out even on tiny test tables.
PARALLEL = dict(max_parallel_workers=2, parallel_threshold=1)

ENGINES = ("materializing", "pipelined", "vectorized")


def teardown_module(module):
    par.shutdown_pool()


def _seed_events(conn, rows_n: int = 400, partitions: int | None = None):
    suffix = (f" PARTITION BY HASH(grp) PARTITIONS {partitions}"
              if partitions else "")
    conn.execute(f"CREATE TABLE events (grp int, val int){suffix}")
    conn.insert("events", [((i * 13) % 7, i) for i in range(rows_n)])


# ---------------------------------------------------------------------------
# Hashing and partition maps
# ---------------------------------------------------------------------------

def test_stable_hash_is_deterministic_and_type_bridging():
    assert stable_hash(None) == 0
    assert stable_hash(7) == stable_hash(7)
    # SQL equality 7 = 7.0 must land both in the same partition
    assert stable_hash(7) == stable_hash(7.0)
    assert stable_hash(True) == stable_hash(1)
    assert stable_hash("x") == stable_hash("x")
    assert stable_hash("x") != stable_hash("y")


def test_partition_map_partitions_every_row_exactly_once():
    rows = [((i * 31) % 11, i) for i in range(100)]
    parts = partition_map(rows, 0, 4)
    assert len(parts) == 4
    indices = sorted(i for part in parts for i in part)
    assert indices == list(range(100))
    for part in parts:
        assert part == sorted(part)          # ascending within a part
        keys = {stable_hash(rows[i][0]) % 4 for i in part}
        assert len(keys) <= len(part) and all(
            k == parts.index(part) for k in keys) or part == []


def test_partition_map_routes_by_hash():
    rows = [(k,) for k in range(50)]
    parts = partition_map(rows, 0, 3)
    for number, part in enumerate(parts):
        for i in part:
            assert stable_hash(rows[i][0]) % 3 == number


# ---------------------------------------------------------------------------
# Partitioned DDL
# ---------------------------------------------------------------------------

def test_partition_clause_parses_and_registers():
    conn = connect()
    conn.execute("CREATE TABLE t (k int, v int) "
                 "PARTITION BY HASH(k) PARTITIONS 4")
    assert conn.catalog.partition_of("t") == ("k", 4)
    conn.close()


def test_partition_clause_rejects_bad_specs():
    conn = connect()
    with pytest.raises(SQLSyntaxError):
        conn.execute("CREATE TABLE t (k int) "
                     "PARTITION BY RANGE(k) PARTITIONS 4")
    with pytest.raises(SQLSyntaxError):
        conn.execute("CREATE TABLE t (k int) "
                     "PARTITION BY HASH(k) PARTITIONS 0")
    with pytest.raises(CatalogError):
        conn.execute("CREATE TABLE t (k int) "
                     "PARTITION BY HASH(missing) PARTITIONS 4")
    conn.close()


def test_partition_survives_dml_and_drop():
    conn = connect()
    _seed_events(conn, partitions=4)
    conn.execute("INSERT INTO events VALUES (1, 999)")
    conn.execute("DELETE FROM events WHERE val > 900")
    assert conn.catalog.partition_of("events") == ("grp", 4)
    conn.execute("DROP TABLE events")
    assert conn.catalog.partition_of("events") is None
    conn.close()


def test_partition_survives_transaction_commit():
    conn = connect()
    conn.execute("BEGIN")
    conn.execute("CREATE TABLE t (k int) PARTITION BY HASH(k) PARTITIONS 3")
    conn.execute("INSERT INTO t VALUES (1), (2)")
    conn.execute("COMMIT")
    assert conn.catalog.partition_of("t") == ("k", 3)
    conn.close()


def test_partition_survives_wal_replay_and_snapshot(tmp_path):
    path = str(tmp_path / "db")
    conn = connect(path=path)
    _seed_events(conn, rows_n=50, partitions=3)
    expected = conn.execute("SELECT * FROM events").rows
    conn.close()

    conn = connect(path=path)                 # WAL replay
    assert conn.catalog.partition_of("events") == ("grp", 3)
    assert conn.execute("SELECT * FROM events").rows == expected
    conn.execute("CHECKPOINT")
    conn.close()

    conn = connect(path=path)                 # snapshot reload
    assert conn.catalog.partition_of("events") == ("grp", 3)
    assert conn.execute("SELECT * FROM events").rows == expected
    conn.close()


# ---------------------------------------------------------------------------
# Partition pruning
# ---------------------------------------------------------------------------

def test_equality_filter_on_partition_column_prunes():
    conn = connect()                          # no workers: pruning alone
    _seed_events(conn, partitions=4)
    text = conn.explain_physical("SELECT val FROM events WHERE grp = 3")
    assert "PartitionScan" in text
    serial = connect()
    _seed_events(serial)
    expected = serial.execute("SELECT val FROM events WHERE grp = 3").rows
    assert conn.execute(
        "SELECT val FROM events WHERE grp = 3").rows == expected
    serial.close()
    conn.close()


def test_non_partition_filters_do_not_prune():
    conn = connect()
    _seed_events(conn, partitions=4)
    for sql in ("SELECT val FROM events WHERE val = 3",   # other column
                "SELECT val FROM events WHERE grp > 3",   # not equality
                "SELECT val FROM events"):                # no filter
        assert "PartitionScan" not in conn.explain_physical(sql)
    conn.close()


# ---------------------------------------------------------------------------
# Exchange modes and EXPLAIN
# ---------------------------------------------------------------------------

def test_gather_modes_planned_per_shape():
    conn = connect(**PARALLEL)
    _seed_events(conn, partitions=4)
    conn.execute("CREATE TABLE flat (grp int, val int)")
    conn.insert("flat", [((i * 13) % 7, i) for i in range(400)])
    shapes = {
        "mode=scan": "SELECT val FROM flat WHERE val < 100",
        "mode=partition":
            "SELECT grp, sum(val) FROM events GROUP BY grp",
        "mode=repartition":
            "SELECT grp, sum(val) FROM flat GROUP BY grp",
        "mode=twophase": "SELECT count(*), sum(val) FROM flat",
    }
    for mode, sql in shapes.items():
        text = conn.explain_physical(sql)
        assert mode in text, f"{sql!r} planned:\n{text}"
    conn.close()


def test_explain_analyze_reports_workers_and_self_time():
    conn = connect(**PARALLEL)
    _seed_events(conn, partitions=4)
    text = conn.explain_analyze(
        "SELECT grp, sum(val) FROM events GROUP BY grp")
    assert "Gather (workers=2, mode=partition)" in text
    assert "Worker 0:" in text and "Worker 1:" in text
    assert "self=" in text
    conn.close()


def test_distinct_aggregate_still_parallel_safe():
    serial = connect()
    _seed_events(serial)
    expected = serial.execute(
        "SELECT grp, count(DISTINCT val) FROM events GROUP BY grp").rows
    serial.close()
    conn = connect(**PARALLEL)
    _seed_events(conn)
    # DISTINCT is not combinable: no twophase, but repartition keeps
    # each group whole on one worker, so it stays exact
    assert conn.execute(
        "SELECT grp, count(DISTINCT val) "
        "FROM events GROUP BY grp").rows == expected
    conn.close()


def test_small_tables_stay_serial():
    conn = connect(max_parallel_workers=2, parallel_threshold=10000)
    _seed_events(conn, rows_n=50)
    conn.execute("SELECT grp, sum(val) FROM events GROUP BY grp").rows
    assert conn.last_stats.parallel_fanouts == 0
    conn.close()


# ---------------------------------------------------------------------------
# Bit-identical parity matrices
# ---------------------------------------------------------------------------

PARITY_QUERIES = [
    "SELECT grp, val FROM events WHERE val < 150",
    "SELECT val + grp AS t FROM events WHERE val * 2 > 100",
    "SELECT grp, count(*) AS n, sum(val) AS s FROM events GROUP BY grp",
    "SELECT grp, min(val) AS lo, max(val) AS hi, avg(val) AS m "
    "FROM events GROUP BY grp",
    "SELECT count(*) AS n, sum(val) AS s FROM events",
    "SELECT count(*) AS n FROM events WHERE val < 200",
    "SELECT grp, count(DISTINCT val) AS n FROM events GROUP BY grp",
    "SELECT grp, sum(val) AS s FROM events WHERE val < 300 GROUP BY grp",
    "SELECT grp, sum(val) AS s FROM events GROUP BY grp ORDER BY s DESC",
    "SELECT val FROM events WHERE grp = 2 ORDER BY val LIMIT 10",
]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("partitions", [None, 4])
def test_parallel_matches_serial_bit_for_bit(engine, partitions):
    serial = connect(engine=engine)
    _seed_events(serial, partitions=partitions)
    parallel = connect(engine=engine, **PARALLEL)
    _seed_events(parallel, partitions=partitions)
    for sql in PARITY_QUERIES:
        assert parallel.execute(sql).rows == serial.execute(sql).rows, sql
    serial.close()
    parallel.close()


@pytest.mark.parametrize("engine", ENGINES)
def test_provenance_strategies_parity_under_parallelism(engine):
    size = 60
    db = load_synthetic(SyntheticConfig(size, size, seed=0))
    queries = [
        ("SELECT PROVENANCE "
         + sql_fn(size, size, seed=0)[len("SELECT "):], strategy)
        for sql_fn, strategies in ((q1_sql, ("gen", "left", "move", "unn")),
                                   (q2_sql, ("gen", "left", "move")))
        for strategy in strategies
    ]
    serial = connect(engine=engine, catalog=db.catalog)
    parallel = connect(engine=engine, catalog=db.catalog, **PARALLEL)
    for sql, strategy in queries:
        expected = serial.prepare(sql, strategy=strategy).execute(()).rows
        actual = parallel.prepare(sql, strategy=strategy).execute(()).rows
        assert actual == expected, (strategy, sql)
    serial.close()
    parallel.close()


def test_parallel_aggregate_actually_fans_out():
    conn = connect(**PARALLEL)
    _seed_events(conn, partitions=4)
    conn.execute("SELECT grp, sum(val) FROM events GROUP BY grp").rows
    stats = conn.last_stats
    assert stats.parallel_fanouts >= 1
    assert stats.parallel_workers >= 2
    conn.close()


def test_two_phase_merge_handles_empty_and_null_groups():
    serial = connect()
    serial.execute("CREATE TABLE t (k int, v int)")
    serial.insert("t", [(None, 1), (None, 2), (1, None), (1, 3)] * 30)
    parallel = connect(**PARALLEL)
    parallel.execute("CREATE TABLE t (k int, v int)")
    parallel.insert("t", [(None, 1), (None, 2), (1, None), (1, 3)] * 30)
    for sql in ("SELECT k, count(v), sum(v), avg(v) FROM t GROUP BY k",
                "SELECT count(*), count(v), min(v), max(v) FROM t",
                "SELECT count(*) FROM t WHERE v > 100"):
        assert parallel.execute(sql).rows == serial.execute(sql).rows, sql
    serial.close()
    parallel.close()


# ---------------------------------------------------------------------------
# Worker crashes
# ---------------------------------------------------------------------------

def test_worker_killed_mid_query_raises_cleanly_and_pool_recovers():
    pool = par.get_pool()
    if pool is None:                          # pragma: no cover
        pytest.skip("multiprocessing unavailable on this host")
    workers = pool.lease(2)
    victim = workers[0]
    os.kill(victim.process.pid, signal.SIGKILL)
    victim.process.join(timeout=5)
    with pytest.raises(ExecutionError,
                       match="worker (died|unreachable)"):
        pool.run([(victim, [], ("task", {"bogus": True}))])

    # the next statement leases a fresh worker and succeeds
    conn = connect(**PARALLEL)
    _seed_events(conn)
    rows = conn.execute("SELECT grp, sum(val) FROM events GROUP BY grp").rows
    assert len(rows) == 7
    assert all(worker.process.is_alive() for worker in pool.lease(2))
    conn.close()


def test_pool_shutdown_leaves_no_orphans():
    pool = par.get_pool()
    if pool is None:                          # pragma: no cover
        pytest.skip("multiprocessing unavailable on this host")
    pool.lease(2)
    processes = pool.processes()
    assert processes and all(p.is_alive() for p in processes)
    par.shutdown_pool()
    deadline = time.monotonic() + 5
    for process in processes:
        process.join(timeout=max(deadline - time.monotonic(), 0.1))
        assert not process.is_alive()
    # a new pool comes up on demand
    conn = connect(**PARALLEL)
    _seed_events(conn)
    conn.execute("SELECT count(*) FROM events").rows
    assert conn.last_stats.parallel_fanouts == 1
    conn.close()


# ---------------------------------------------------------------------------
# Vectorized coverage regressions (VSort / VNestedLoopJoin) and
# self-time accounting
# ---------------------------------------------------------------------------

def test_order_by_and_nested_loop_join_vectorize():
    conn = connect(engine="vectorized")
    conn.execute("CREATE TABLE r (a int, b int)")
    conn.insert("r", [(i % 5, i) for i in range(50)])
    conn.execute("CREATE TABLE s (c int)")
    conn.insert("s", [(1,), (3,), (9,)])
    for sql in ("SELECT a, b FROM r ORDER BY a DESC, b",
                "SELECT a, c FROM r JOIN s ON a < c",
                "SELECT a, c FROM r LEFT JOIN s ON a < c",
                "SELECT a, c FROM r CROSS JOIN s"):
        conn.execute(sql).rows
        assert conn.last_stats.row_fallback_nodes == 0, sql
    conn.close()


def test_vectorized_outer_join_null_padding_matches_serial():
    results = {}
    for engine in ENGINES:
        conn = connect(engine=engine)
        conn.execute("CREATE TABLE r (a int)")
        conn.insert("r", [(1,), (2,), (50,)])
        conn.execute("CREATE TABLE s (c int, d int)")
        conn.insert("s", [(1, 10), (2, 20)])
        results[engine] = conn.execute(
            "SELECT a, d FROM r LEFT JOIN s ON a = c AND d > 15").rows
        conn.close()
    assert results["vectorized"] == results["pipelined"]
    assert sorted(results["vectorized"]) == \
        sorted(results["materializing"])
    assert (50, None) in results["vectorized"]


def test_numeric_columns_are_array_backed():
    from array import array

    from repro.engine.columnar import clear_cache, table_columns
    clear_cache()
    rows = [(i, float(i), None if i % 2 else i, "x") for i in range(64)]
    columns = table_columns(rows, 4)
    assert isinstance(columns[0].values, array)        # int64 'q'
    assert columns[0].values.typecode == "q"
    assert isinstance(columns[1].values, array)        # float64 'd'
    assert columns[1].values.typecode == "d"
    assert isinstance(columns[2].values, list)         # nullable: list
    assert isinstance(columns[3].values, list)         # text: list
    assert list(columns[0].values) == [row[0] for row in rows]


def test_explain_analyze_self_time_never_exceeds_total():
    conn = connect()
    _seed_events(conn)
    text = conn.explain_analyze(
        "SELECT grp, sum(val) AS s FROM events "
        "WHERE val < 300 GROUP BY grp ORDER BY s")
    for line in text.splitlines():
        if "self=" not in line:
            continue
        total = float(line.split("time=")[1].split("ms")[0])
        self_ms = float(line.split("self=")[1].split("ms")[0])
        assert self_ms <= total + 1e-9, line
    timings = conn.last_stats.operator_timings
    assert timings and all(ms >= 0 for ms in timings.values())
    conn.close()


def test_gather_and_partition_scan_labels():
    conn = connect(**PARALLEL)
    _seed_events(conn, partitions=4)
    text = conn.explain_physical(
        "SELECT grp, sum(val) FROM events GROUP BY grp")
    assert "Gather (workers=2, mode=partition) on events" in text
    text = conn.explain_physical("SELECT val FROM events WHERE grp = 1")
    assert "PartitionScan events" in text and "/4" in text
    conn.close()


def test_explain_analyze_covers_parallel_and_vector_operators():
    """EXPLAIN ANALYZE and ExecutionStats must report every PR-8
    operator — Gather (with per-worker lines), PartitionScan, VSort and
    VNestedLoopJoin — not just the serial row pipeline.  The
    exhaustiveness-physical rule proves each node *has* a label; this
    locks the stats plumbing actually reaching them at runtime."""
    conn = connect(**PARALLEL)
    _seed_events(conn, partitions=4)
    text = conn.explain_analyze("SELECT grp, sum(val) FROM events GROUP BY grp")
    gather_lines = [l for l in text.splitlines() if "Gather" in l]
    assert gather_lines and all("time=" in l and "self=" in l
                                for l in gather_lines)
    assert "Worker 0: rows=" in text and "Worker 1: rows=" in text
    assert conn.last_stats.operator_evals.get("Gather") == 1
    assert "Gather" in conn.last_stats.operator_timings

    text = conn.explain_analyze("SELECT val FROM events WHERE grp = 1")
    scan_lines = [l for l in text.splitlines() if "PartitionScan" in l]
    assert scan_lines and "actual rows=" in scan_lines[0]
    assert conn.last_stats.operator_evals.get("PartitionScan") == 1
    conn.close()

    conn = connect(engine="vectorized")
    conn.execute("CREATE TABLE r (a int, b int)")
    conn.insert("r", [(i % 5, i) for i in range(50)])
    conn.execute("CREATE TABLE s (c int)")
    conn.insert("s", [(1,), (3,), (9,)])
    text = conn.explain_analyze("SELECT a, b FROM r ORDER BY a DESC, b")
    assert "Sort [a DESC, b ASC] [columnar]" in text
    assert conn.last_stats.operator_evals.get("VSort") == 1
    text = conn.explain_analyze("SELECT a, c FROM r JOIN s ON a < c")
    join_lines = [l for l in text.splitlines()
                  if "NestedLoopJoin" in l and "[columnar]" in l]
    assert join_lines and "self=" in join_lines[0]
    assert conn.last_stats.operator_evals.get("VNestedLoopJoin") == 1
    assert conn.last_stats.row_fallback_nodes == 0
    conn.close()


def test_plan_time_catalog_lookups_catch_only_catalog_errors():
    """``_table_size`` treats a missing table as size 0 (the planner
    just skips parallelism) but must not hide unrelated bugs behind a
    broad except."""
    from repro.catalog import Catalog
    from repro.engine.parallel import _table_size
    from repro.engine.physical import SeqScan

    scan = SeqScan("missing", "missing", ("a",))
    assert _table_size(scan, Catalog()) == 0.0

    class _BuggyCatalog:
        def get(self, name):
            raise ZeroDivisionError("lookup bug")

    with pytest.raises(ZeroDivisionError):
        _table_size(scan, _BuggyCatalog())
