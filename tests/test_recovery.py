"""Fault-injection crash recovery: truncate the WAL everywhere and prove
the database always reopens as of the last fully-committed transaction.

The suite drives a scripted workload (DDL, DML, index DDL, ANALYZE,
views, a multi-statement explicit transaction, unicode values) against a
durable engine, capturing the full expected state after every commit.
Then it simulates crashes: the WAL is cut at **every record boundary**
and at **several offsets inside every record** (torn writes), the
directory is reopened, and the recovered database must equal the state
as of the last commit whose record survived intact — tables, row bags,
views, index structures and ANALYZE statistics included.  A flipped
payload byte (bit rot) must behave like a torn tail, never decode into
garbage.

Checkpointing is covered too: the same guarantees must hold when a
snapshot sits under the truncated WAL suffix.
"""

from __future__ import annotations

import os
import shutil
import struct
from collections import Counter

import pytest

from repro import connect
from repro.storage.store import WAL_FILE
from repro.storage.wal import WAL_MAGIC

_RECORD_HEADER = struct.Struct("<II")

#: The scripted workload: each statement autocommits, so each line is
#: one WAL record (and one expected-state snapshot).
SCRIPT = [
    "CREATE TABLE t (k int, v text)",
    "INSERT INTO t VALUES (1, 'a'), (2, 'b')",
    "CREATE UNIQUE INDEX t_k ON t (k)",
    "INSERT INTO t VALUES (3, 'c')",
    "ANALYZE t",
    "CREATE TABLE u (x int, y float)",
    "INSERT INTO u VALUES (10, 0.5), (20, 1.5), (10, NULL)",
    "DELETE FROM t WHERE k = 2",
    "CREATE VIEW live_t AS SELECT k FROM t WHERE k > 0",
    "CREATE INDEX u_x ON u (x) USING sorted",
    "INSERT INTO t VALUES (5, 'ünïcode — ✓')",
    "ANALYZE",
    "DROP INDEX u_x",
    "DELETE FROM u WHERE y IS NULL",
    "DROP TABLE u",
]


def _state_of(conn) -> dict:
    """Everything recovery must reproduce, in comparable form."""
    catalog = conn.catalog
    return {
        "tables": {name: Counter(catalog.get(name).rows)
                   for name in catalog.names()},
        "schemas": {name: [(a.name, a.type) for a in catalog.get(name).schema]
                    for name in catalog.names()},
        "views": {name: sorted(conn.execute(f"SELECT * FROM {name}").rows)
                  for name in catalog.view_names()},
        "indexes": {name: (ix.table, ix.column, ix.kind, ix.unique)
                    for name in catalog.index_names()
                    for ix in [catalog.get_index(name)]},
        "stats": {table: catalog.stats.get(table)
                  for table in catalog.stats.tables()},
    }


def _assert_indexes_consistent(conn) -> None:
    """Every recovered index must exactly agree with its table."""
    catalog = conn.catalog
    for name in catalog.index_names():
        index = catalog.get_index(name)
        rows = catalog.get(index.table).rows
        assert len(index) == len(rows)
        for row in rows:
            key = row[index.position]
            if key is None:
                continue
            hits = index.lookup(key)
            assert row in hits
            if index.unique:
                assert hits == [row]


def _build(dbdir: str, script=SCRIPT, checkpoint_after: int | None = None):
    """Run the script; returns the expected state after each commit."""
    conn = connect(path=dbdir)
    states = []
    for position, sql in enumerate(script):
        conn.execute(sql)
        if checkpoint_after is not None and position == checkpoint_after:
            conn.execute("CHECKPOINT")
        states.append(_state_of(conn))
    conn.close()
    return states


def _record_spans(wal_bytes: bytes) -> list[tuple[int, int]]:
    """``(start, end)`` byte spans of every record in a WAL image."""
    spans = []
    offset = len(WAL_MAGIC)
    while offset < len(wal_bytes):
        length, _ = _RECORD_HEADER.unpack_from(wal_bytes, offset)
        end = offset + _RECORD_HEADER.size + length
        assert end <= len(wal_bytes), "test WAL parsing drifted"
        spans.append((offset, end))
        offset = end
    return spans


def _reopen_with_wal(src_dir: str, scratch: str, wal_bytes: bytes):
    """Copy the database dir with a substituted WAL image and open it."""
    if os.path.exists(scratch):
        shutil.rmtree(scratch)
    shutil.copytree(src_dir, scratch)
    with open(os.path.join(scratch, WAL_FILE), "wb") as fh:
        fh.write(wal_bytes)
    return connect(path=scratch)


class TestTruncationSweep:
    def _sweep(self, tmp_path, checkpoint_after=None):
        dbdir = str(tmp_path / "db")
        scratch = str(tmp_path / "scratch")
        states = _build(str(dbdir), checkpoint_after=checkpoint_after)
        wal_bytes = open(os.path.join(dbdir, WAL_FILE), "rb").read()
        spans = _record_spans(wal_bytes)
        # With a checkpoint, the WAL restarts: it only holds the suffix.
        base = len(states) - len(spans)
        assert base == (0 if checkpoint_after is None
                        else checkpoint_after + 1)

        def expected(n_complete_records: int) -> dict | None:
            committed = base + n_complete_records
            return states[committed - 1] if committed else None

        def check(cut: int, n_complete: int) -> None:
            conn = _reopen_with_wal(dbdir, scratch, wal_bytes[:cut])
            try:
                want = expected(n_complete)
                if want is None:
                    assert conn.catalog.names() == []
                else:
                    assert _state_of(conn) == want
                _assert_indexes_consistent(conn)
            finally:
                conn.close()

        # every record boundary (0 .. all records complete)
        check(len(WAL_MAGIC), 0)
        for i, (start, end) in enumerate(spans):
            check(end, i + 1)
            # torn writes inside record i: only i complete records before
            for cut in {start + 1,                       # header torn
                        start + _RECORD_HEADER.size,     # empty payload
                        (start + end) // 2,              # payload torn
                        end - 1}:                        # one byte short
                if start < cut < end:
                    check(cut, i)
        # cut inside the magic: nothing is recoverable
        check(len(WAL_MAGIC) - 3, 0)

    def test_every_truncation_point(self, tmp_path):
        self._sweep(tmp_path)

    def test_truncation_sweep_over_a_checkpoint(self, tmp_path):
        self._sweep(tmp_path, checkpoint_after=6)


class TestBitRot:
    def test_flipped_payload_byte_acts_as_torn_tail(self, tmp_path):
        """A corrupt record is indistinguishable from a torn one: replay
        must stop *before* it and keep everything earlier."""
        dbdir = str(tmp_path / "db")
        states = _build(dbdir)
        wal_bytes = bytearray(
            open(os.path.join(dbdir, WAL_FILE), "rb").read())
        spans = _record_spans(bytes(wal_bytes))
        for i, (start, end) in enumerate(spans):
            mutated = bytearray(wal_bytes)
            mutated[(start + _RECORD_HEADER.size + end) // 2] ^= 0xFF
            conn = _reopen_with_wal(dbdir, str(tmp_path / "scratch"),
                                    bytes(mutated))
            try:
                if i == 0:
                    assert conn.catalog.names() == []
                else:
                    assert _state_of(conn) == states[i - 1]
                _assert_indexes_consistent(conn)
            finally:
                conn.close()


class TestZeroExtension:
    def test_zero_filled_tail_recovers_as_torn(self, tmp_path):
        """A crash can persist a file-size extension without the data
        blocks (durability='checkpoint' permits it): a zero-filled WAL
        tail must recover like a torn write, not brick the database."""
        dbdir = str(tmp_path / "db")
        states = _build(dbdir)
        wal_path = os.path.join(dbdir, WAL_FILE)
        for pad in (1, 8, 64, 4096):
            with open(wal_path, "rb") as fh:
                image = fh.read()
            conn = _reopen_with_wal(dbdir, str(tmp_path / "scratch"),
                                    image + b"\x00" * pad)
            try:
                assert _state_of(conn) == states[-1]
                _assert_indexes_consistent(conn)
                # the repaired log accepts new commits durably
                conn.execute("INSERT INTO t VALUES (88, 'after-zeros')")
            finally:
                conn.close()
            again = connect(path=str(tmp_path / "scratch"))
            try:
                assert (88, "after-zeros") in again.catalog.get("t").rows
            finally:
                again.close()


class TestRecoveryLifecycle:
    def test_clean_reopen_has_everything(self, tmp_path):
        dbdir = str(tmp_path / "db")
        states = _build(dbdir)
        conn = connect(path=dbdir)
        try:
            assert _state_of(conn) == states[-1]
            _assert_indexes_consistent(conn)
        finally:
            conn.close()

    def test_recovery_truncates_the_torn_tail(self, tmp_path):
        """Opening a crashed directory repairs the WAL in place: the
        torn suffix is cut, and the *next* generation of commits appends
        cleanly after it."""
        dbdir = str(tmp_path / "db")
        _build(dbdir)
        wal_path = os.path.join(dbdir, WAL_FILE)
        wal_bytes = open(wal_path, "rb").read()
        spans = _record_spans(wal_bytes)
        keep = spans[4][1]                       # 5 complete records
        with open(wal_path, "wb") as fh:
            fh.write(wal_bytes[:keep + 7])       # plus a torn fragment
        conn = connect(path=dbdir)
        assert os.path.getsize(wal_path) == keep
        conn.execute("INSERT INTO t VALUES (77, 'post-crash')")
        conn.close()
        reopened = connect(path=dbdir)
        try:
            assert (77, "post-crash") in reopened.catalog.get("t").rows
            _assert_indexes_consistent(reopened)
        finally:
            reopened.close()

    def test_explicit_transaction_is_one_atomic_record(self, tmp_path):
        """A multi-statement transaction commits as one WAL record: all
        of it survives, or none of it."""
        dbdir = str(tmp_path / "db")
        conn = connect(path=dbdir)
        conn.execute("CREATE TABLE a (x int)")
        conn.execute("CREATE TABLE b (y int)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO a VALUES (1)")
        conn.execute("INSERT INTO b VALUES (2)")
        conn.execute("COMMIT")
        conn.close()
        wal_path = os.path.join(dbdir, WAL_FILE)
        wal_bytes = open(wal_path, "rb").read()
        spans = _record_spans(wal_bytes)
        assert len(spans) == 3                  # 2 DDL + 1 transaction
        # complete: both inserts present
        conn = _reopen_with_wal(dbdir, str(tmp_path / "s1"), wal_bytes)
        assert conn.catalog.get("a").rows == [(1,)]
        assert conn.catalog.get("b").rows == [(2,)]
        conn.close()
        # torn: neither insert present
        cut = spans[-1][0] + (spans[-1][1] - spans[-1][0]) // 2
        conn = _reopen_with_wal(dbdir, str(tmp_path / "s2"),
                                wal_bytes[:cut])
        assert conn.catalog.get("a").rows == []
        assert conn.catalog.get("b").rows == []
        conn.close()

    def test_rolled_back_transaction_leaves_no_record(self, tmp_path):
        dbdir = str(tmp_path / "db")
        conn = connect(path=dbdir)
        conn.execute("CREATE TABLE a (x int)")
        before = os.path.getsize(os.path.join(dbdir, WAL_FILE))
        conn.execute("BEGIN")
        conn.execute("INSERT INTO a VALUES (1)")
        conn.execute("ROLLBACK")
        assert os.path.getsize(os.path.join(dbdir, WAL_FILE)) == before
        conn.close()

    def test_durability_off_persists_only_checkpoints(self, tmp_path):
        dbdir = str(tmp_path / "db")
        conn = connect(path=dbdir, durability="off")
        conn.execute("CREATE TABLE a (x int)")
        conn.execute("INSERT INTO a VALUES (1)")
        conn.execute("CHECKPOINT")
        conn.execute("INSERT INTO a VALUES (2)")     # not logged
        conn.close()
        reopened = connect(path=dbdir)
        try:
            assert reopened.catalog.get("a").rows == [(1,)]
        finally:
            reopened.close()

    def test_durability_checkpoint_logs_without_fsync(self, tmp_path):
        """The relaxed mode still appends every commit — a clean close
        recovers everything."""
        dbdir = str(tmp_path / "db")
        conn = connect(path=dbdir, durability="checkpoint")
        conn.execute("CREATE TABLE a (x int)")
        conn.execute("INSERT INTO a VALUES (1)")
        conn.close()
        reopened = connect(path=dbdir)
        try:
            assert reopened.catalog.get("a").rows == [(1,)]
        finally:
            reopened.close()

    def test_nan_rows_recover(self, tmp_path):
        """Rows carrying NaN (never equal to itself) must still delta
        and replay — the WAL matches rows bit-exactly, not by ==."""
        dbdir = str(tmp_path / "db")
        conn = connect(path=dbdir)
        conn.execute("CREATE TABLE m (x float, y int)")
        nan = float("nan")
        conn.insert("m", [(nan, 1), (2.5, 2), (nan, 3)])
        conn.execute("DELETE FROM m WHERE y = 1")
        conn.close()
        reopened = connect(path=dbdir)
        try:
            rows = sorted(reopened.catalog.get("m").rows,
                          key=lambda r: r[1])
            assert [y for _, y in rows] == [2, 3]
            assert rows[0][0] == 2.5
            assert rows[1][0] != rows[1][0]      # still NaN
            # and the NaN survives further reopens (replay + snapshot)
            reopened.execute("CHECKPOINT")
        finally:
            reopened.close()
        again = connect(path=dbdir)
        try:
            assert len(again.catalog.get("m").rows) == 2
        finally:
            again.close()

    def test_failed_fsync_aborts_commit_without_poisoning_log(
            self, tmp_path, monkeypatch):
        """If the WAL append fails, the commit must abort, the record
        must not linger in the file, and later commits (with the same
        reused LSN) must recover exactly."""
        import repro.storage.store as store_mod
        from repro import StorageError

        dbdir = str(tmp_path / "db")
        conn = connect(path=dbdir)
        conn.execute("CREATE TABLE a (x int)")

        real_fsync = os.fsync
        blown = []

        def failing_fsync(fd):
            if not blown:
                blown.append(True)
                raise OSError(5, "injected I/O error")
            return real_fsync(fd)

        monkeypatch.setattr(store_mod.os, "fsync", failing_fsync)
        import pytest as _pytest
        # the flusher fails the whole group-commit batch; every waiter
        # gets a StorageError naming the underlying failure
        with _pytest.raises(StorageError, match="injected I/O error"):
            conn.execute("INSERT INTO a VALUES (111)")
        monkeypatch.setattr(store_mod.os, "fsync", real_fsync)
        # the aborted commit is invisible in memory...
        assert conn.execute("SELECT * FROM a").rows == []
        # ...and the next commit must not collide with its LSN on disk
        conn.execute("INSERT INTO a VALUES (222)")
        conn.close()
        reopened = connect(path=dbdir)
        try:
            assert reopened.catalog.get("a").rows == [(222,)]
        finally:
            reopened.close()

    def test_index_replaced_in_one_txn_matches_on_disk(self, tmp_path):
        """DROP INDEX i; CREATE INDEX i ON <other column> inside one
        transaction: the live catalog and the recovered one must agree
        on the new definition."""
        dbdir = str(tmp_path / "db")
        conn = connect(path=dbdir)
        conn.execute("CREATE TABLE t1 (a int, b int)")
        conn.execute("CREATE TABLE t2 (a int, b int)")
        conn.insert("t1", [(1, 10)])
        conn.insert("t2", [(2, 20)])
        conn.execute("CREATE INDEX i ON t1 (a)")
        conn.execute("BEGIN")
        conn.execute("DROP INDEX i")
        conn.execute("CREATE INDEX i ON t2 (b) USING sorted")
        conn.execute("COMMIT")
        live = conn.catalog.get_index("i")
        assert (live.table, live.column, live.kind) == ("t2", "b",
                                                        "sorted")
        assert live.lookup(20) == [(2, 20)]
        conn.close()
        reopened = connect(path=dbdir)
        try:
            recovered = reopened.catalog.get_index("i")
            assert (recovered.table, recovered.column, recovered.kind) \
                == ("t2", "b", "sorted")
            _assert_indexes_consistent(reopened)
        finally:
            reopened.close()

    def test_insert_then_delete_in_one_txn_nets_out(self, tmp_path):
        """A row inserted and deleted inside one transaction must not
        appear in the WAL delta — replay matches deletions against the
        pre-transaction table, where that row never existed."""
        dbdir = str(tmp_path / "db")
        conn = connect(path=dbdir)
        conn.execute("CREATE TABLE t (k int)")
        conn.execute("INSERT INTO t VALUES (1)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (2)")
        conn.execute("INSERT INTO t VALUES (3)")
        conn.execute("DELETE FROM t WHERE k = 2")   # in-txn insert
        conn.execute("DELETE FROM t WHERE k = 1")   # base row
        conn.execute("COMMIT")
        assert sorted(conn.execute("SELECT * FROM t").rows) == [(3,)]
        conn.close()
        reopened = connect(path=dbdir)
        try:
            assert reopened.catalog.get("t").rows == [(3,)]
        finally:
            reopened.close()

    def test_small_dml_on_big_table_logs_a_small_record(self, tmp_path):
        """Commit logging is O(delta): one inserted row into a big
        table must append a record of bytes, not re-log the table."""
        dbdir = str(tmp_path / "db")
        conn = connect(path=dbdir)
        conn.execute("CREATE TABLE big (k int, v int)")
        conn.insert("big", [(i, i) for i in range(10_000)])
        conn.execute("CHECKPOINT")                    # reset the WAL
        wal_path = os.path.join(dbdir, WAL_FILE)
        before = os.path.getsize(wal_path)
        conn.execute("INSERT INTO big VALUES (10001, 1)")
        grown = os.path.getsize(wal_path) - before
        assert 0 < grown < 200, \
            f"one-row insert appended {grown} bytes to the WAL"
        conn.close()
        reopened = connect(path=dbdir)
        try:
            assert len(reopened.catalog.get("big").rows) == 10_001
        finally:
            reopened.close()

    def test_double_open_is_refused(self, tmp_path):
        """Two engines on one directory would fork the LSN sequence and
        lose acknowledged commits — the directory lock forbids it."""
        from repro import StorageError

        dbdir = str(tmp_path / "db")
        first = connect(path=dbdir)
        first.execute("CREATE TABLE a (x int)")
        with pytest.raises(StorageError, match="already open"):
            connect(path=dbdir)
        # ...including via a different spelling of the same path
        with pytest.raises(StorageError, match="already open"):
            connect(path=str(tmp_path / "." / "db"))
        first.close()
        second = connect(path=dbdir)    # released on close
        try:
            assert second.catalog.names() == ["a"]
        finally:
            second.close()

    def test_concurrent_index_replacement_conflicts(self, tmp_path):
        """A txn dropping an index must not clobber a concurrently
        committed *replacement* of the same name (first-committer-wins)
        — and the surviving definition must be the one on disk."""
        from repro import Engine, SessionConfig, TransactionError

        engine = Engine(SessionConfig(), path=str(tmp_path / "db"))
        try:
            setup = engine.connect()
            setup.execute("CREATE TABLE t (a int, b int)")
            setup.execute("CREATE INDEX i ON t (a)")
            loser = engine.connect()
            loser.execute("BEGIN")
            loser.execute("DROP INDEX i")
            winner = engine.connect()
            winner.execute("BEGIN")
            winner.execute("DROP INDEX i")
            winner.execute("CREATE INDEX i ON t (b)")
            winner.execute("COMMIT")
            with pytest.raises(TransactionError, match="replaced"):
                loser.execute("COMMIT")
            live = setup.catalog.get_index("i")
            assert (live.table, live.column) == ("t", "b")
        finally:
            engine.close()
        reopened = connect(path=str(tmp_path / "db"))
        try:
            recovered = reopened.catalog.get_index("i")
            assert (recovered.table, recovered.column) == ("t", "b")
        finally:
            reopened.close()

    def test_session_durability_override_is_rejected(self, tmp_path):
        """The WAL fsync policy is fixed at open; a session must not be
        able to believe in a different guarantee."""
        from repro import Engine, InterfaceError, SessionConfig

        engine = Engine(SessionConfig(durability="commit"),
                        path=str(tmp_path / "db"))
        try:
            with pytest.raises(InterfaceError, match="durability"):
                engine.connect(durability="off")
            conn = engine.connect()                   # same mode is fine
            conn.execute("CREATE TABLE a (x int)")
            conn.close()
        finally:
            engine.close()

    def test_checkpoint_then_crash_loses_nothing(self, tmp_path):
        """Records at or below the snapshot's LSN are skipped on replay,
        so an un-truncated WAL under a fresh snapshot never
        double-applies."""
        dbdir = str(tmp_path / "db")
        conn = connect(path=dbdir)
        conn.execute("CREATE TABLE a (x int)")
        conn.execute("INSERT INTO a VALUES (1)")
        conn.execute("CHECKPOINT")
        conn.execute("INSERT INTO a VALUES (2)")
        conn.close()
        reopened = connect(path=dbdir)
        try:
            assert Counter(reopened.catalog.get("a").rows) == \
                Counter([(1,), (2,)])
        finally:
            reopened.close()


class TestGroupCommit:
    """Group-commit batching: determinism, all-or-none batch failure,
    torn multi-record batches, and the linger window.

    The deterministic scheme: hold ``store._io_lock`` and issue one
    sacrificial commit — the flusher drains it and parks inside
    ``_flush_batch`` on that lock.  Tickets enqueued now *cannot* leave
    ``_pending`` until the lock is released, so "two committers in one
    batch" is a certainty, not a race.  Committers must target disjoint
    tables (same-table committers serialize on the per-table commit
    lock *before* reaching the WAL queue, so they can never share a
    batch — that ordering is exactly what makes batch failure safe).
    """

    def _pinned_pair(self, engine, monkeypatch=None, arm=None):
        """Pin the flusher, run two disjoint-table committers into one
        pending batch, optionally arm a fault, release; returns the
        per-thread outcomes."""
        import threading
        import time

        store = engine.storage
        outcomes: dict = {}

        def insert(table: str) -> None:
            conn = engine.connect()
            try:
                conn.insert(table, [(7,)])
                outcomes[table] = "ok"
            except Exception as exc:      # noqa: BLE001 — recorded, asserted on
                outcomes[table] = exc
            finally:
                conn.close()

        lsn0 = store._allocated_lsn
        with store._io_lock:
            pin = threading.Thread(target=insert, args=("s",))
            pin.start()
            # wait until the sacrificial ticket was allocated (the LSN
            # moved — unlike the queue, never a transient state) *and*
            # drained: the flusher is now parked on the io lock
            deadline = time.monotonic() + 10
            while not (store._allocated_lsn == lsn0 + 1
                       and not store._pending):
                assert time.monotonic() < deadline
                time.sleep(0.001)
            a = threading.Thread(target=insert, args=("a",))
            b = threading.Thread(target=insert, args=("b",))
            a.start()
            b.start()
            while len(store._pending) < 2:      # both tickets queued
                assert time.monotonic() < deadline
                time.sleep(0.001)
            if arm is not None:
                arm()
        for thread in (pin, a, b):
            thread.join(10)
            assert not thread.is_alive()
        return outcomes

    def _engine(self, tmp_path, **options):
        from repro import Engine, SessionConfig

        engine = Engine(SessionConfig(**options), path=str(tmp_path / "db"))
        setup = engine.connect()
        for table in ("s", "a", "b"):
            setup.execute(f"CREATE TABLE {table} (x int)")
        setup.close()
        return engine

    def test_concurrent_committers_share_one_flush_batch(self, tmp_path):
        engine = self._engine(tmp_path)
        store = engine.storage
        batches0, records0 = store.flush_batches, store.flushed_records
        outcomes = self._pinned_pair(engine)
        assert outcomes == {"s": "ok", "a": "ok", "b": "ok"}
        # the sacrificial commit flushed alone; a and b shared a batch
        assert store.flush_batches == batches0 + 2
        assert store.flushed_records == records0 + 3
        engine.close()
        reopened = connect(path=str(tmp_path / "db"))
        try:
            for table in ("s", "a", "b"):
                assert reopened.catalog.get(table).rows == [(7,)]
        finally:
            reopened.close()

    def test_batch_fsync_failure_fails_every_waiter(
            self, tmp_path, monkeypatch):
        """One failed fsync aborts *both* commits in the batch: neither
        publishes, the batch is truncated off the WAL, and the engine
        keeps working afterwards."""
        import repro.storage.store as store_mod
        from repro import StorageError

        engine = self._engine(tmp_path)
        store = engine.storage
        real_fsync = os.fsync
        calls = [0]

        def counting_fsync(fd):
            calls[0] += 1
            # call 1 after arming: the sacrificial batch (succeeds);
            # call 2: the a+b batch (fails); call 3+: the truncation
            # fsync and everything later succeed
            if calls[0] == 2:
                raise OSError(5, "injected I/O error")
            return real_fsync(fd)

        outcomes = self._pinned_pair(
            engine,
            arm=lambda: monkeypatch.setattr(
                store_mod.os, "fsync", counting_fsync))
        monkeypatch.setattr(store_mod.os, "fsync", real_fsync)
        assert outcomes["s"] == "ok"
        for table in ("a", "b"):
            assert isinstance(outcomes[table], StorageError)
            assert "group-commit batch failed" in str(outcomes[table])
            # neither loser published anything in memory
            assert engine.catalog.get(table).rows == []
        # the engine stays usable: the WAL tail was rolled back cleanly
        conn = engine.connect()
        conn.insert("a", [(42,)])
        conn.close()
        engine.close()
        reopened = connect(path=str(tmp_path / "db"))
        try:
            assert reopened.catalog.get("s").rows == [(7,)]
            assert reopened.catalog.get("a").rows == [(42,)]
            assert reopened.catalog.get("b").rows == []
        finally:
            reopened.close()

    def test_torn_multi_record_batch_replays_only_the_intact_prefix(
            self, tmp_path):
        """Cut the WAL inside the second record of a two-record batch:
        recovery must apply the batch's first commit and discard the
        torn one — batches are a flush optimization, not a recovery
        unit."""
        engine = self._engine(tmp_path)
        outcomes = self._pinned_pair(engine)
        assert set(outcomes.values()) == {"ok"}
        engine.close()

        dbdir = str(tmp_path / "db")
        with open(os.path.join(dbdir, WAL_FILE), "rb") as fh:
            wal_bytes = fh.read()
        spans = _record_spans(wal_bytes)
        # 3 CREATEs + s + a + b autocommits
        assert len(spans) == 6
        last_start, last_end = spans[-1]
        cut = last_start + (last_end - last_start) // 2
        reopened = _reopen_with_wal(dbdir, str(tmp_path / "scratch"),
                                    wal_bytes[:cut])
        try:
            survivors = [t for t in ("a", "b")
                         if reopened.catalog.get(t).rows == [(7,)]]
            # exactly the batch's first record survived the tear
            assert len(survivors) == 1
            assert reopened.catalog.get("s").rows == [(7,)]
        finally:
            reopened.close()

    def test_linger_window_commits_are_durable(self, tmp_path):
        """A nonzero group_commit_ms delays the fsync to gather a
        batch, but append_commit still blocks until *its* record is
        durable — close/reopen loses nothing."""
        engine = self._engine(tmp_path, group_commit_ms=5.0)
        conn = engine.connect()
        for value in (1, 2, 3):
            conn.insert("a", [(value,)])
        conn.close()
        store = engine.storage
        assert store.flushed_records >= 3
        engine.close()
        reopened = connect(path=str(tmp_path / "db"))
        try:
            assert Counter(reopened.catalog.get("a").rows) == \
                Counter([(1,), (2,), (3,)])
        finally:
            reopened.close()
