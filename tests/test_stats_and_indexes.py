"""The statistics/index subsystem and the cost-based planner.

Covers: ``ANALYZE`` collection, ``CREATE INDEX``/``DROP INDEX`` DDL and
maintenance under DML, IndexScan/IndexNestedLoopJoin plan selection (and
the SeqScan fallback without indexes), estimate annotations in
``EXPLAIN``/``EXPLAIN ANALYZE``, cost-based join ordering, and the
cost-based ``auto`` provenance-strategy choice across the paper's
synthetic size grid.
"""

from collections import Counter

import pytest

from repro import connect
from repro.errors import CatalogError
from repro.provenance.rewriter import ProvenanceRewriter
from repro.sql.analyzer import Analyzer
from repro.sql.parser import parse_statement
from repro.synthetic import SyntheticConfig, load_synthetic
from repro.synthetic.queries import q1_sql, q2_sql


def _populate(conn, rows=100):
    conn.execute("CREATE TABLE t (x int, y int)")
    conn.insert("t", [(i, i % 10) for i in range(rows)])


class TestAnalyze:
    def test_analyze_collects_column_stats(self):
        conn = connect()
        conn.execute("CREATE TABLE t (x int, y int)")
        conn.insert("t", [(1, 1), (2, 1), (3, None), (3, 2)])
        conn.execute("ANALYZE t")
        stats = conn.catalog.stats.get("t")
        assert stats.row_count == 4
        x = stats.column("x")
        assert x.n_distinct == 3
        assert (x.min_value, x.max_value) == (1, 3)
        y = stats.column("y")
        assert y.null_frac == pytest.approx(0.25)
        assert y.mcv_complete
        assert y.eq_fraction(1) == pytest.approx(0.5)
        assert y.eq_fraction(7) == 0.0

    def test_analyze_all_tables(self):
        conn = connect()
        conn.execute("CREATE TABLE a (x int)")
        conn.execute("CREATE TABLE b (x int)")
        conn.execute("ANALYZE")
        assert sorted(conn.catalog.stats.tables()) == ["a", "b"]

    def test_analyze_bumps_stats_version_not_ddl_version(self):
        conn = connect()
        conn.execute("CREATE TABLE t (x int)")
        version = conn.catalog.version
        stats_version = conn.catalog.stats_version
        conn.execute("ANALYZE t")
        assert conn.catalog.version == version
        assert conn.catalog.stats_version == stats_version + 1

    def test_dropping_table_discards_stats(self):
        conn = connect()
        _populate(conn)
        conn.execute("ANALYZE t")
        conn.execute("DROP TABLE t")
        assert conn.catalog.stats.get("t") is None


class TestIndexDDL:
    def test_create_and_drop_index(self):
        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x)")
        index = conn.catalog.get_index("t_x")
        assert index.kind == "hash" and not index.unique
        assert index.lookup(7) == [(7, 7)]
        conn.execute("DROP INDEX t_x")
        with pytest.raises(CatalogError):
            conn.catalog.get_index("t_x")

    def test_sorted_index_via_using(self):
        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x) USING sorted")
        index = conn.catalog.get_index("t_x")
        assert index.kind == "sorted"
        assert index.lookup_range(3, 5) == [(3, 3), (4, 4), (5, 5)]

    def test_unique_index_rejects_duplicates(self):
        conn = connect()
        conn.execute("CREATE TABLE u (x int)")
        conn.execute("INSERT INTO u VALUES (1), (2)")
        conn.execute("CREATE UNIQUE INDEX u_x ON u (x)")
        with pytest.raises(CatalogError):
            conn.execute("INSERT INTO u VALUES (2)")
        # the failed row must not linger in the table
        assert len(conn.catalog.get("u").rows) == 2

    def test_unique_violation_rolls_back_sibling_indexes(self):
        """Regression: with two unique indexes, a violation on the second
        must back the row out of the first — no ghost entries that block
        later legitimate inserts."""
        conn = connect()
        conn.execute("CREATE TABLE u (a int, b int)")
        conn.execute("INSERT INTO u VALUES (1, 1)")
        conn.execute("CREATE UNIQUE INDEX u_a ON u (a)")
        conn.execute("CREATE UNIQUE INDEX u_b ON u (b)")
        with pytest.raises(CatalogError):
            conn.execute("INSERT INTO u VALUES (2, 1)")   # b collides
        conn.execute("INSERT INTO u VALUES (2, 2)")       # must succeed
        assert conn.catalog.get_index("u_a").lookup(2) == [(2, 2)]

    def test_unique_index_on_duplicate_data_rejected(self):
        conn = connect()
        conn.execute("CREATE TABLE u (x int)")
        conn.execute("INSERT INTO u VALUES (1), (1)")
        with pytest.raises(CatalogError):
            conn.execute("CREATE UNIQUE INDEX u_x ON u (x)")

    def test_index_ddl_bumps_catalog_version(self):
        conn = connect()
        _populate(conn)
        version = conn.catalog.version
        conn.execute("CREATE INDEX t_x ON t (x)")
        assert conn.catalog.version == version + 1
        conn.execute("DROP INDEX t_x")
        assert conn.catalog.version == version + 2

    def test_unknown_index_kind_rejected(self):
        conn = connect()
        _populate(conn)
        with pytest.raises(CatalogError):
            conn.execute("CREATE INDEX t_x ON t (x) USING btree")

    def test_duplicate_index_name_rejected(self):
        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x)")
        with pytest.raises(CatalogError):
            conn.execute("CREATE INDEX t_x ON t (y)")


class TestSoftKeywords:
    """index/unique/using/analyze stay usable as identifiers — schemas
    that predate the DDL additions keep parsing."""

    def test_columns_named_after_soft_keywords(self):
        conn = connect()
        conn.execute("CREATE TABLE t (index int, unique int, using int)")
        conn.execute("INSERT INTO t VALUES (1, 2, 3)")
        assert conn.execute("SELECT index, unique, using FROM t").rows \
            == [(1, 2, 3)]
        assert conn.execute("SELECT t.index FROM t WHERE unique = 2").rows \
            == [(1,)]

    def test_bare_aliases_named_after_soft_keywords(self):
        conn = connect()
        conn.execute("CREATE TABLE t (a int)")
        conn.execute("INSERT INTO t VALUES (3)")
        result = conn.execute("SELECT index.a index FROM t index")
        assert result.schema.names == ("index",)
        assert result.rows == [(3,)]

    def test_table_named_analyze(self):
        conn = connect()
        conn.execute("CREATE TABLE analyze (x int)")
        conn.execute("INSERT INTO analyze VALUES (1)")
        assert conn.execute("SELECT x FROM analyze").rows == [(1,)]
        conn.execute("ANALYZE analyze")
        assert conn.catalog.stats.get("analyze").row_count == 1

    def test_alias_named_unique(self):
        conn = connect()
        conn.execute("CREATE TABLE t (x int)")
        conn.execute("INSERT INTO t VALUES (7)")
        result = conn.execute("SELECT x AS unique FROM t")
        assert result.schema.names == ("unique",)


class TestIndexMaintenance:
    def test_insert_and_delete_maintain_indexes(self):
        # Committed DML swaps in fresh copy-on-write index objects
        # (pinned snapshots keep the old ones), so the maintained index
        # is re-fetched from the catalog after each statement.
        conn = connect()
        _populate(conn, rows=10)
        conn.execute("CREATE INDEX t_x ON t (x)")
        index = conn.catalog.get_index("t_x")
        conn.execute("INSERT INTO t VALUES (100, 0)")
        assert index.lookup(100) == []     # pre-write object: unchanged
        index = conn.catalog.get_index("t_x")
        assert index.lookup(100) == [(100, 0)]
        conn.execute("DELETE FROM t WHERE x = 100")
        index = conn.catalog.get_index("t_x")
        assert index.lookup(100) == []
        conn.execute("DELETE FROM t")
        assert len(conn.catalog.get_index("t_x")) == 0

    def test_direct_mutation_detected_at_scan_time(self):
        """Bulk loaders mutate relations directly; index lookups must
        rebuild rather than return stale rows."""
        conn = connect()
        _populate(conn, rows=10)
        conn.execute("CREATE INDEX t_x ON t (x)")
        conn.catalog.get("t").insert((500, 1))   # bypasses the session
        rows = conn.execute("SELECT y FROM t WHERE x = 500")
        assert rows.rows == [(1,)]

    def test_register_replace_rebuilds_index(self):
        from repro.relation import Relation
        conn = connect()
        _populate(conn, rows=5)
        conn.execute("CREATE INDEX t_x ON t (x)")
        replacement = Relation(conn.catalog.get("t").schema,
                               [(42, 0), (43, 1)])
        conn.catalog.register("t", replacement, replace=True)
        assert conn.catalog.get_index("t_x").lookup(42) == [(42, 0)]

    def test_register_replace_unique_violation_is_atomic(self):
        """If the replacement data violates a unique index, the whole
        registration must fail with the old table and index intact."""
        from repro.relation import Relation

        conn = connect()
        conn.execute("CREATE TABLE t (x int)")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        conn.execute("CREATE UNIQUE INDEX t_x ON t (x)")
        bad = Relation(conn.catalog.get("t").schema, [(5,), (5,)])
        with pytest.raises(CatalogError):
            conn.catalog.register("t", bad, replace=True)
        assert conn.catalog.get("t").rows == [(1,), (2,)]
        assert conn.execute("SELECT x FROM t WHERE x = 2").rows == [(2,)]

    def test_null_literal_comparisons_estimate_zero(self):
        conn = connect()
        _populate(conn)
        conn.execute("ANALYZE t")
        for predicate in ("x = NULL", "x <> NULL", "x < NULL"):
            assert conn.estimate_rows(
                f"SELECT x FROM t WHERE {predicate}") == 0.0

    def test_register_replace_with_changed_schema(self):
        """Replacing a table with a narrower/reshaped relation must
        re-resolve index positions (and drop indexes whose column is
        gone) instead of rebuilding against stale offsets."""
        from repro.relation import Relation
        from repro.schema import Attribute, Schema

        conn = connect()
        _populate(conn, rows=5)
        conn.execute("CREATE INDEX t_x ON t (x)")
        conn.execute("CREATE INDEX t_y ON t (y)")
        version = conn.catalog.version
        reshaped = Relation(Schema([Attribute("x")]), [(7,), (8,)])
        conn.catalog.register("t", reshaped, replace=True)
        assert conn.catalog.version > version
        assert conn.catalog.get_index("t_x").lookup(7) == [(7,)]
        with pytest.raises(CatalogError):
            conn.catalog.get_index("t_y")   # its column no longer exists


class TestIndexPlans:
    def test_equality_lookup_plans_index_scan(self):
        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x)")
        text = conn.explain_physical("SELECT y FROM t WHERE x = 7")
        assert "IndexScan" in text and "SeqScan" not in text

    def test_unindexed_table_still_plans_seqscan(self):
        conn = connect()
        _populate(conn)
        text = conn.explain_physical("SELECT y FROM t WHERE x = 7")
        assert "SeqScan" in text and "IndexScan" not in text

    def test_index_and_seqscan_plans_agree(self):
        """Acceptance: identical rows from the indexed plan and the
        un-indexed plan, on both engines."""
        sql = "SELECT y FROM t WHERE x = 7"
        plain = connect()
        _populate(plain)
        expected = plain.sql(sql).rows
        indexed = connect(catalog=plain.catalog)
        indexed.execute("CREATE INDEX t_x ON t (x)")
        assert indexed.sql(sql).rows == expected
        materializing = connect(engine="materializing",
                                catalog=plain.catalog)
        assert materializing.sql(sql).rows == expected

    def test_range_scan_uses_sorted_index(self):
        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x) USING sorted")
        text = conn.explain_physical("SELECT y FROM t WHERE x < 5")
        assert "IndexScan" in text
        rows = conn.execute("SELECT x FROM t WHERE x < 5")
        assert sorted(rows.rows) == [(i,) for i in range(5)]

    def test_hash_index_does_not_serve_ranges(self):
        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x)")   # hash
        text = conn.explain_physical("SELECT y FROM t WHERE x < 5")
        assert "SeqScan" in text and "IndexScan" not in text

    def test_use_indexes_knob_disables_index_plans(self):
        conn = connect(use_indexes=False)
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x)")
        text = conn.explain_physical("SELECT y FROM t WHERE x = 7")
        assert "SeqScan" in text and "IndexScan" not in text

    def test_use_indexes_toggle_invalidates_cached_plan(self):
        """The knob is part of the plan-cache key: toggling it must not
        serve a plan lowered under the other setting."""
        from repro.engine.physical import IndexScan, SeqScan

        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x)")
        sql = "SELECT y FROM t WHERE x = 7"
        conn.execute(sql)
        indexed = conn.plan_cache.peek(conn._plan_key(sql, None))
        assert any(isinstance(node, IndexScan)
                   for node in indexed.physical.nodes())
        conn.config.use_indexes = False
        conn.execute(sql)
        plain = conn.plan_cache.peek(conn._plan_key(sql, None))
        assert plain is not indexed
        assert any(isinstance(node, SeqScan)
                   for node in plain.physical.nodes())

    def test_guarded_type_mismatch_not_index_extracted(self):
        """With a guard conjunct present, a type-mismatched equality must
        not be pulled into an eager IndexScan probe — both plans return
        [] because the guard filters every row first."""
        conn = connect()
        conn.execute("CREATE TABLE g (a int, k int)")
        conn.insert("g", [(i, i) for i in range(100)])
        conn.execute("CREATE INDEX g_k ON g (k)")
        conn.execute("ANALYZE g")
        sql = "SELECT a FROM g WHERE a = -1 AND k = 'x'"
        assert conn.execute(sql).rows == []
        plain = connect(use_indexes=False, catalog=conn.catalog)
        assert plain.sql(sql).rows == []

    def test_parameterized_lookup_through_cached_index_plan(self):
        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x)")
        statement = conn.prepare("SELECT y FROM t WHERE x = ?")
        assert statement.execute((7,)).rows == [(7,)]
        assert statement.execute((8,)).rows == [(8,)]
        assert conn.last_stats.index_scans >= 1

    def test_small_probe_big_build_plans_index_join(self):
        conn = connect()
        conn.execute("CREATE TABLE big (k int, v int)")
        conn.insert("big", [(i, i % 7) for i in range(4000)])
        conn.execute("CREATE TABLE probe (k int)")
        conn.insert("probe", [(i * 100,) for i in range(10)])
        conn.execute("CREATE UNIQUE INDEX big_k ON big (k)")
        conn.execute("ANALYZE")
        sql = "SELECT p.k, b.v FROM probe p JOIN big b ON p.k = b.k"
        assert "IndexNestedLoopJoin" in conn.explain_physical(sql)
        rows = conn.execute(sql)
        assert len(rows.rows) == 10
        assert conn.last_stats.index_nl_joins >= 1
        # the same join without the index hash-joins and agrees
        baseline = connect(use_indexes=False, catalog=conn.catalog)
        assert Counter(baseline.sql(sql).rows) == Counter(rows.rows)
        assert baseline.last_stats.hash_joins >= 1


class TestErrorSemantics:
    def test_conjunct_ordering_preserves_guard_patterns(self):
        """Reordering must never move an error-capable conjunct ahead of
        its guard: ``a <> 0 AND 10/a > 1`` stays division-safe."""
        conn = connect()
        conn.execute("CREATE TABLE t (a int)")
        conn.execute("INSERT INTO t VALUES (0), (1), (2)")
        conn.execute("ANALYZE t")
        rows = conn.execute("SELECT a FROM t WHERE a <> 0 AND 10/a > 1")
        assert sorted(rows.rows) == [(1,), (2,)]

    def test_mixed_type_comparison_stays_behind_guard(self):
        """A comparison whose operand types are not statically known to
        match may raise at runtime, so it must not be reordered ahead of
        the guard that short-circuits it — both engines return []."""
        conn = connect()
        conn.execute("CREATE TABLE t (a int, b text)")
        conn.execute("INSERT INTO t VALUES (5, 'x')")
        conn.execute("ANALYZE t")
        assert conn.execute("SELECT a FROM t WHERE a <> 5 AND b < 10"
                            ).rows == []
        baseline = connect(engine="materializing", catalog=conn.catalog)
        assert baseline.sql("SELECT a FROM t WHERE a <> 5 AND b < 10"
                            ).rows == []

    def test_incomparable_join_probe_matches_hash_join(self):
        """A join key incomparable with a sorted index's keys must
        produce the HashJoin's no-match, not a raw TypeError."""
        conn = connect()
        conn.execute("CREATE TABLE big (k int, v int)")
        conn.insert("big", [(i, i) for i in range(3000)])
        conn.execute("CREATE TABLE p (k text)")
        conn.execute("INSERT INTO p VALUES ('x')")
        conn.execute("CREATE INDEX big_k ON big (k) USING sorted")
        conn.execute("ANALYZE")
        sql = "SELECT p.k FROM p JOIN big b ON p.k = b.k"
        assert "IndexNestedLoopJoin" in conn.explain_physical(sql)
        assert conn.execute(sql).rows == []
        baseline = connect(use_indexes=False, catalog=conn.catalog)
        assert baseline.sql(sql).rows == []

    def test_raise_capable_key_expression_not_index_extracted(self):
        """A key like ``k = 1/0`` must stay inside the guarded filter —
        with and without an index the query returns [] (the other
        conjunct filters every row first)."""
        conn = connect()
        conn.execute("CREATE TABLE t (a int, k int)")
        conn.insert("t", [(i, i) for i in range(50)])
        conn.execute("CREATE INDEX t_k ON t (k)")
        conn.execute("ANALYZE t")
        sql = "SELECT k FROM t WHERE a = 9999 AND k = 1/0"
        assert "IndexScan" not in conn.explain_physical(sql)
        assert conn.execute(sql).rows == []

    def test_composite_equi_join_stays_hash_join(self):
        """Multi-key equi-joins keep hash semantics (composite keys of
        mismatched types never match, never raise) — no index join."""
        conn = connect()
        conn.execute("CREATE TABLE big (k int, t text)")
        conn.insert("big", [(i, str(i)) for i in range(400)])
        conn.execute("CREATE TABLE p (k int, n int)")
        conn.execute("INSERT INTO p VALUES (1, 1)")
        conn.execute("CREATE INDEX big_k ON big (k)")
        conn.execute("ANALYZE")
        sql = ("SELECT p.k FROM p JOIN big b "
               "ON p.k = b.k AND p.n = b.t")
        assert "IndexNestedLoopJoin" not in conn.explain_physical(sql)
        assert conn.execute(sql).rows == []

    def test_incomparable_sorted_index_insert_is_catalog_error(self):
        """A type-mismatched key must surface as CatalogError (so the
        session rolls the row back), not a raw TypeError."""
        conn = connect()
        conn.execute("CREATE TABLE t (a int)")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        conn.execute("CREATE INDEX t_a ON t (a) USING sorted")
        with pytest.raises(CatalogError):
            conn.insert("t", [("x",)])
        assert len(conn.catalog.get("t").rows) == 2   # rolled back
        assert conn.execute("SELECT a FROM t WHERE a = 2").rows == [(2,)]

    def test_scalar_sublink_stays_behind_its_guard(self):
        """A raise-capable scalar sublink must not be reordered ahead of
        the conjunct that guards it."""
        conn = connect()
        conn.execute("CREATE TABLE r (a int, b int)")
        conn.execute("INSERT INTO r VALUES (0, 10), (5, 20)")
        conn.execute("CREATE TABLE s (k int, x int)")
        conn.execute("INSERT INTO s VALUES (0, 1), (0, 2), (5, 7)")
        conn.execute("ANALYZE")
        rows = conn.execute(
            "SELECT b FROM r WHERE a <> 0 AND 7 = "
            "(SELECT x FROM s WHERE k = a)")
        assert rows.rows == [(20,)]

    def test_incomparable_hash_equality_matches_seqscan_error(self):
        """A hash-index equality probe with a type-mismatched key must
        raise like the scan plan, not silently return no rows."""
        from repro.errors import ExpressionError

        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x)")
        statement = conn.prepare("SELECT y FROM t WHERE x = ?")
        with pytest.raises(ExpressionError):
            statement.execute(("zzz",))

    def test_bool_probe_of_int_hash_index_matches_seqscan_error(self):
        """hash(True) == hash(1), but SQL says int and bool are
        incomparable — the hash hit must not leak Python equality."""
        from repro.errors import ExpressionError

        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x)")
        with pytest.raises(ExpressionError):
            conn.execute("SELECT y FROM t WHERE x = TRUE")
        plain = connect(use_indexes=False, catalog=conn.catalog)
        with pytest.raises(ExpressionError):
            plain.execute("SELECT y FROM t WHERE x = TRUE")

    def test_incomparable_range_key_matches_seqscan_error(self):
        """The IndexScan plan must raise the same library error as the
        SeqScan plan for an incomparable operand — not a bisect
        TypeError."""
        from repro.errors import ExpressionError

        conn = connect()
        _populate(conn)
        conn.execute("CREATE INDEX t_x ON t (x) USING sorted")
        statement = conn.prepare("SELECT y FROM t WHERE x < ?")
        with pytest.raises(ExpressionError):
            statement.execute(("zzz",))


class TestExplainEstimates:
    def test_explain_shows_estimates(self):
        conn = connect()
        _populate(conn)
        conn.execute("ANALYZE t")
        text = conn.explain_physical("SELECT y FROM t WHERE y = 3")
        assert "estimated" in text and "cost" in text

    def test_explain_analyze_shows_estimated_vs_actual(self):
        conn = connect()
        _populate(conn)
        conn.execute("ANALYZE t")
        text = conn.explain_analyze("SELECT y FROM t WHERE y = 3")
        assert "est 10 rows" in text      # 100 rows, 10 distinct y values
        assert "actual rows=10" in text

    def test_filter_conjuncts_ordered_by_selectivity(self):
        conn = connect()
        conn.execute("CREATE TABLE o (x int, y int)")
        conn.insert("o", [(i, i % 50) for i in range(100)])
        conn.execute("ANALYZE o")
        # equality (sel 1/50) must run before the loose range (sel ~1)
        text = conn.explain_physical("SELECT x FROM o WHERE x > 2 AND y = 5")
        filter_line = next(line for line in text.splitlines()
                           if "Filter" in line)
        assert filter_line.index("y = 5") < filter_line.index("x > 2")

    def test_estimate_rows_api(self):
        conn = connect()
        _populate(conn)
        conn.execute("ANALYZE t")
        assert conn.estimate_rows("SELECT * FROM t") == 100
        estimate = conn.estimate_rows("SELECT * FROM t WHERE y = 3")
        assert estimate == pytest.approx(10.0)


class TestJoinOrdering:
    def test_three_way_join_parity_and_order(self):
        """The greedy pass must keep results identical and start the
        chain from the smallest relation."""
        conn = connect()
        conn.execute("CREATE TABLE fact (a int, b int)")
        conn.insert("fact", [(i % 20, i % 30) for i in range(600)])
        conn.execute("CREATE TABLE dim1 (a int)")
        conn.insert("dim1", [(i,) for i in range(20)])
        conn.execute("CREATE TABLE tiny (b int)")
        conn.insert("tiny", [(0,), (1,)])
        conn.execute("ANALYZE")
        sql = ("SELECT f.a, f.b FROM fact f, dim1 d, tiny t "
               "WHERE f.a = d.a AND f.b = t.b")
        baseline = connect(engine="materializing", catalog=conn.catalog)
        assert Counter(conn.sql(sql).rows) == Counter(baseline.sql(sql).rows)
        text = conn.explain_physical(sql)
        scans = [line for line in text.splitlines()
                 if "Scan" in line or "probe" in line]
        assert any("tiny" in line for line in scans)

    def test_reorder_preserves_column_order(self):
        conn = connect()
        conn.execute("CREATE TABLE a (x int)")
        conn.insert("a", [(i,) for i in range(50)])
        conn.execute("CREATE TABLE b (y int)")
        conn.insert("b", [(i,) for i in range(5)])
        conn.execute("CREATE TABLE c (z int)")
        conn.insert("c", [(1,)])
        rows = conn.execute(
            "SELECT x, y, z FROM a, b, c WHERE x = y AND y = z")
        assert rows.schema.names == ("x", "y", "z")
        assert rows.rows == [(1, 1, 1)]


def _auto_decisions(conn, sql):
    statement = parse_statement(sql)
    plan = Analyzer(conn.catalog).analyze(statement)
    rewriter = ProvenanceRewriter(conn.catalog, "auto", conn.config)
    rewriter.rewrite_query(plan)
    return rewriter.planner.decisions


class TestAutoStrategySelection:
    """Acceptance: ``auto`` picks at least two different strategies
    across the fig8/fig9 synthetic size grid."""

    def test_auto_varies_with_size_on_fig8_grid(self):
        picks = {}
        for size in (8, 2000):
            db = load_synthetic(SyntheticConfig(size, size, seed=0))
            conn = db.connection
            picks[("q1", size)] = _auto_decisions(
                conn, q1_sql(size, size))[0]
            picks[("q2", size)] = _auto_decisions(
                conn, q2_sql(size, size))[0]
        # Unn-eligible q1 hash-joins at every size
        assert picks[("q1", 8)] == picks[("q1", 2000)] == "unn"
        # q2 (inequality ALL): Gen's minimal plan on small inputs, Left's
        # materialized join once the quadratic term dominates
        assert picks[("q2", 8)] == "gen"
        assert picks[("q2", 2000)] == "left"
        assert len(set(picks.values())) >= 2

    def test_auto_results_match_fixed_strategies(self):
        size = 30
        db = load_synthetic(SyntheticConfig(size, size, seed=1))
        for sql in (q1_sql(size, size, seed=1), q2_sql(size, size, seed=1)):
            prov_sql = "SELECT PROVENANCE " + sql[len("SELECT "):]
            auto_rows = Counter(db.sql(prov_sql, strategy="auto").rows)
            gen_rows = Counter(db.sql(prov_sql, strategy="gen").rows)
            assert auto_rows == gen_rows

    def test_correlated_still_goes_to_gen(self):
        conn = connect()
        conn.execute("CREATE TABLE r (a int, b int)")
        conn.insert("r", [(i, i) for i in range(50)])
        conn.execute("CREATE TABLE s (c int, d int)")
        conn.insert("s", [(i, i) for i in range(50)])
        decisions = _auto_decisions(
            conn, "SELECT a FROM r WHERE EXISTS "
                  "(SELECT * FROM s WHERE c = b)")
        assert decisions == ["gen"]
