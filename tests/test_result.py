"""The streaming Result object: lazy batches, Relation compatibility,
DB-API metadata, provenance witnesses, and the plan-once executemany."""

from __future__ import annotations

import pytest

from repro import InterfaceError, Relation, Result, connect


@pytest.fixture
def conn():
    connection = connect(batch_size=4)    # small batches: force streaming
    cur = connection.cursor()
    cur.execute("CREATE TABLE r (a int, b int)")
    cur.executemany("INSERT INTO r VALUES (?, ?)",
                    [(1, 1), (2, 1), (3, 2)])
    cur.execute("CREATE TABLE s (c int, d int)")
    cur.executemany("INSERT INTO s VALUES (?, ?)",
                    [(1, 3), (2, 4), (4, 5)])
    return connection


class TestStreaming:
    def test_result_is_a_relation(self, conn):
        result = conn.execute("SELECT a FROM r")
        assert isinstance(result, Result)
        assert isinstance(result, Relation)
        assert result.schema.names == ("a",)

    def test_batches_stream_lazily(self, conn):
        conn.insert("r", [(i, 0) for i in range(100)])
        result = conn.execute("SELECT a FROM r")
        assert result.streaming            # first batch only so far
        it = iter(result)
        for _ in range(5):
            next(it)
        assert result.streaming            # still not drained
        assert len(result.rows) == 103     # .rows drains the rest
        assert not result.streaming

    def test_close_abandons_remaining_rows(self, conn):
        conn.insert("r", [(i, 0) for i in range(100)])
        result = conn.execute("SELECT a FROM r")
        buffered = len(result.fetch(6))
        result.close()
        assert not result.streaming
        assert len(result.rows) < 103      # the tail was never pulled
        assert len(result.rows) >= buffered

    def test_context_manager_closes(self, conn):
        with conn.execute("SELECT a FROM r") as result:
            assert result.fetch(1)
        assert not result.streaming

    def test_iteration_and_reiteration(self, conn):
        result = conn.execute("SELECT a FROM r ORDER BY a")
        assert list(result) == [(1,), (2,), (3,)]
        assert list(result) == [(1,), (2,), (3,)]   # buffered: repeatable

    def test_relation_helpers_still_work(self, conn):
        result = conn.execute("SELECT a, b FROM r")
        assert result.bag_equal(Relation.from_columns(
            ("a", "b"), [(1, 1), (2, 1), (3, 2)]))
        assert "a | b" in result.pretty().splitlines()[0]

    def test_execution_errors_surface_at_execute(self, conn):
        from repro import ExecutionError
        # scalar sublink with >1 row fails at runtime; the eager first
        # batch means execute() itself raises, not a later fetch
        with pytest.raises(ExecutionError):
            conn.execute("SELECT (SELECT c FROM s) AS v FROM r")

    def test_dbapi_metadata(self, conn):
        result = conn.execute("SELECT a, b FROM r")
        assert [entry[0] for entry in result.description] == ["a", "b"]
        assert result.rowcount == 3
        assert {"a", "b"} == set(result.to_dicts()[0])

    def test_one_shot_helpers_return_completed_results(self, conn):
        result = conn.sql("SELECT a FROM r")
        assert isinstance(result, Result)
        assert not result.streaming        # benchmarks time a full drain


class TestCursorStreaming:
    def test_fetch_interfaces_pull_incrementally(self, conn):
        conn.insert("r", [(i, 9) for i in range(20)])
        cur = conn.cursor()
        cur.execute("SELECT a FROM r WHERE b = 9")
        assert cur.fetchone() == (0,)
        assert cur.result.streaming
        assert len(cur.fetchmany(3)) == 3
        assert len(cur.fetchall()) == 16
        assert cur.fetchone() is None

    def test_new_execute_discards_pending_stream(self, conn):
        conn.insert("r", [(i, 9) for i in range(50)])
        cur = conn.cursor()
        cur.execute("SELECT a FROM r")
        first = cur.result
        cur.execute("SELECT c FROM s")
        assert not first.streaming         # closed, not leaked
        assert len(cur.fetchall()) == 3


class TestExecutemanyPlansOnce:
    def test_insert_executemany_parses_once(self, conn):
        parses = 0
        original = type(conn)._parse

        def counting(self, sql):
            nonlocal parses
            parses += 1
            return original(self, sql)

        type(conn)._parse = counting
        try:
            cur = conn.cursor()
            cur.executemany("INSERT INTO r VALUES (?, ?)",
                            [(10, 1), (11, 1), (12, 1), (13, 1)])
        finally:
            type(conn)._parse = original
        assert parses == 1                 # the regression gate
        assert cur.rowcount == 4

    def test_select_executemany_hits_plan_cache(self, conn):
        cur = conn.cursor()
        hits_before = conn.plan_cache.hits
        misses_before = conn.plan_cache.misses
        cur.executemany("SELECT a FROM r WHERE a = ?",
                        [(1,), (2,), (3,), (1,)])
        assert conn.plan_cache.misses == misses_before + 1  # planned once
        assert conn.plan_cache.hits >= hits_before + 3      # reused after
        assert cur.rowcount == 4           # one row per binding

    def test_prepared_executemany_single_transaction(self, conn):
        ps = conn.prepare("INSERT INTO s VALUES (?, ?)")
        assert ps.executemany([(7, 7), (8, 8), (9, 9)]) == 3
        assert (8, 8) in conn.execute("SELECT * FROM s").rows


class TestProvenanceAccessors:
    def test_provenance_columns_split(self, conn):
        result = conn.execute(
            "SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s)")
        assert result.is_provenance
        assert result.regular_columns == ("a",)
        assert result.provenance_columns == (
            "prov_r_a", "prov_r_b", "prov_s_c", "prov_s_d")

    def test_plain_result_has_no_witnesses(self, conn):
        result = conn.execute("SELECT a FROM r")
        assert not result.is_provenance
        with pytest.raises(InterfaceError, match="no provenance"):
            result.witnesses()

    def test_witnesses_group_contributing_inputs(self, conn):
        result = conn.execute(
            "SELECT PROVENANCE a FROM r WHERE a = ANY (SELECT c FROM s)")
        witnesses = result.witnesses()
        by_tuple = {w.tuple: w for w in witnesses}
        assert set(by_tuple) == {(1,), (2,)}
        one = by_tuple[(1,)]
        assert len(one) == 1               # one contributing combination
        combo = one.inputs[0]
        assert [c.table for c in combo] == ["r", "s"]
        assert combo[0].row == (1, 1)      # the r tuple
        assert combo[1].row == (1, 3)      # the witnessing s tuple
        assert result.witnesses(0) in witnesses

    def test_witness_index_out_of_range(self, conn):
        result = conn.execute("SELECT PROVENANCE a FROM r WHERE a = 1")
        with pytest.raises(InterfaceError, match="out of range"):
            result.witnesses(9)

    def test_multiple_witness_combinations(self, conn):
        conn.execute("INSERT INTO s VALUES (1, 99)")
        result = conn.execute(
            "SELECT PROVENANCE a FROM r "
            "WHERE a = ANY (SELECT c FROM s)")
        one = result.witnesses()[0]
        assert one.tuple == (1,)
        assert len(one) == 2               # two s tuples witness a=1
        s_rows = {combo[1].row for combo in one.inputs}
        assert s_rows == {(1, 3), (1, 99)}

    def test_strategy_recorded(self, conn):
        result = conn.sql("SELECT PROVENANCE (gen) a FROM r WHERE a = 1")
        assert result.strategy == "gen"
        assert result.is_provenance
