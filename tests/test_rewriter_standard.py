"""Standard-operator rewrite rules R1-R5 plus set operations and DISTINCT.

The invariant checked throughout: ``schema(q+) = schema(q) ++ prov names``
and the *original* part of q+ equals q after duplicate elimination
(result preservation, the first half of Theorem 4).
"""

import pytest

from repro import Database, RewriteError
from repro.provenance import ProvenanceRewriter
from repro.engine import Executor



def preservation(db: Database, sql: str, strategy: str = "auto"):
    """Check result preservation and return (plain, provenance) rows."""
    plain = db.sql(sql)
    prov = db.provenance(sql, strategy=strategy)
    width = len(plain.schema)
    assert list(prov.schema.names[:width]) == list(plain.schema.names)
    original_part = {tuple(row[:width]) for row in prov.rows}
    assert original_part == set(plain.rows), sql
    return plain, prov


class TestBaseAndProjection:
    def test_r1_base_relation(self, figure3_db):
        prov = figure3_db.provenance("SELECT * FROM r")
        assert list(prov.schema.names) == [
            "a", "b", "prov_r_a", "prov_r_b"]
        assert sorted(prov.rows) == [
            (1, 1, 1, 1), (2, 1, 2, 1), (3, 2, 3, 2)]

    def test_r2_projection_with_expression(self, figure3_db):
        prov = figure3_db.provenance("SELECT a + b AS s FROM r")
        assert sorted(prov.rows) == [
            (2, 1, 1), (3, 2, 1), (5, 3, 2)]

    def test_distinct_becomes_duplicate_preserving(self, figure3_db):
        # two r tuples share b = 1: DISTINCT output has one row, the
        # provenance relation one row per contributor
        plain = figure3_db.sql("SELECT DISTINCT b FROM r")
        prov = figure3_db.provenance("SELECT DISTINCT b FROM r")
        assert len(plain.rows) == 2
        assert sorted(prov.rows) == [
            (1, 1, 1), (1, 2, 1), (2, 3, 2)]

    def test_same_table_twice_gets_distinct_prov_names(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT x.a FROM r x, r y WHERE x.a = y.a AND x.a = 1")
        names = list(prov.schema.names)
        assert names == ["a", "prov_r_a", "prov_r_b", "prov_r_a_1",
                         "prov_r_b_1"]


class TestSelectionAndJoin:
    def test_r3_selection(self, figure3_db):
        preservation(figure3_db, "SELECT * FROM r WHERE a >= 2")

    def test_r4_join_provenance_pairs(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT a, c FROM r, s WHERE a < c")
        # paper's q_ex (Section 3.1) with these relations
        assert len(prov.schema) == 2 + 2 + 2

    def test_left_join_null_padded_provenance(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT a, d FROM r LEFT JOIN s ON a = c")
        row_for_3 = [row for row in prov.rows if row[0] == 3]
        assert row_for_3 == [(3, None, 3, 2, None, None)]


class TestAggregation:
    def test_r5_group_provenance(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT b, sum(a) AS s FROM r GROUP BY b")
        assert sorted(prov.rows) == [
            (1, 3, 1, 1), (1, 3, 2, 1), (2, 3, 3, 2)]

    def test_r5_scalar_aggregate_all_rows_contribute(self, figure3_db):
        prov = figure3_db.provenance("SELECT sum(a) AS s FROM r")
        assert sorted(prov.rows) == [(6, 1, 1), (6, 2, 1), (6, 3, 2)]

    def test_r5_empty_input_keeps_result_row(self, figure3_db):
        figure3_db.execute("CREATE TABLE empty (e int)")
        prov = figure3_db.provenance(
            "SELECT count(*) AS n FROM empty")
        assert prov.rows == [(0, None)]

    def test_r5_null_group_key(self, figure3_db):
        figure3_db.execute("CREATE TABLE g (k int, v int)")
        figure3_db.execute(
            "INSERT INTO g VALUES (NULL, 1), (NULL, 2), (7, 3)")
        prov = figure3_db.provenance(
            "SELECT k, sum(v) AS s FROM g GROUP BY k")
        null_rows = [r for r in prov.rows if r[0] is None]
        # the =n join must bring both NULL-group contributors back
        assert sorted(r[3] for r in null_rows) == [1, 2]

    def test_aggregate_then_filter(self, figure3_db):
        preservation(
            figure3_db,
            "SELECT b, count(*) AS n FROM r GROUP BY b HAVING count(*) > 1")


class TestSetOperations:
    def test_union_all_pads_other_side(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT a FROM r UNION ALL SELECT c FROM s")
        for row in prov.rows:
            from_r = row[1] is not None
            from_s = row[3] is not None
            assert from_r != from_s

    def test_union_distinct_result_preserved(self, figure3_db):
        preservation(figure3_db, "SELECT a FROM r UNION SELECT c FROM s")

    def test_intersect_joins_both_sides(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT a FROM r INTERSECT SELECT c FROM s")
        assert sorted(prov.rows) == [
            (1, 1, 1, 1, 3), (2, 2, 1, 2, 4)]

    def test_except_right_side_is_whole_relation(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT a FROM r EXCEPT SELECT c FROM s")
        # only a = 3 survives; every s tuple witnesses its absence
        assert {row[0] for row in prov.rows} == {3}
        assert len(prov.rows) == 3

    def test_except_empty_right_null_pads(self, figure3_db):
        figure3_db.execute("CREATE TABLE empty (e int)")
        prov = figure3_db.provenance(
            "SELECT a FROM r EXCEPT SELECT e FROM empty")
        assert all(row[-1] is None for row in prov.rows)
        assert len(prov.rows) == 3


class TestSortAndLimit:
    def test_sort_passes_through(self, figure3_db):
        prov = figure3_db.provenance("SELECT a FROM r ORDER BY a DESC")
        assert [row[0] for row in prov.rows] == [3, 2, 1]

    def test_limit_rejected(self, figure3_db):
        with pytest.raises(RewriteError, match="LIMIT"):
            figure3_db.provenance("SELECT a FROM r LIMIT 1")


class TestViewsAndDerivedTables:
    def test_provenance_through_view(self, figure3_db):
        figure3_db.create_view("big", "SELECT a, b FROM r WHERE a >= 2")
        prov = figure3_db.provenance("SELECT a FROM big")
        assert sorted(prov.rows) == [(2, 2, 1), (3, 3, 2)]

    def test_provenance_through_derived_table(self, figure3_db):
        prov = figure3_db.provenance(
            "SELECT t.s FROM (SELECT b, sum(a) AS s FROM r GROUP BY b) "
            "AS t WHERE t.s > 2")
        assert sorted(prov.rows) == [
            (3, 1, 1), (3, 2, 1), (3, 3, 2)]
