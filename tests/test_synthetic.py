"""Synthetic workload (Section 4.2.2): generator and query templates."""

import pytest

from repro.synthetic import (
    SyntheticConfig, load_synthetic, q1_sql, q2_sql, synthetic_rows,
)
from repro.synthetic.generator import B_STDDEV_PER_ROW


class TestGenerator:
    def test_deterministic(self):
        assert synthetic_rows(50, 3) == synthetic_rows(50, 3)

    def test_seed_varies(self):
        assert synthetic_rows(50, 1) != synthetic_rows(50, 2)

    def test_size(self):
        assert len(synthetic_rows(123, 0)) == 123

    def test_b_spread_grows_with_size(self):
        small = [abs(b) for _, b in synthetic_rows(100, 0)]
        large = [abs(b) for _, b in synthetic_rows(10000, 0)]
        assert max(large) > max(small) * 10

    def test_load_synthetic_tables(self):
        db = load_synthetic(SyntheticConfig(20, 30, seed=1))
        assert len(db.catalog.get("r1").rows) == 20
        assert len(db.catalog.get("r2").rows) == 30

    def test_different_tables_differ(self):
        db = load_synthetic(SyntheticConfig(20, 20, seed=1))
        assert db.catalog.get("r1").rows != db.catalog.get("r2").rows


class TestQueries:
    def test_q1_shape(self):
        sql = q1_sql(100, 200, seed=0)
        assert "= ANY" in sql and "BETWEEN" in sql

    def test_q2_shape(self):
        sql = q2_sql(100, 200, seed=0)
        assert "< ALL" in sql

    def test_templates_deterministic(self):
        assert q1_sql(100, 100, 5) == q1_sql(100, 100, 5)
        assert q1_sql(100, 100, 5) != q1_sql(100, 100, 6)

    def test_range_selects_nonempty_window_often(self):
        # over several seeds, the range predicate keeps some tuples
        hits = 0
        for seed in range(5):
            db = load_synthetic(SyntheticConfig(500, 500, seed))
            sql = q1_sql(500, 500, seed)
            prefix = sql.split("AND a = ANY")[0].replace(
                "SELECT a, b FROM r1 WHERE", "")
            rows = db.sql(f"SELECT count(*) AS n FROM r1 "
                          f"WHERE {prefix}").rows
            if rows[0][0] > 0:
                hits += 1
        assert hits >= 3

    @pytest.mark.parametrize("strategy", ("gen", "left", "move", "unn"))
    def test_q1_all_strategies_agree(self, strategy):
        db = load_synthetic(SyntheticConfig(120, 80, seed=2))
        sql = q1_sql(120, 80, seed=2)
        reference = sorted(db.provenance(sql, strategy="gen").rows)
        assert sorted(db.provenance(sql, strategy=strategy).rows) == \
            reference

    @pytest.mark.parametrize("strategy", ("left", "move"))
    def test_q2_strategies_agree(self, strategy):
        db = load_synthetic(SyntheticConfig(120, 80, seed=2))
        sql = q2_sql(120, 80, seed=2)
        reference = sorted(db.provenance(sql, strategy="gen").rows)
        assert sorted(db.provenance(sql, strategy=strategy).rows) == \
            reference

    def test_q2_rejects_unn(self):
        from repro import RewriteError
        db = load_synthetic(SyntheticConfig(30, 30, seed=2))
        with pytest.raises(RewriteError):
            db.provenance(q2_sql(30, 30, seed=2), strategy="unn")
