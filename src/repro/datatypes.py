"""SQL value model and three-valued logic (3VL).

The engine represents SQL values with plain Python objects:

============  =======================
SQL type      Python representation
============  =======================
``NULL``      ``None``
``INTEGER``   ``int``
``FLOAT``     ``float``
``TEXT``      ``str``
``BOOLEAN``   ``bool``
============  =======================

Dates are stored as ISO-8601 strings, which order correctly under string
comparison — exactly what TPC-H's date predicates need.

Truth values of conditions live in Kleene three-valued logic where SQL's
``NULL`` plays the role of *unknown*.  The helpers in this module implement
the 3VL connectives and the SQL comparison/arithmetic semantics (any
comparison or arithmetic involving ``NULL`` yields ``NULL``).
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Iterable

from .errors import ExpressionError

#: The SQL NULL value.  An alias for ``None`` kept for readability.
NULL = None


class SQLType(Enum):
    """Logical column types known to the engine.

    The engine is dynamically typed at runtime; :class:`SQLType` is used by
    schemas for documentation, by the analyzer for sanity checks and by the
    data generators.  ``ANY`` means "not statically known".
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"
    ANY = "any"

    @classmethod
    def parse(cls, name: str) -> "SQLType":
        """Map a SQL type name (``int``, ``varchar(55)``, ...) to a member."""
        normalized = name.strip().lower()
        if "(" in normalized:
            normalized = normalized[: normalized.index("(")]
        aliases = {
            "int": cls.INTEGER, "integer": cls.INTEGER, "bigint": cls.INTEGER,
            "smallint": cls.INTEGER, "serial": cls.INTEGER,
            "float": cls.FLOAT, "real": cls.FLOAT, "double": cls.FLOAT,
            "decimal": cls.FLOAT, "numeric": cls.FLOAT,
            "text": cls.TEXT, "varchar": cls.TEXT, "char": cls.TEXT,
            "string": cls.TEXT,
            "bool": cls.BOOLEAN, "boolean": cls.BOOLEAN,
            "date": cls.DATE, "timestamp": cls.DATE,
            "any": cls.ANY,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise ExpressionError(f"unknown SQL type: {name!r}") from None


def is_null(value: Any) -> bool:
    """Return True iff *value* is the SQL NULL."""
    return value is None


# ---------------------------------------------------------------------------
# Three-valued logic.  A truth value is True, False or None (unknown).
# ---------------------------------------------------------------------------

def tv_and(left: bool | None, right: bool | None) -> bool | None:
    """Kleene AND: false dominates, unknown propagates otherwise."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def tv_or(left: bool | None, right: bool | None) -> bool | None:
    """Kleene OR: true dominates, unknown propagates otherwise."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def tv_not(value: bool | None) -> bool | None:
    """Kleene NOT: unknown stays unknown."""
    if value is None:
        return None
    return not value


def tv_all(values: Iterable[bool | None]) -> bool | None:
    """Fold :func:`tv_and` over *values* (empty iterable is vacuously true)."""
    result: bool | None = True
    for value in values:
        result = tv_and(result, value)
        if result is False:
            return False
    return result


def tv_any(values: Iterable[bool | None]) -> bool | None:
    """Fold :func:`tv_or` over *values* (empty iterable is false)."""
    result: bool | None = False
    for value in values:
        result = tv_or(result, value)
        if result is True:
            return True
    return result


def is_true(value: bool | None) -> bool:
    """SQL WHERE semantics: only a definite True passes the filter."""
    return value is True


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------

_NUMERIC_TYPES = (int, float)


def _comparable(left: Any, right: Any) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, _NUMERIC_TYPES) and isinstance(right, _NUMERIC_TYPES):
        return True
    return type(left) is type(right)


def compare(op: str, left: Any, right: Any) -> bool | None:
    """Evaluate ``left op right`` under SQL semantics.

    Returns ``None`` (unknown) when either operand is NULL.  *op* is one of
    ``=  <>  <  <=  >  >=``.
    """
    if left is None or right is None:
        return None
    if not _comparable(left, right):
        raise ExpressionError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
            f" ({left!r} {op} {right!r})")
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExpressionError(f"unknown comparison operator {op!r}")


def null_safe_equal(left: Any, right: Any) -> bool:
    """The paper's ``=n`` operator: NULL compares equal to NULL.

    ``a =n b  <=>  a = b OR (a IS NULL AND b IS NULL)`` — always two-valued.
    """
    if left is None and right is None:
        return True
    if left is None or right is None:
        return False
    return left == right


def null_safe_row_equal(left: Iterable[Any], right: Iterable[Any]) -> bool:
    """Component-wise ``=n`` over two equally long rows."""
    return all(null_safe_equal(a, b) for a, b in zip(left, right))


NEGATED_COMPARISON = {
    "=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<",
}

FLIPPED_COMPARISON = {
    "=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<=",
}


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------

def arithmetic(op: str, left: Any, right: Any) -> Any:
    """Evaluate ``left op right`` for ``+ - * / %`` and string ``||``.

    NULL in, NULL out.  Division follows SQL: integer ``/`` on two ints is
    float division here (closer to PostgreSQL's numeric division used by
    TPC-H aggregates); division by zero raises.
    """
    if left is None or right is None:
        return None
    if op == "||":
        return str(left) + str(right)
    if not isinstance(left, _NUMERIC_TYPES) or isinstance(left, bool) or \
            not isinstance(right, _NUMERIC_TYPES) or isinstance(right, bool):
        raise ExpressionError(
            f"arithmetic {op!r} needs numeric operands, got "
            f"{left!r} and {right!r}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExpressionError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise ExpressionError("modulo by zero")
        return left % right
    raise ExpressionError(f"unknown arithmetic operator {op!r}")


def negate(value: Any) -> Any:
    """Unary minus with NULL propagation."""
    if value is None:
        return None
    if not isinstance(value, _NUMERIC_TYPES) or isinstance(value, bool):
        raise ExpressionError(f"cannot negate {value!r}")
    return -value


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_value(value: Any) -> str:
    """Human-readable rendering used by :meth:`Relation.pretty`."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def sql_literal(value: Any) -> str:
    """Render *value* as a SQL literal (used by the deparser)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)
