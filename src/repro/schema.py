"""Schemas: ordered lists of named, typed attributes.

A :class:`Schema` is immutable.  Attribute names are unique within a schema
— the SQL analyzer guarantees this by qualifying and, where necessary,
suffixing names before it builds algebra trees, and the provenance rewriter
relies on it (rewrite rules address attributes by name, never by position).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .datatypes import SQLType
from .errors import SchemaError


@dataclass(frozen=True)
class Attribute:
    """A named, typed column."""

    name: str
    type: SQLType = SQLType.ANY

    def renamed(self, name: str) -> "Attribute":
        """Return a copy of this attribute under a new name."""
        return Attribute(name, self.type)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}:{self.type.value}"


class Schema:
    """An immutable, ordered collection of :class:`Attribute` objects."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        index: dict[str, int] = {}
        for position, attribute in enumerate(attrs):
            if attribute.name in index:
                raise SchemaError(
                    f"duplicate attribute name {attribute.name!r} in schema "
                    f"{[a.name for a in attrs]}")
            index[attribute.name] = position
        self._attributes = attrs
        self._index = index

    @classmethod
    def of(cls, *names: str) -> "Schema":
        """Build an untyped schema from attribute names (test helper)."""
        return cls(Attribute(name) for name in names)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, SQLType]]) -> "Schema":
        """Build a schema from ``(name, type)`` pairs."""
        return cls(Attribute(name, type_) for name, type_ in pairs)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, str):
            return self._attributes[self.position(key)]
        return self._attributes[key]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"Schema({', '.join(a.name for a in self._attributes)})"

    # -- queries ------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(a.name for a in self._attributes)

    def position(self, name: str) -> int:
        """Position of attribute *name*; raises :class:`SchemaError`."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {list(self.names)}"
            ) from None

    def positions(self, names: Iterable[str]) -> tuple[int, ...]:
        """Positions of several attributes, in the order given."""
        return tuple(self.position(name) for name in names)

    # -- construction of derived schemas ------------------------------------

    def concat(self, other: "Schema") -> "Schema":
        """The schema of a cross product / join: this ++ other."""
        return Schema((*self._attributes, *other._attributes))

    def project(self, names: Iterable[str]) -> "Schema":
        """Sub-schema containing *names* in the given order."""
        return Schema(self[name] for name in names)

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Rename attributes per *mapping* (missing names are kept)."""
        return Schema(
            attr.renamed(mapping.get(attr.name, attr.name))
            for attr in self._attributes)


def disambiguate(name: str, taken: set[str]) -> str:
    """Return *name*, suffixed with ``_<k>`` if needed, absent from *taken*.

    The chosen name is added to *taken* as a side effect so repeated calls
    keep producing fresh names.
    """
    candidate = name
    counter = 1
    while candidate in taken:
        candidate = f"{name}_{counter}"
        counter += 1
    taken.add(candidate)
    return candidate
