"""Influence roles and the ``Jsub`` join/filter conditions (Section 3.3).

Under the extended contribution definition (Definition 2) the provenance of
a sublink depends only on the sublink's truth value, which lets every
strategy use one *role-agnostic* condition per sublink kind:

====================  =================================
sublink               ``Jsub``
====================  =================================
``A op ANY (Tsub)``   ``C'sub OR NOT Csub``
``A op ALL (Tsub)``   ``Csub OR NOT C'sub``
``EXISTS (Tsub)``     ``true``
scalar ``Tsub``       ``true``
====================  =================================

where ``C'sub = A op t'`` compares the outer test expression against the
sublink query's result column, and ``Csub`` is the original sublink re-
evaluated.  :func:`jsub_condition` builds these conditions; the classical
influence-role analysis (`reqtrue`/`reqfalse`/`ind`, Section 2.3) is kept
in :func:`influence_role` for the semantic oracle and the test suite.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable

from ..datatypes import compare, is_true, tv_not
from ..expressions.ast import (
    Col, Comparison, Expr, Not, Sublink, SublinkKind, TRUE, or_all,
)
from ..algebra.trees import clone_expr, shift_correlation_expr


class InfluenceRole(Enum):
    """The role a sublink plays in a condition for a given input tuple."""

    REQTRUE = "reqtrue"    # condition holds only if the sublink is true
    REQFALSE = "reqfalse"  # condition holds only if the sublink is false
    IND = "ind"            # condition is independent of the sublink


def influence_role(condition_value: Callable[[Any], Any],
                   actual: Any) -> InfluenceRole:
    """Classify a sublink's influence on a condition for one input tuple.

    *condition_value* maps an assumed sublink truth value to the condition's
    truth value; *actual* is the sublink's real value.  This mirrors the
    paper's Section 2.3 definition and is used by the oracle and tests, not
    by the rewrites (Definition 2 removed the need for role analysis at
    rewrite time).
    """
    with_true = condition_value(True)
    with_false = condition_value(False)
    if with_true == with_false:
        return InfluenceRole.IND
    if is_true(actual):
        return InfluenceRole.REQTRUE if is_true(with_true) \
            else InfluenceRole.REQFALSE
    return InfluenceRole.REQFALSE if is_true(with_false) \
        else InfluenceRole.REQTRUE


def jsub_condition(sublink: Sublink, result_column: str,
                   shift_into_sublink: bool = False) -> Expr:
    """Build ``Jsub`` for *sublink*, with ``t'`` read from *result_column*.

    With ``shift_into_sublink=True`` (the Gen strategy), the condition will
    be evaluated *inside* a new EXISTS sublink one boundary deeper than the
    host operator, so every reference escaping the original sublink
    construct — the test expression and the embedded original ``Csub`` —
    is shifted by one level.  With ``False`` (Left/Move), the condition is a
    join condition at the host operator's own level and no shift applies.
    """
    if sublink.kind in (SublinkKind.EXISTS, SublinkKind.SCALAR):
        return TRUE
    test = clone_expr(sublink.test)
    embedded = clone_expr(sublink)
    if shift_into_sublink:
        test = shift_correlation_expr(test, 1, 0)
        embedded = shift_correlation_expr(embedded, 1, 0)
    comparison = Comparison(sublink.op, test, Col(result_column))
    if sublink.kind == SublinkKind.ANY:
        return or_all([comparison, Not(embedded)])
    if sublink.kind == SublinkKind.ALL:
        return or_all([embedded, Not(comparison)])
    raise AssertionError(f"unhandled sublink kind {sublink.kind}")


def jsub_with_result_column(sublink: Sublink, csub_value_column: str,
                            result_column: str) -> Expr:
    """The Move strategy's ``Jsub``: ``Csub`` replaced by a boolean column.

    The sublink has already been evaluated into *csub_value_column* by a
    projection, so the join condition references that column instead of
    re-evaluating the sublink.
    """
    if sublink.kind in (SublinkKind.EXISTS, SublinkKind.SCALAR):
        return TRUE
    comparison = Comparison(
        sublink.op, clone_expr(sublink.test), Col(result_column))
    if sublink.kind == SublinkKind.ANY:
        return or_all([comparison, Not(Col(csub_value_column))])
    if sublink.kind == SublinkKind.ALL:
        return or_all([Col(csub_value_column), Not(comparison)])
    raise AssertionError(f"unhandled sublink kind {sublink.kind}")


def sublink_provenance_filter(sublink: Sublink, sublink_value: Any,
                              test_value: Any) -> Callable[[tuple], bool]:
    """Direct (non-algebraic) evaluation of ``Jsub`` for the oracle.

    Returns a predicate over sublink-query result rows deciding membership
    in the sublink's provenance, given the sublink's overall value and the
    evaluated test expression — the closed forms of Figure 2 under
    Definition 2 (``Tsub_true`` / ``Tsub_false`` / ``Tsub``).
    """
    if sublink.kind in (SublinkKind.EXISTS, SublinkKind.SCALAR):
        return lambda row: True
    op = sublink.op

    if sublink.kind == SublinkKind.ANY:
        if is_true(sublink_value):
            return lambda row: is_true(compare(op, test_value, row[0]))
        return lambda row: True

    # ALL sublink
    if is_true(sublink_value):
        return lambda row: True
    return lambda row: is_true(tv_not(compare(op, test_value, row[0])))
