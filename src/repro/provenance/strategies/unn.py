"""The Unn strategy (rules U1/U2, Section 3.6.3) — un-nesting rewrites.

Applicable to selections whose condition is a conjunction of sublink-free
predicates and sublinks of two specific uncorrelated shapes:

* ``EXISTS (Tsub)``      — rule U1: the provenance of an EXISTS sublink is
  all of ``Tsub`` and the condition only passes when ``Tsub`` is non-empty,
  so a plain cross product with ``Tsub+`` suffices.
* ``x = ANY (Tsub)``     — rule U2: always *reqtrue*, so the sublink becomes
  an equality join with ``Tsub+`` (which the executor hash-joins — the
  source of Unn's order-of-magnitude advantage in Figures 7-9).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...errors import RewriteError
from ...expressions.ast import (
    Col, Comparison, Expr, Sublink, SublinkKind, TRUE, and_all,
    conjuncts_of,
)
from ...algebra.operators import (
    Join, JoinKind, Operator, Project, Select,
)
from ...algebra.properties import contains_sublinks, is_correlated
from ...algebra.trees import clone_expr
from .base import SublinkStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..rewriter import ProvenanceRewriter, RewriteResult


class UnnStrategy(SublinkStrategy):
    """Rules U1 (EXISTS) and U2 (equality ANY)."""

    name = "unn"

    @classmethod
    def applicable_select(cls, op: Select) -> bool:
        """True iff every sublink-bearing conjunct matches U1 or U2."""
        saw_sublink = False
        for part in conjuncts_of(op.condition):
            if not contains_sublinks(part):
                continue
            saw_sublink = True
            if not isinstance(part, Sublink) or is_correlated(part.query):
                return False
            if part.kind == SublinkKind.EXISTS:
                continue
            if part.kind == SublinkKind.ANY and part.op == "=" \
                    and not contains_sublinks(part.test):
                continue
            return False
        return saw_sublink

    def rewrite_select(self, op: Select,
                       rewriter: "ProvenanceRewriter") -> "RewriteResult":
        from ..rewriter import RewriteResult
        from ..naming import prov_attribute_names

        if not self.applicable_select(op):
            raise RewriteError(
                "the Unn strategy applies only to conjunctions of "
                "sublink-free predicates with uncorrelated EXISTS or "
                "equality-ANY sublinks")
        inner = rewriter.rewrite(op.input)
        current: Operator = inner.plan
        accesses = list(inner.accesses)
        plain = [clone_expr(part) for part in conjuncts_of(op.condition)
                 if not contains_sublinks(part)]
        if plain:
            current = Select(current, and_all(plain))
        for part in conjuncts_of(op.condition):
            if not contains_sublinks(part):
                continue
            sublink = part
            sub = self.rewrite_sublink_query(sublink, rewriter)
            prov_names = sub.prov_names
            if sublink.kind == SublinkKind.EXISTS:
                right = Project(
                    sub.plan, [(n, Col(n)) for n in prov_names])
                current = Join(current, right, TRUE, JoinKind.CROSS)
            else:
                result_names = [
                    name for name in sub.plan.schema.names
                    if name not in set(prov_names)]
                fresh = rewriter.registry.fresh(f"sub_{result_names[0]}")
                items = [(fresh, Col(result_names[0]))]
                items += [(n, Col(n)) for n in prov_names]
                right = Project(sub.plan, items)
                condition = Comparison(
                    "=", clone_expr(sublink.test), Col(fresh))
                current = Join(current, right, condition, JoinKind.INNER)
            accesses = accesses + sub.accesses
        plan = self.final_projection(
            current, op.input.schema.names, prov_attribute_names(accesses))
        return RewriteResult(plan, accesses)

    def rewrite_project(self, op: Project,
                        rewriter: "ProvenanceRewriter") -> "RewriteResult":
        raise RewriteError(
            "the Unn strategy defines no rewrite for sublinks in "
            "projections; use Left, Move or Gen")
