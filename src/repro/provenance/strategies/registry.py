"""The pluggable sublink-strategy registry.

The four strategies of the paper (Gen / Left / Move / Unn, Figure 5) are
registered here at import time; new strategies plug in by name::

    from repro.provenance import strategies

    class MyStrategy(strategies.SublinkStrategy):
        name = "mine"
        def rewrite_select(self, op, rewriter): ...

    strategies.register("mine", MyStrategy())

Everything that names a strategy — the planner, the CLI ``--strategy``
flag, ``SELECT PROVENANCE (name)`` syntax, :class:`repro.api.SessionConfig`
— resolves through this registry, so a registered strategy is immediately
usable everywhere.  ``"auto"`` is not a strategy but a planner mode and is
reserved.
"""

from __future__ import annotations

from ...errors import RewriteError
from .base import SublinkStrategy

AUTO = "auto"

_registry: dict[str, SublinkStrategy] = {}


def register(name: str, strategy: SublinkStrategy,
             replace: bool = False) -> SublinkStrategy:
    """Register *strategy* under *name* (lower-cased).

    Raises :class:`~repro.errors.RewriteError` for the reserved name
    ``"auto"`` and for duplicate registrations unless ``replace=True``.
    Returns the strategy, so it can be used as a decorator-style one-liner.
    """
    key = name.lower()
    if key == AUTO:
        raise RewriteError(
            f"{AUTO!r} is the planner's automatic mode, not a registrable "
            f"strategy name")
    if key in _registry and not replace:
        raise RewriteError(
            f"strategy {name!r} is already registered; pass replace=True "
            f"to override it")
    _registry[key] = strategy
    return strategy


def unregister(name: str) -> None:
    """Remove a strategy registration (built-ins included — careful)."""
    key = name.lower()
    if key not in _registry:
        raise RewriteError(f"strategy {name!r} is not registered")
    del _registry[key]


def resolve(name: str) -> SublinkStrategy:
    """Look up a strategy by name; raises on unknown names."""
    strategy = _registry.get(name.lower())
    if strategy is None:
        raise RewriteError(
            f"unknown strategy {name!r}; expected one of "
            f"{strategy_names()}")
    return strategy


def is_registered(name: str) -> bool:
    """True iff *name* resolves to a registered strategy."""
    return name.lower() in _registry


def available() -> tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return tuple(_registry)


def strategy_names() -> tuple[str, ...]:
    """``("auto", ...registered names...)`` — everything a query may name."""
    return (AUTO, *_registry)
