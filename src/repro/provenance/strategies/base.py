"""Common machinery shared by the sublink rewrite strategies."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...errors import RewriteError
from ...expressions.ast import Col, Expr, Sublink, collect_sublinks
from ...algebra.operators import Operator, Project, Select
from ...algebra.properties import is_correlated
from ...algebra.trees import clone

if TYPE_CHECKING:  # pragma: no cover
    from ..rewriter import ProvenanceRewriter, RewriteResult


class SublinkStrategy:
    """Interface: rewrite a Select/Project whose expressions hold sublinks."""

    name = "abstract"

    def rewrite_select(self, op: Select,
                       rewriter: "ProvenanceRewriter") -> "RewriteResult":
        raise NotImplementedError

    def rewrite_project(self, op: Project,
                        rewriter: "ProvenanceRewriter") -> "RewriteResult":
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    @staticmethod
    def select_sublinks(op: Select) -> list[Sublink]:
        """Sublinks of a selection condition, in discovery order."""
        return collect_sublinks(op.condition)

    @staticmethod
    def project_sublinks(op: Project) -> list[Sublink]:
        """Sublinks of a projection list, in discovery order."""
        found: list[Sublink] = []
        for _, expr in op.items:
            found.extend(collect_sublinks(expr))
        return found

    def require_uncorrelated(self, sublinks: list[Sublink]) -> None:
        """Left/Move/Unn applicability guard (Section 3.6)."""
        for sublink in sublinks:
            if is_correlated(sublink.query):
                raise RewriteError(
                    f"the {self.name} strategy does not support correlated "
                    f"sublinks; use the Gen strategy")

    @staticmethod
    def rewrite_sublink_query(sublink: Sublink,
                              rewriter: "ProvenanceRewriter"
                              ) -> "RewriteResult":
        """``Tsub+``: rewrite a (cloned) copy of the sublink query so the
        rewritten plan never aliases operators of the original tree."""
        return rewriter.rewrite(clone(sublink.query))

    @staticmethod
    def passthrough_items(names) -> list[tuple[str, Col]]:
        """Identity projection items for *names*."""
        return [(name, Col(name)) for name in names]

    @staticmethod
    def final_projection(plan: Operator, original_names, prov_names
                         ) -> Project:
        """Keep the original operator's schema plus all provenance columns,
        dropping strategy-internal helper columns."""
        items = [(name, Col(name)) for name in original_names]
        items.extend((name, Col(name)) for name in prov_names)
        return Project(plan, items)


def replace_sublinks(expr: Expr, mapping: dict[int, str]) -> Expr:
    """Replace sublinks (by identity) with column references (Move/``Ctar``)."""
    from ...expressions.ast import transform

    def rule(node: Expr) -> Expr | None:
        if isinstance(node, Sublink) and id(node) in mapping:
            return Col(mapping[id(node)])
        return None

    return transform(expr, rule)
