"""The Move strategy (rules T1/T2, Section 3.6.2) — uncorrelated sublinks.

Like Left, but the sublinks are *moved into a projection* first: a
projection below the joins evaluates every sublink once into a boolean
column ``C_i``; the selection condition (``Ctar``) and the join conditions
(``Jsub``) then reference ``C_i`` instead of re-evaluating ``Csub``.  This
removes the duplicated sublink of the Left strategy, which matters when the
executor does not recognize the duplication.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...expressions.ast import Col, Sublink
from ...algebra.operators import (
    Join, JoinKind, Operator, Project, Select,
)
from ...algebra.trees import clone_expr
from ..influence import jsub_with_result_column
from .base import SublinkStrategy, replace_sublinks

if TYPE_CHECKING:  # pragma: no cover
    from ..rewriter import ProvenanceRewriter, RewriteResult


class MoveStrategy(SublinkStrategy):
    """Rules T1 (selection) and T2 (projection)."""

    name = "move"

    def _moved_plan(self, input_plan: Operator, accesses: list,
                    sublinks: list[Sublink],
                    rewriter: "ProvenanceRewriter"
                    ) -> tuple[Operator, list, dict[int, str]]:
        """Project sublink values into columns, then join each ``Tsub+``.

        Returns the joined plan, the accumulated accesses, and the mapping
        from sublink identity to its value column ``C_i``.
        """
        value_columns: dict[int, str] = {}
        items = [(name, Col(name)) for name in input_plan.schema.names]
        for position, sublink in enumerate(sublinks):
            column = rewriter.registry.fresh(f"csub_{position}")
            value_columns[id(sublink)] = column
            items.append((column, clone_expr(sublink)))
        current: Operator = Project(input_plan, items)
        for sublink in sublinks:
            sub = self.rewrite_sublink_query(sublink, rewriter)
            prov_names = sub.prov_names
            result_names = [
                name for name in sub.plan.schema.names
                if name not in set(prov_names)]
            fresh = [rewriter.registry.fresh(f"sub_{name}")
                     for name in result_names]
            right_items = [(new, Col(old))
                           for new, old in zip(fresh, result_names)]
            right_items += [(name, Col(name)) for name in prov_names]
            right = Project(sub.plan, right_items)
            result_column = fresh[0] if fresh else prov_names[0]
            jsub = jsub_with_result_column(
                sublink, value_columns[id(sublink)], result_column)
            current = Join(current, right, jsub, JoinKind.LEFT)
            accesses = accesses + sub.accesses
        return current, accesses, value_columns

    # -- T1 -------------------------------------------------------------------

    def rewrite_select(self, op: Select,
                       rewriter: "ProvenanceRewriter") -> "RewriteResult":
        from ..rewriter import RewriteResult
        from ..naming import prov_attribute_names

        sublinks = self.select_sublinks(op)
        self.require_uncorrelated(sublinks)
        inner = rewriter.rewrite(op.input)
        current, accesses, value_columns = self._moved_plan(
            inner.plan, list(inner.accesses), sublinks, rewriter)
        ctar = replace_sublinks(op.condition, value_columns)
        selected = Select(current, ctar)
        plan = self.final_projection(
            selected, op.input.schema.names, prov_attribute_names(accesses))
        return RewriteResult(plan, accesses)

    # -- T2 -------------------------------------------------------------------

    def rewrite_project(self, op: Project,
                        rewriter: "ProvenanceRewriter") -> "RewriteResult":
        from ..rewriter import RewriteResult
        from ..naming import prov_attribute_names

        sublinks = self.project_sublinks(op)
        self.require_uncorrelated(sublinks)
        inner = rewriter.rewrite(op.input)
        current, accesses, value_columns = self._moved_plan(
            inner.plan, list(inner.accesses), sublinks, rewriter)
        items = [(name, replace_sublinks(expr, value_columns))
                 for name, expr in op.items]
        items += [(name, Col(name))
                  for name in prov_attribute_names(accesses)]
        return RewriteResult(Project(current, items), accesses)
