"""The Gen strategy (rules G1/G2, Section 3.3) — works for *every* sublink
type, including correlated and nested sublinks.

For each sublink the original query is cross-joined with the sublink's
``CrossBase`` (all candidate provenance tuples, NULL-padded) and a
simulated-join condition ``Csub+`` keeps exactly the candidates belonging
to the sublink's provenance:

    Csub+ = EXISTS( σ_{Jsub ∧ P(Tsub+) =n Tsub'} (Π_{P(Tsub+)→Tsub'}(Tsub+)) )
            ∨ ( ¬EXISTS(σ_{Jsub}(Tsub+)) ∧ P(Tsub+) =n null )

The second disjunct deviates slightly from the paper's ``¬EXISTS(Tsub)``:
testing emptiness of the *Jsub-filtered rewritten* sublink keeps result
tuples alive even when three-valued logic filters every provenance
candidate away (see DESIGN.md); for NULL-free data both forms coincide.

Because ``Jsub`` and its embedded original ``Csub`` move one sublink
boundary deeper, their escaping column references are level-shifted by one
(:func:`repro.algebra.trees.shift_correlation_expr`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...expressions.ast import (
    Col, Expr, IsNull, Not, NullSafeEq, Sublink, SublinkKind, TRUE, and_all,
    or_all,
)
from ...algebra.trees import clone, clone_expr
from ...algebra.operators import (
    Join, JoinKind, Operator, Project, Select,
)
from ..crossbase import build_crossbase
from ..influence import jsub_condition
from .base import SublinkStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..rewriter import ProvenanceRewriter, RewriteResult


class GenStrategy(SublinkStrategy):
    """Rules G1 (selection) and G2 (projection)."""

    name = "gen"

    # -- G1 ----------------------------------------------------------------

    def rewrite_select(self, op: Select,
                       rewriter: "ProvenanceRewriter") -> "RewriteResult":
        from ..rewriter import RewriteResult

        inner = rewriter.rewrite(op.input)
        current = inner.plan
        accesses = list(inner.accesses)
        conjuncts: list[Expr] = [clone_expr(op.condition)]
        for sublink in self.select_sublinks(op):
            current, accesses, csub_plus = self._attach_sublink(
                current, accesses, sublink, rewriter)
            conjuncts.append(csub_plus)
        plan = Select(current, and_all(conjuncts))
        return RewriteResult(plan, accesses)

    # -- G2 ----------------------------------------------------------------

    def rewrite_project(self, op: Project,
                        rewriter: "ProvenanceRewriter") -> "RewriteResult":
        from ..rewriter import RewriteResult
        from ..naming import prov_attribute_names

        inner = rewriter.rewrite(op.input)
        current = inner.plan
        accesses = list(inner.accesses)
        conjuncts: list[Expr] = []
        for sublink in self.project_sublinks(op):
            current, accesses, csub_plus = self._attach_sublink(
                current, accesses, sublink, rewriter)
            conjuncts.append(csub_plus)
        filtered: Operator = current
        if conjuncts:
            filtered = Select(current, and_all(conjuncts))
        items = [(name, clone_expr(expr)) for name, expr in op.items]
        items.extend(
            (name, Col(name)) for name in prov_attribute_names(accesses))
        return RewriteResult(Project(filtered, items), accesses)

    # -- shared construction --------------------------------------------------

    def _attach_sublink(self, current: Operator, accesses: list,
                        sublink: Sublink,
                        rewriter: "ProvenanceRewriter"
                        ) -> tuple[Operator, list, Expr]:
        """Cross-join the sublink's CrossBase and build its ``Csub+``."""
        sub = self.rewrite_sublink_query(sublink, rewriter)
        crossbase = build_crossbase(
            sub.accesses, rewriter.catalog, rewriter.registry)
        if crossbase is None:
            # Sublink over literal relations only: nothing to track.
            return current, accesses, TRUE
        current = Join(current, crossbase, TRUE, JoinKind.CROSS)
        csub_plus = self._csub_plus(sublink, sub, rewriter)
        return current, accesses + sub.accesses, csub_plus

    def _csub_plus(self, sublink: Sublink, sub: "RewriteResult",
                   rewriter: "ProvenanceRewriter") -> Expr:
        """The simulated-join condition between CrossBase and ``Tsub+``."""
        prov_names = sub.prov_names
        result_names = tuple(
            name for name in sub.plan.schema.names
            if name not in set(prov_names))
        result_column = result_names[0] if result_names else prov_names[0]

        # First disjunct: the candidate occurs among the Jsub-filtered
        # provenance rows of Tsub+.
        renamed = [rewriter.registry.fresh(f"{name}_x")
                   for name in prov_names]
        rename_items = [(name, Col(name)) for name in result_names]
        rename_items += [
            (new, Col(old)) for new, old in zip(renamed, prov_names)]
        jsub = jsub_condition(
            sublink, result_column, shift_into_sublink=True)
        match_condition = and_all(
            [jsub] + [NullSafeEq(Col(old, level=1), Col(new))
                      for old, new in zip(prov_names, renamed)])
        member_check = Sublink(
            SublinkKind.EXISTS,
            Select(Project(sub.plan, rename_items), match_condition))

        # Second disjunct: no provenance row survives Jsub — candidate must
        # be the all-NULL padding row.
        jsub_again = jsub_condition(
            sublink, result_column, shift_into_sublink=True)
        empty_check = Not(Sublink(
            SublinkKind.EXISTS, Select(clone(sub.plan), jsub_again)))
        all_null = and_all(IsNull(Col(name)) for name in prov_names)

        return or_all([member_check, and_all([empty_check, all_null])])
