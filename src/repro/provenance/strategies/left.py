"""The Left strategy (rules L1/L2, Section 3.6.1) — uncorrelated sublinks.

Because the sublink query has no correlated references, its rewritten form
``Tsub+`` is a plain relation that can be *left-outer-joined* to the query
on the condition ``Jsub``.  The outer join NULL-pads the provenance when no
row of ``Tsub+`` belongs to it (e.g. an empty sublink result).

The known inefficiency the paper discusses is visible in the construction:
``Jsub`` embeds the original sublink ``Csub`` a second time.  Our executor
caches uncorrelated sublink evaluations per operator identity (PostgreSQL
InitPlan behaviour), so — as in the paper's measurements — the duplication
costs one extra evaluation, not one per row.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...expressions.ast import Col
from ...algebra.operators import Join, JoinKind, Operator, Project, Select
from ...algebra.trees import clone_expr
from ..influence import jsub_condition
from .base import SublinkStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..rewriter import ProvenanceRewriter, RewriteResult


class LeftStrategy(SublinkStrategy):
    """Rules L1 (selection) and L2 (projection)."""

    name = "left"

    def _attach_joins(self, current: Operator, accesses: list, sublinks,
                      rewriter: "ProvenanceRewriter"
                      ) -> tuple[Operator, list]:
        """Left-outer-join ``Tsub+`` for each sublink on ``Jsub``."""
        for sublink in sublinks:
            sub = self.rewrite_sublink_query(sublink, rewriter)
            prov_names = sub.prov_names
            result_names = [
                name for name in sub.plan.schema.names
                if name not in set(prov_names)]
            fresh = [rewriter.registry.fresh(f"sub_{name}")
                     for name in result_names]
            items = [(new, Col(old))
                     for new, old in zip(fresh, result_names)]
            items += [(name, Col(name)) for name in prov_names]
            right = Project(sub.plan, items)
            result_column = fresh[0] if fresh else prov_names[0]
            jsub = jsub_condition(
                sublink, result_column, shift_into_sublink=False)
            current = Join(current, right, jsub, JoinKind.LEFT)
            accesses = accesses + sub.accesses
        return current, accesses

    # -- L1 -------------------------------------------------------------------

    def rewrite_select(self, op: Select,
                       rewriter: "ProvenanceRewriter") -> "RewriteResult":
        from ..rewriter import RewriteResult
        from ..naming import prov_attribute_names

        sublinks = self.select_sublinks(op)
        self.require_uncorrelated(sublinks)
        inner = rewriter.rewrite(op.input)
        current, accesses = self._attach_joins(
            inner.plan, list(inner.accesses), sublinks, rewriter)
        selected = Select(current, clone_expr(op.condition))
        plan = self.final_projection(
            selected, op.input.schema.names, prov_attribute_names(accesses))
        return RewriteResult(plan, accesses)

    # -- L2 -------------------------------------------------------------------

    def rewrite_project(self, op: Project,
                        rewriter: "ProvenanceRewriter") -> "RewriteResult":
        from ..rewriter import RewriteResult
        from ..naming import prov_attribute_names

        sublinks = self.project_sublinks(op)
        self.require_uncorrelated(sublinks)
        inner = rewriter.rewrite(op.input)
        current, accesses = self._attach_joins(
            inner.plan, list(inner.accesses), sublinks, rewriter)
        items = [(name, clone_expr(expr)) for name, expr in op.items]
        items += [(name, Col(name))
                  for name in prov_attribute_names(accesses)]
        return RewriteResult(Project(current, items), accesses)
