"""Sublink rewrite strategies (Figure 5 of the paper)."""

from .base import SublinkStrategy
from .gen import GenStrategy
from .left import LeftStrategy
from .move import MoveStrategy
from .unn import UnnStrategy

__all__ = [
    "SublinkStrategy", "GenStrategy", "LeftStrategy", "MoveStrategy",
    "UnnStrategy",
]
