"""Sublink rewrite strategies (Figure 5 of the paper).

The four built-in strategies are registered in the pluggable
:mod:`~repro.provenance.strategies.registry` at import time; use
:func:`register` to add new ones by name.
"""

from .base import SublinkStrategy
from .gen import GenStrategy
from .left import LeftStrategy
from .move import MoveStrategy
from .unn import UnnStrategy
from .registry import (
    AUTO, available, is_registered, register, resolve, strategy_names,
    unregister,
)

register("gen", GenStrategy())
register("left", LeftStrategy())
register("move", MoveStrategy())
register("unn", UnnStrategy())

__all__ = [
    "SublinkStrategy", "GenStrategy", "LeftStrategy", "MoveStrategy",
    "UnnStrategy",
    "AUTO", "available", "is_registered", "register", "resolve",
    "strategy_names", "unregister",
]
