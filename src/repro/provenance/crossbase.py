"""CrossBase construction for the Gen strategy (Section 3.3).

``CrossBase(Tsub)`` is the cross product, over every base relation ``R``
accessed by the sublink query, of ``Π_{R→P(R)}(R ∪ null(R))`` — all
*candidate* provenance tuples, each base access padded with one all-NULL
row so an empty (or filtered-empty) sublink result can still be
represented.

The base accesses come from rewriting the sublink query first, so the
CrossBase columns carry exactly the provenance attribute names that
``Tsub+`` produces.
"""

from __future__ import annotations

from ..catalog import Catalog
from ..expressions.ast import Col, TRUE
from ..algebra.operators import (
    BaseRelation, Join, JoinKind, Operator, Project, SetOp, SetOpKind,
    Values,
)
from ..schema import Attribute, Schema
from .naming import BaseAccess, NamingRegistry


def crossbase_piece(access: BaseAccess, catalog: Catalog,
                    registry: NamingRegistry) -> Operator:
    """``Π_{R→P(R)}(R ∪ null(R))`` for one base access."""
    stored = catalog.get(access.table)
    scan_names = [registry.fresh(f"cb_{access.table}_{attr.name}")
                  for attr in stored.schema]
    scan_schema = Schema(
        Attribute(name, attr.type)
        for name, attr in zip(scan_names, stored.schema))
    scan = BaseRelation(access.table, access.table, scan_schema)
    renamed = Project(
        scan, [(prov, Col(src))
               for prov, src in zip(access.prov_names, scan_names)])
    null_row = Values(renamed.schema, [tuple([None] * len(renamed.schema))])
    return SetOp(SetOpKind.UNION, renamed, null_row, all=True)


def build_crossbase(accesses: list[BaseAccess], catalog: Catalog,
                    registry: NamingRegistry) -> Operator | None:
    """The full CrossBase of a sublink: cross product of all pieces.

    Returns ``None`` when the sublink accesses no base relations (e.g. a
    sublink over a VALUES list) — such sublinks carry no provenance.
    """
    plan: Operator | None = None
    for access in accesses:
        piece = crossbase_piece(access, catalog, registry)
        plan = piece if plan is None else \
            Join(plan, piece, TRUE, JoinKind.CROSS)
    return plan
