"""Semantic oracles: provenance computed *from the definitions*, not from
the rewrites.

Two independent implementations used to validate the rewrite rules:

* :func:`closed_form_provenance` — the per-tuple closed forms of Figure 2 /
  Definition 2 for single-operator queries ``σ_C(T)`` / ``Π_A(T)`` with
  sublinks, computed by direct evaluation (no algebra rewriting involved).

* :func:`brute_force_provenance` — literal maximal-subset search over
  Definition 1's conditions (1) and (2), optionally adding Definition 2's
  condition (3), for *tiny* inputs.  Exponential; used by tests to confirm
  Theorems 1-3 on concrete instances, including the paper's Section 2.5
  ambiguity example.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Any, Callable, Iterable, Sequence

from ..catalog import Catalog
from ..datatypes import is_true
from ..engine import Executor
from ..errors import ReproError
from ..expressions.ast import (
    Col, Expr, Sublink, collect_sublinks,
)
from ..expressions.evaluator import EvalContext, Frame, evaluate
from ..algebra.operators import Operator, Project, Select
from .influence import sublink_provenance_filter


# ---------------------------------------------------------------------------
# Closed forms (Definition 2 / Figure 2) by direct evaluation
# ---------------------------------------------------------------------------

def closed_form_provenance(op: Select | Project, catalog: Catalog
                           ) -> list[tuple[tuple, dict]]:
    """Provenance of a single selection/projection over its direct input.

    Returns ``[(result_row, {"input": input_row,
    sublink_index: [sublink_query_rows...]}), ...]`` — one entry per
    (result row, contributing input row) pair; each sublink's provenance
    rows are the sublink-*query* output rows (apply ``Tsub+`` separately to
    chase them further down).
    """
    if isinstance(op, Select):
        exprs = [op.condition]
    elif isinstance(op, Project):
        exprs = [expr for _, expr in op.items]
    else:
        raise ReproError(
            "closed_form_provenance handles Select/Project only")

    executor = Executor(catalog, optimize=False)
    input_rows = executor.execute(op.input).rows
    index = Frame.index_for(op.input.schema.names)
    sublinks: list[Sublink] = []
    for expr in exprs:
        sublinks.extend(collect_sublinks(expr))

    results: list[tuple[tuple, dict]] = []
    for row in input_rows:
        ctx = EvalContext((Frame(index, row),), executor)
        if isinstance(op, Select):
            if not is_true(evaluate(op.condition, ctx)):
                continue
            result_row = row
        else:
            result_row = tuple(
                evaluate(expr, ctx) for _, expr in op.items)
        prov: dict[Any, Any] = {"input": row}
        for position, sublink in enumerate(sublinks):
            sub_rows = executor.run_subquery(sublink.query, ctx.frames)
            value = evaluate(sublink, ctx)
            test_value = (evaluate(sublink.test, ctx)
                          if sublink.test is not None else None)
            keep = sublink_provenance_filter(sublink, value, test_value)
            prov[position] = [r for r in sub_rows if keep(r)]
        results.append((result_row, prov))
    return results


# ---------------------------------------------------------------------------
# Brute force over Definitions 1 and 2
# ---------------------------------------------------------------------------

def _subsets(rows: Sequence[tuple]) -> Iterable[tuple[tuple, ...]]:
    """All sub-bags of *rows* (rows treated positionally, so duplicates
    produce distinct subsets — bag semantics)."""
    return chain.from_iterable(
        combinations(rows, size) for size in range(len(rows) + 1))


class SelectionWithSublinks:
    """A self-contained model of ``σ_C(T)`` for the brute-force checker.

    * ``sublink_queries[i](sub_input, t)`` maps a sub-bag of sublink *i*'s
      input relation (and the input tuple, for correlated sublinks) to the
      sublink query's output rows — the paper's ``Tsub_i``;
    * ``sublink_values[i](t, rows)`` evaluates the nesting operator
      ``Csub_i`` over those rows (3VL result);
    * ``condition(t, values)`` combines the sublink truth values into the
      selection condition ``C``.

    Keeping ``Csub`` separate from ``C`` is essential: Definition 2's
    condition (3) compares *sublink* results, which an enclosing
    disjunction in ``C`` could otherwise mask.
    """

    def __init__(self, input_rows: Sequence[tuple],
                 sublink_inputs: Sequence[Sequence[tuple]],
                 sublink_queries: Sequence[
                     Callable[[Sequence[tuple], tuple], list[tuple]]],
                 sublink_values: Sequence[
                     Callable[[tuple, list[tuple]], Any]],
                 condition: Callable[[tuple, list[Any]], Any]):
        self.input_rows = list(input_rows)
        self.sublink_inputs = [list(rows) for rows in sublink_inputs]
        self.sublink_queries = list(sublink_queries)
        self.sublink_values = list(sublink_values)
        self.condition = condition

    def _csub(self, position: int, sub_input: Sequence[tuple],
              t: tuple) -> Any:
        rows = self.sublink_queries[position](list(sub_input), t)
        return self.sublink_values[position](t, rows)

    def evaluate(self, input_rows: Sequence[tuple] | None = None,
                 sublink_inputs: Sequence[Sequence[tuple]] | None = None
                 ) -> list[tuple]:
        """Run the selection over (sub-bags of) the inputs."""
        rows = self.input_rows if input_rows is None else list(input_rows)
        subs = self.sublink_inputs if sublink_inputs is None else \
            [list(s) for s in sublink_inputs]
        output = []
        for t in rows:
            values = [self._csub(i, subs[i], t)
                      for i in range(len(subs))]
            if is_true(self.condition(t, values)):
                output.append(t)
        return output

    # -- Definition 1 conditions ------------------------------------------------

    def _condition1(self, t: tuple, candidate: Sequence[Sequence[tuple]]
                    ) -> bool:
        """op(T1*, ..., Tn*) = t."""
        produced = self.evaluate([t], candidate)
        return produced == [t]

    def _condition2(self, t: tuple, candidate: Sequence[Sequence[tuple]]
                    ) -> bool:
        """Every tuple of every subset, substituted alone, still yields t."""
        for position, subset in enumerate(candidate):
            for single in subset:
                probe = [list(s) for s in candidate]
                probe[position] = [single]
                if not self.evaluate([t], probe):
                    return False
        return True

    def _condition3(self, t: tuple, candidate: Sequence[Sequence[tuple]]
                    ) -> bool:
        """Definition 2's condition (3): every provenance tuple of every
        sublink, substituted alone for ``Tsub``, reproduces the sublink's
        original result: ``Csub(Tsub, tup) = Csub({t*}, tup)``."""
        for position, subset in enumerate(candidate):
            reference = self._csub(
                position, self.sublink_inputs[position], t)
            for single in subset:
                if self._csub(position, [single], t) != reference:
                    return False
        return True

    # -- maximal-subset search ------------------------------------------------------

    def provenance_candidates(self, t: tuple, use_condition3: bool = False
                              ) -> list[tuple[tuple, ...]]:
        """All *maximal* sublink-input subset combinations satisfying the
        requested definition's conditions, for result tuple *t*.

        Under Definition 1 (``use_condition3=False``) the result may
        contain several incomparable maxima — the paper's Section 2.5
        ambiguity.  Under Definition 2 it is unique for the supported
        queries (Theorem 3).
        """
        satisfying: list[tuple[tuple, ...]] = []
        subset_lists = [list(_subsets(rows)) for rows in self.sublink_inputs]

        def explore(prefix: list, position: int) -> None:
            if position == len(subset_lists):
                candidate = tuple(tuple(s) for s in prefix)
                if self._condition1(t, candidate) and \
                        self._condition2(t, candidate) and \
                        (not use_condition3
                         or self._condition3(t, candidate)):
                    satisfying.append(candidate)
                return
            for subset in subset_lists[position]:
                explore(prefix + [subset], position + 1)

        explore([], 0)

        def bag_le(x, y) -> bool:
            from collections import Counter
            cx, cy = Counter(x), Counter(y)
            return all(cy[key] >= count for key, count in cx.items())

        def dominated(a, b) -> bool:
            """True iff candidate a is a strictly smaller bag than b,
            component-wise."""
            if not all(bag_le(x, y) for x, y in zip(a, b)):
                return False
            return any(len(x) < len(y) for x, y in zip(a, b))

        return [c for c in satisfying
                if not any(dominated(c, other) for other in satisfying)]


def brute_force_provenance(selection: SelectionWithSublinks, t: tuple,
                           definition: int = 2
                           ) -> list[tuple[tuple, ...]]:
    """Maximal provenance candidates for *t* under Definition 1 or 2."""
    if definition not in (1, 2):
        raise ReproError("definition must be 1 or 2")
    return selection.provenance_candidates(
        t, use_condition3=(definition == 2))
