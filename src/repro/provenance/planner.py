"""Strategy selection.

``auto`` picks, per operator, the cheapest applicable strategy — the
preference order the paper's experiments justify::

    Unn  >  Left  >  Gen

(Move is measurably equal to Left in both the paper and this engine; it is
available by explicit request and in the benchmarks.)  Explicitly requested
strategies are *forced*: if they do not apply, the rewrite fails with
:class:`~repro.errors.RewriteError` rather than silently degrading, so
benchmark results always measure what they claim to measure.
"""

from __future__ import annotations

from ..errors import RewriteError
from ..algebra.operators import Project, Select
from ..algebra.properties import is_correlated
from .strategies import (
    GenStrategy, LeftStrategy, MoveStrategy, SublinkStrategy, UnnStrategy,
)

STRATEGY_NAMES = ("auto", "gen", "left", "move", "unn")


class StrategyPlanner:
    """Maps sublink-bearing operators to rewrite strategies."""

    def __init__(self, strategy: str = "auto"):
        if strategy not in STRATEGY_NAMES:
            raise RewriteError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{STRATEGY_NAMES}")
        self.strategy = strategy
        self._gen = GenStrategy()
        self._left = LeftStrategy()
        self._move = MoveStrategy()
        self._unn = UnnStrategy()

    def _forced(self) -> SublinkStrategy | None:
        return {
            "gen": self._gen, "left": self._left,
            "move": self._move, "unn": self._unn,
        }.get(self.strategy)

    def for_select(self, op: Select) -> SublinkStrategy:
        """Strategy for a selection whose condition holds sublinks."""
        forced = self._forced()
        if forced is not None:
            return forced
        if UnnStrategy.applicable_select(op):
            return self._unn
        sublinks = SublinkStrategy.select_sublinks(op)
        if all(not is_correlated(s.query) for s in sublinks):
            return self._left
        return self._gen

    def for_project(self, op: Project) -> SublinkStrategy:
        """Strategy for a projection whose items hold sublinks."""
        forced = self._forced()
        if forced is not None:
            if forced is self._unn:
                raise RewriteError(
                    "the Unn strategy defines no projection rewrite")
            return forced
        sublinks = SublinkStrategy.project_sublinks(op)
        if all(not is_correlated(s.query) for s in sublinks):
            return self._left
        return self._gen
