"""Strategy selection.

``auto`` picks, per operator, the cheapest applicable strategy — the
preference order the paper's experiments justify::

    Unn  >  Left  >  Gen

(Move is measurably equal to Left in both the paper and this engine; it is
available by explicit request and in the benchmarks.)  Explicitly requested
strategies are *forced*: if they do not apply, the rewrite fails with
:class:`~repro.errors.RewriteError` rather than silently degrading, so
benchmark results always measure what they claim to measure.

Strategy names — forced ones included — resolve through the pluggable
:mod:`repro.provenance.strategies.registry`, so strategies registered by
name are usable from SQL (``SELECT PROVENANCE (name)``), the CLI and the
session config without touching this module.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..algebra.operators import Project, Select
from ..algebra.properties import is_correlated
from . import strategies
from .strategies import SublinkStrategy, UnnStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..api.config import SessionConfig

#: Names of the built-in strategies plus the automatic mode (static view;
#: use :func:`repro.provenance.strategies.strategy_names` for the live set).
STRATEGY_NAMES = ("auto", "gen", "left", "move", "unn")


class StrategyPlanner:
    """Maps sublink-bearing operators to rewrite strategies."""

    def __init__(self, strategy: str = "auto",
                 config: "SessionConfig | None" = None):
        self.config = config
        # A session's default_strategy stands in for "auto", so rewriters
        # constructed directly (not through a Connection, which resolves
        # the default before planning) honor the config too.
        if strategy == strategies.AUTO and config is not None:
            strategy = config.default_strategy
        self.strategy = strategy
        # Resolve a forced strategy eagerly so unknown names fail at plan
        # time, not at the first sublink encountered.
        self._forced = None if strategy == strategies.AUTO \
            else strategies.resolve(strategy)

    def _auto(self, name: str) -> SublinkStrategy:
        return strategies.resolve(name)

    def for_select(self, op: Select) -> SublinkStrategy:
        """Strategy for a selection whose condition holds sublinks."""
        if self._forced is not None:
            return self._forced
        unn = self._auto("unn")
        if isinstance(unn, UnnStrategy) and unn.applicable_select(op):
            return unn
        sublinks = SublinkStrategy.select_sublinks(op)
        if all(not is_correlated(s.query) for s in sublinks):
            return self._auto("left")
        return self._auto("gen")

    def for_project(self, op: Project) -> SublinkStrategy:
        """Strategy for a projection whose items hold sublinks."""
        if self._forced is not None:
            return self._forced
        sublinks = SublinkStrategy.project_sublinks(op)
        if all(not is_correlated(s.query) for s in sublinks):
            return self._auto("left")
        return self._auto("gen")
