"""Strategy selection.

``auto`` picks, per sublink-bearing operator, the cheapest *applicable*
strategy.  With a catalog in hand the choice is cost-based
(:func:`repro.engine.cost.strategy_costs`): the estimated input and
sublink cardinalities price each rewrite — Unn's hash join wins whenever
its rules apply, Gen's minimal plan wins on small inputs, and Left
overtakes Gen as the quadratic join term grows.  Without a catalog the
planner falls back to the fixed preference order the paper's experiments
justify::

    Unn  >  Left  >  Gen

(Move is measurably equal to Left in both the paper and this engine; it
is available by explicit request and in the benchmarks.)  Explicitly
requested strategies are *forced*: if they do not apply, the rewrite
fails with :class:`~repro.errors.RewriteError` rather than silently
degrading, so benchmark results always measure what they claim to
measure.

Strategy names — forced ones included — resolve through the pluggable
:mod:`repro.provenance.strategies.registry`, so strategies registered by
name are usable from SQL (``SELECT PROVENANCE (name)``), the CLI and the
session config without touching this module.  Every ``auto`` decision is
appended to :attr:`StrategyPlanner.decisions`, so tests and tools can
observe which rewrites a query actually got.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..algebra.operators import Project, Select
from ..algebra.properties import is_correlated
from ..expressions.ast import Sublink
from . import strategies
from .strategies import SublinkStrategy, UnnStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..api.config import SessionConfig
    from ..catalog import Catalog

#: Names of the built-in strategies plus the automatic mode (static view;
#: use :func:`repro.provenance.strategies.strategy_names` for the live set).
STRATEGY_NAMES = ("auto", "gen", "left", "move", "unn")


class StrategyPlanner:
    """Maps sublink-bearing operators to rewrite strategies."""

    def __init__(self, strategy: str = "auto",
                 config: "SessionConfig | None" = None,
                 catalog: "Catalog | None" = None):
        self.config = config
        self.catalog = catalog
        # A session's default_strategy stands in for "auto", so rewriters
        # constructed directly (not through a Connection, which resolves
        # the default before planning) honor the config too.
        if strategy == strategies.AUTO and config is not None:
            strategy = config.default_strategy
        self.strategy = strategy
        # Resolve a forced strategy eagerly so unknown names fail at plan
        # time, not at the first sublink encountered.
        self._forced = None if strategy == strategies.AUTO \
            else strategies.resolve(strategy)
        #: Strategy names ``auto`` picked, in rewrite order (one entry per
        #: sublink-bearing operator dispatched).
        self.decisions: list[str] = []
        # one estimator per rewrite: its per-subtree memo is shared by
        # every auto decision of this query
        self._estimator = None

    def _auto(self, name: str) -> SublinkStrategy:
        self.decisions.append(name)
        return strategies.resolve(name)

    def _cardinalities(self, op, sublinks: list[Sublink]
                       ) -> tuple[float, float] | None:
        """(input rows, summed sublink rows), or None without a catalog."""
        if self.catalog is None:
            return None
        if self._estimator is None:
            from ..engine.cost import CardinalityEstimator
            self._estimator = CardinalityEstimator(self.catalog)
        estimator = self._estimator
        input_rows = estimator.estimate(op.input)
        sublink_rows = sum(
            estimator.estimate(sublink.query) for sublink in sublinks)
        return input_rows, sublink_rows

    def _pick(self, candidates: list[str], op,
              sublinks: list[Sublink]) -> SublinkStrategy:
        """The cheapest of *candidates* (all known applicable) by the
        cost model; the first candidate without one."""
        if len(candidates) > 1:
            cardinalities = self._cardinalities(op, sublinks)
            if cardinalities is not None:
                from ..engine.cost import strategy_costs
                input_rows, sublink_rows = cardinalities
                correlated = any(is_correlated(s.query) for s in sublinks)
                costs = strategy_costs(input_rows, sublink_rows,
                                       correlated)
                candidates = sorted(
                    candidates, key=lambda name: costs.get(name,
                                                           float("inf")))
        return self._auto(candidates[0])

    def for_select(self, op: Select) -> SublinkStrategy:
        """Strategy for a selection whose condition holds sublinks."""
        if self._forced is not None:
            return self._forced
        sublinks = SublinkStrategy.select_sublinks(op)
        candidates = []
        unn = strategies.resolve("unn")
        if isinstance(unn, UnnStrategy) and unn.applicable_select(op):
            candidates.append("unn")
        if all(not is_correlated(s.query) for s in sublinks):
            candidates.append("left")
        candidates.append("gen")
        return self._pick(candidates, op, sublinks)

    def for_project(self, op: Project) -> SublinkStrategy:
        """Strategy for a projection whose items hold sublinks."""
        if self._forced is not None:
            return self._forced
        sublinks = SublinkStrategy.project_sublinks(op)
        candidates = []
        if all(not is_correlated(s.query) for s in sublinks):
            candidates.append("left")
        candidates.append("gen")
        return self._pick(candidates, op, sublinks)
