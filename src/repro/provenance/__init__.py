"""Provenance rewriting — the paper's contribution.

The public entry point is :class:`ProvenanceRewriter`: it transforms an
algebra tree ``q`` into ``q+``, a tree whose output contains every original
result tuple extended with the contributing tuple of each base relation
access (Section 3.1's single-relation representation), computed according
to the paper's extended provenance contribution (Definition 2).
"""

from .direct import DirectProvenanceExecutor, direct_provenance
from .naming import BaseAccess, NamingRegistry, prov_attribute_names
from .rewriter import ProvenanceRewriter, RewriteResult
from .influence import (
    InfluenceRole,
    influence_role,
    jsub_condition,
    sublink_provenance_filter,
)

__all__ = [
    "BaseAccess", "DirectProvenanceExecutor", "NamingRegistry",
    "direct_provenance", "prov_attribute_names",
    "ProvenanceRewriter", "RewriteResult",
    "InfluenceRole", "influence_role", "jsub_condition",
    "sublink_provenance_filter",
]
