"""The provenance rewriter: ``q -> q+`` (Section 3).

Implements the Perm rewrite rules for standard operators (Figure 4, R1-R5,
plus the set-operation and DISTINCT rules Perm defines in [12]) and
delegates operators containing sublinks to the strategy chosen by the
:class:`~repro.provenance.planner.StrategyPlanner` (Gen / Left / Move /
Unn, Figure 5).

Invariant maintained everywhere: for a rewritten operator ``op+``,

    ``schema(op+) = schema(op) ++ P(R_1) ++ ... ++ P(R_n)``

where ``R_1..R_n`` are the base accesses of ``op``'s subtree in rewrite
order.  ``RewriteResult.accesses`` records that order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog import Catalog
from ..errors import RewriteError
from ..expressions.ast import (
    Col, Const, Expr, NullSafeEq, TRUE, and_all,
)
from ..algebra.operators import (
    Aggregate, BaseRelation, Join, JoinKind, Limit, Operator, Project,
    Select, SetOp, SetOpKind, Sort, Values,
)
from ..algebra.properties import contains_sublinks
from ..algebra.trees import clone_expr
from .naming import BaseAccess, NamingRegistry, prov_attribute_names


@dataclass
class RewriteResult:
    """A rewritten operator plus its base-access bookkeeping."""

    plan: Operator
    accesses: list[BaseAccess]

    @property
    def prov_names(self) -> list[str]:
        """The provenance attribute names appended to the original schema."""
        return prov_attribute_names(self.accesses)


class ProvenanceRewriter:
    """Rewrites algebra trees into provenance-propagating trees.

    ``strategy`` is one of ``"auto"``, ``"gen"``, ``"left"``, ``"move"``,
    ``"unn"`` — see :mod:`repro.provenance.planner` for the applicability
    rules.  A rewriter instance is single-use per query (it owns the
    naming registry for that query).
    """

    def __init__(self, catalog: Catalog, strategy: str = "auto",
                 config=None):
        from .planner import StrategyPlanner
        self.catalog = catalog
        self.config = config  # SessionConfig | None
        self.planner = StrategyPlanner(strategy, config, catalog)
        self.registry: NamingRegistry = NamingRegistry()

    # -- public API -----------------------------------------------------------

    def rewrite_query(self, op: Operator) -> RewriteResult:
        """Rewrite a complete query tree (entry point)."""
        self.registry = NamingRegistry.seeded_from(op)
        return self.rewrite(op)

    # -- recursion ------------------------------------------------------------

    def rewrite(self, op: Operator) -> RewriteResult:
        """Rewrite one operator (recursively rewriting its inputs)."""
        if isinstance(op, BaseRelation):
            return self._rewrite_base(op)
        if isinstance(op, Values):
            return RewriteResult(op, [])
        if isinstance(op, Project):
            return self._rewrite_project(op)
        if isinstance(op, Select):
            return self._rewrite_select(op)
        if isinstance(op, Join):
            return self._rewrite_join(op)
        if isinstance(op, Aggregate):
            return self._rewrite_aggregate(op)
        if isinstance(op, SetOp):
            return self._rewrite_setop(op)
        if isinstance(op, Sort):
            inner = self.rewrite(op.input)
            return RewriteResult(Sort(inner.plan, op.keys), inner.accesses)
        if isinstance(op, Limit):
            raise RewriteError(
                "LIMIT/OFFSET has no well-defined provenance semantics; "
                "compute provenance of the unlimited query instead")
        raise RewriteError(f"no provenance rewrite for operator {op!r}")

    # -- R1: base relations -----------------------------------------------------

    def _rewrite_base(self, op: BaseRelation) -> RewriteResult:
        access = self.registry.register_access(op)
        items = [(name, Col(name)) for name in op.schema.names]
        items.extend(
            (prov, Col(source))
            for prov, source in zip(access.prov_names, access.source_names))
        return RewriteResult(Project(op, items), [access])

    # -- R2 (+ strategies for sublinks in the projection list) -------------------

    def _rewrite_project(self, op: Project) -> RewriteResult:
        has_sublinks = any(
            contains_sublinks(expr) for _, expr in op.items)
        if has_sublinks:
            strategy = self.planner.for_project(op)
            return strategy.rewrite_project(op, self)
        inner = self.rewrite(op.input)
        items = [(name, clone_expr(expr)) for name, expr in op.items]
        items.extend((name, Col(name)) for name in inner.prov_names)
        # Set projection becomes bag projection: each duplicate carries its
        # own provenance (Perm's DISTINCT rule).
        return RewriteResult(Project(inner.plan, items), inner.accesses)

    # -- R3 (+ strategies for sublinks in the condition) --------------------------

    def _rewrite_select(self, op: Select) -> RewriteResult:
        if contains_sublinks(op.condition):
            strategy = self.planner.for_select(op)
            return strategy.rewrite_select(op, self)
        inner = self.rewrite(op.input)
        return RewriteResult(
            Select(inner.plan, clone_expr(op.condition)), inner.accesses)

    # -- R4: cross products and joins ---------------------------------------------

    def _rewrite_join(self, op: Join) -> RewriteResult:
        if contains_sublinks(op.condition):
            raise RewriteError(
                "join conditions with sublinks must be normalized to a "
                "selection over a cross product before rewriting")
        left = self.rewrite(op.left)
        right = self.rewrite(op.right)
        plan = Join(left.plan, right.plan, clone_expr(op.condition), op.kind)
        return RewriteResult(plan, left.accesses + right.accesses)

    # -- R5: aggregation ------------------------------------------------------------

    def _rewrite_aggregate(self, op: Aggregate) -> RewriteResult:
        inner = self.rewrite(op.input)
        group_hats = [self.registry.fresh(f"{name}_grp")
                      for name in op.group]
        rhs_items = [(hat, Col(name))
                     for hat, name in zip(group_hats, op.group)]
        rhs_items.extend((name, Col(name)) for name in inner.prov_names)
        rhs = Project(inner.plan, rhs_items)
        condition = and_all(
            NullSafeEq(Col(name), Col(hat))
            for name, hat in zip(op.group, group_hats)) if op.group else TRUE
        # Left outer join (deviation from Figure 4's inner join) keeps the
        # single result row of a grouping-free aggregate over empty input.
        joined = Join(op, rhs, condition, JoinKind.LEFT)
        items = [(name, Col(name)) for name in op.schema.names]
        items.extend((name, Col(name)) for name in inner.prov_names)
        return RewriteResult(Project(joined, items), inner.accesses)

    # -- set operations ----------------------------------------------------------------

    def _rewrite_setop(self, op: SetOp) -> RewriteResult:
        left = self.rewrite(op.left)
        right = self.rewrite(op.right)
        if op.kind == SetOpKind.UNION:
            return self._rewrite_union(op, left, right)
        if op.kind == SetOpKind.INTERSECT:
            return self._rewrite_intersect(op, left, right)
        return self._rewrite_except(op, left, right)

    def _rewrite_union(self, op: SetOp, left: RewriteResult,
                       right: RewriteResult) -> RewriteResult:
        """Each branch contributes its own rows; the other side's
        provenance columns are NULL-padded."""
        left_names = op.left.schema.names
        right_names = op.right.schema.names
        null = Const(None)
        left_items = [(name, Col(name)) for name in left_names]
        left_items += [(name, Col(name)) for name in left.prov_names]
        left_items += [(name, null) for name in right.prov_names]
        right_items = [(out, Col(name))
                       for out, name in zip(left_names, right_names)]
        right_items += [(name, null) for name in left.prov_names]
        right_items += [(name, Col(name)) for name in right.prov_names]
        plan = SetOp(
            SetOpKind.UNION,
            Project(left.plan, left_items),
            Project(right.plan, right_items),
            all=True)  # duplicates represent distinct provenance
        return RewriteResult(plan, left.accesses + right.accesses)

    def _join_back(self, base: Operator, base_names: tuple[str, ...],
                   side: RewriteResult, side_names: tuple[str, ...]
                   ) -> Operator:
        """Join *base* with a rewritten branch on null-safe column equality,
        renaming the branch's original columns to fresh names first."""
        fresh = [self.registry.fresh(f"{name}_eq") for name in side_names]
        items = [(f, Col(name)) for f, name in zip(fresh, side_names)]
        items += [(name, Col(name)) for name in side.prov_names]
        renamed = Project(side.plan, items)
        condition = and_all(
            NullSafeEq(Col(b), Col(f))
            for b, f in zip(base_names, fresh))
        return Join(base, renamed, condition, JoinKind.INNER)

    def _rewrite_intersect(self, op: SetOp, left: RewriteResult,
                           right: RewriteResult) -> RewriteResult:
        """A result tuple's provenance joins contributing tuples from both
        branches (they are equal to the result tuple itself)."""
        names = op.left.schema.names
        joined = self._join_back(op, names, left, names)
        joined = self._join_back(joined, names, right,
                                 op.right.schema.names)
        items = [(name, Col(name)) for name in names]
        items += [(name, Col(name))
                  for name in left.prov_names + right.prov_names]
        return RewriteResult(
            Project(joined, items), left.accesses + right.accesses)

    def _rewrite_except(self, op: SetOp, left: RewriteResult,
                        right: RewriteResult) -> RewriteResult:
        """Left-side provenance joins equal tuples; per Definition 1 the
        *entire* right input is provenance of every result tuple (its
        absence from the right side is what every right tuple 'witnesses'),
        via a left outer join on TRUE so an empty right side NULL-pads."""
        names = op.left.schema.names
        joined = self._join_back(op, names, left, names)
        right_prov = Project(
            right.plan,
            [(name, Col(name)) for name in right.prov_names])
        joined = Join(joined, right_prov, TRUE, JoinKind.LEFT)
        items = [(name, Col(name)) for name in names]
        items += [(name, Col(name))
                  for name in left.prov_names + right.prov_names]
        return RewriteResult(
            Project(joined, items), left.accesses + right.accesses)
