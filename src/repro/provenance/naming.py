"""Provenance attribute naming — the paper's ``P(·)`` renaming scheme.

Every base relation access in a query gets a :class:`BaseAccess` record:
the accessed table, the access's output column names inside the query, and
the globally unique provenance attribute names chosen for it.  The paper
writes ``P(R)`` and uses a ``p`` prefix; we use ``prov_<table>_<column>``
with numeric suffixes to disambiguate repeated accesses of one table
(multiple references to one relation are handled as different relations —
footnote 1 of the paper).

The :class:`NamingRegistry` is shared across one whole rewrite so that the
Gen strategy's CrossBase can reuse exactly the names that rewriting the
sublink query produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.operators import BaseRelation, Operator
from ..algebra.trees import iter_operators
from ..schema import disambiguate


@dataclass(frozen=True)
class BaseAccess:
    """One access of a base table and its provenance attribute names.

    ``prov_names[i]`` is the provenance copy of the accessed relation's
    *i*-th column; ``source_names[i]`` is that column's name in the access's
    output schema (positionally aligned with the stored table).
    """

    table: str
    source_names: tuple[str, ...]
    prov_names: tuple[str, ...]


class NamingRegistry:
    """Allocates unique attribute names for one rewrite run."""

    def __init__(self, taken: set[str] | None = None):
        self._taken: set[str] = set(taken or ())

    @classmethod
    def seeded_from(cls, op: Operator) -> "NamingRegistry":
        """Registry pre-seeded with every attribute name visible anywhere in
        *op*'s tree (including sublink queries), so generated names never
        collide with user columns."""
        taken: set[str] = set()
        for node in iter_operators(op, into_sublinks=True):
            taken.update(node.schema.names)
        return cls(taken)

    def fresh(self, base: str) -> str:
        """A fresh helper attribute name derived from *base*."""
        return disambiguate(base, self._taken)

    def register_access(self, relation: BaseRelation) -> BaseAccess:
        """Allocate provenance names for one base relation access."""
        prov_names = tuple(
            disambiguate(f"prov_{relation.table}_{_basename(name)}",
                         self._taken)
            for name in relation.schema.names)
        return BaseAccess(relation.table, relation.schema.names, prov_names)


def _basename(column: str) -> str:
    """Strip the analyzer's ``alias.`` qualification from a column name."""
    return column.rsplit(".", 1)[-1]


def prov_attribute_names(accesses: list[BaseAccess]) -> list[str]:
    """Flattened provenance schema ``P(R1), ..., P(Rn)`` of *accesses*."""
    names: list[str] = []
    for access in accesses:
        names.extend(access.prov_names)
    return names
