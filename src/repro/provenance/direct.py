"""Direct provenance propagation — the paper's future-work idea.

Section 4.2's conclusion suggests developing "new physical operators that
propagate provenance", avoiding the intermediate-result recreation the
algebraic rewrites require.  :class:`DirectProvenanceExecutor` implements
that idea: it evaluates the *original* query tree once, carrying a
provenance vector alongside every intermediate row, and applies the
closed-form sublink provenance of Figure 2 / Definition 2 directly (via
:func:`~repro.provenance.influence.sublink_provenance_filter`).

The output is bit-compatible with the rewrite approach: the same schema
(original columns ++ ``P(R_1)`` ++ ...; the naming registry and base-access
ordering mirror :class:`~repro.provenance.rewriter.ProvenanceRewriter`'s
recursion order) and the same bag of rows.  The test suite exploits this
as a *fully independent* cross-check of the rewrite rules; the ablation
benchmark compares their costs.

Unsupported: ``LIMIT`` (as in the rewriter).
"""

from __future__ import annotations

from typing import Any

from ..catalog import Catalog
from ..datatypes import is_true
from ..engine import Executor
from ..errors import RewriteError
from ..expressions.ast import Expr, Sublink, collect_sublinks
from ..expressions.evaluator import EvalContext, Frame, evaluate
from ..algebra.operators import (
    Aggregate, BaseRelation, Join, JoinKind, Limit, Operator, Project,
    Select, SetOp, SetOpKind, Sort, Values,
)
from ..algebra.properties import contains_sublinks
from ..relation import Relation
from ..schema import Attribute, Schema
from .influence import sublink_provenance_filter
from .naming import BaseAccess, NamingRegistry, prov_attribute_names

Frames = tuple[Frame, ...]
ProvRow = tuple[tuple, tuple]  # (visible row, provenance vector)


class DirectProvenanceExecutor:
    """Evaluates a query while propagating Definition-2 provenance."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._engine = Executor(catalog)  # for sublink value evaluation
        self.registry = NamingRegistry()
        # one BaseAccess per base-relation *node*: sublink queries are
        # re-evaluated per outer row, but their provenance columns must
        # be registered exactly once (stable names and vector positions)
        self._access_cache: dict[int, BaseAccess] = {}

    # -- public API -----------------------------------------------------------

    def execute(self, op: Operator) -> Relation:
        """Provenance of *op*: same schema and rows as the rewrite path."""
        self.registry = NamingRegistry.seeded_from(op)
        self._access_cache = {}
        rows, accesses = self._eval(op, ())
        names = prov_attribute_names(accesses)
        schema = Schema(
            [*op.schema, *(Attribute(name) for name in names)])
        return Relation(schema, [row + prov for row, prov in rows])

    # -- helpers ---------------------------------------------------------------

    def _context(self, frames: Frames, names, row) -> EvalContext:
        frame = Frame(Frame.index_for(names), row)
        return EvalContext((*frames, frame), self._engine)

    def _prov_width(self, accesses: list[BaseAccess]) -> int:
        return sum(len(access.prov_names) for access in accesses)

    # -- recursion ----------------------------------------------------------------

    def _eval(self, op: Operator, frames: Frames
              ) -> tuple[list[ProvRow], list[BaseAccess]]:
        if isinstance(op, BaseRelation):
            access = self._access_cache.get(id(op))
            if access is None:
                access = self.registry.register_access(op)
                self._access_cache[id(op)] = access
            rows = self.catalog.get(op.table).rows
            return [(row, row) for row in rows], [access]
        if isinstance(op, Values):
            return [(row, ()) for row in op.rows], []
        if isinstance(op, Project):
            return self._eval_project(op, frames)
        if isinstance(op, Select):
            return self._eval_select(op, frames)
        if isinstance(op, Join):
            return self._eval_join(op, frames)
        if isinstance(op, Aggregate):
            return self._eval_aggregate(op, frames)
        if isinstance(op, SetOp):
            return self._eval_setop(op, frames)
        if isinstance(op, Sort):
            rows, accesses = self._eval(op.input, frames)
            plain = Relation(op.input.schema,
                             [row for row, _ in rows])
            # evaluate keys over the visible part, stable-sorting pairs
            from ..engine.materialize import _desc_key
            names = op.input.schema.names
            for key in reversed(op.keys):
                def sort_value(pair, key=key):
                    ctx = self._context(frames, names, pair[0])
                    return evaluate(key.expr, ctx)
                if key.ascending:
                    rows.sort(key=lambda pair: (
                        sort_value(pair) is not None, sort_value(pair)))
                else:
                    rows.sort(key=lambda pair: _desc_key(sort_value(pair)))
            return rows, accesses
        if isinstance(op, Limit):
            raise RewriteError(
                "LIMIT/OFFSET has no well-defined provenance semantics")
        raise RewriteError(f"direct provenance: unsupported {op!r}")

    # -- sublink provenance ----------------------------------------------------------

    def _sublink_provenance(self, sublink: Sublink, ctx: EvalContext,
                            frames: Frames, input_names, row
                            ) -> tuple[list[tuple], list[BaseAccess]]:
        """Provenance vectors contributed by one sublink for one input
        row: the Jsub-filtered provenance rows of Tsub (computed
        recursively, so nested sublinks are covered), or a single all-NULL
        vector when none qualify (the outer-join/robust-Gen behaviour)."""
        inner_frames = (*frames,
                        Frame(Frame.index_for(input_names), row))
        sub_rows, sub_accesses = self._eval(sublink.query, inner_frames)
        width = self._prov_width(sub_accesses)
        value = evaluate(sublink, ctx)
        test_value = (evaluate(sublink.test, ctx)
                      if sublink.test is not None else None)
        keep = sublink_provenance_filter(sublink, value, test_value)
        vectors = [prov for sub_row, prov in sub_rows if keep(sub_row)]
        if not vectors:
            vectors = [(None,) * width]
        return vectors, sub_accesses

    def _attach_sublinks(self, sublinks: list[Sublink], ctx: EvalContext,
                         frames: Frames, input_names, row,
                         base_vectors: list[tuple]
                         ) -> tuple[list[tuple], list[BaseAccess]]:
        """Cross the row's provenance with each sublink's provenance."""
        accesses: list[BaseAccess] = []
        vectors = base_vectors
        for sublink in sublinks:
            sub_vectors, sub_accesses = self._sublink_provenance(
                sublink, ctx, frames, input_names, row)
            accesses.extend(sub_accesses)
            vectors = [v + s for v in vectors for s in sub_vectors]
        return vectors, accesses

    # -- operators -----------------------------------------------------------------

    def _eval_select(self, op: Select, frames: Frames):
        input_rows, accesses = self._eval(op.input, frames)
        names = op.input.schema.names
        sublinks = collect_sublinks(op.condition)
        out: list[ProvRow] = []
        sub_accesses_final: list[BaseAccess] | None = None
        for row, prov in input_rows:
            ctx = self._context(frames, names, row)
            if not is_true(evaluate(op.condition, ctx)):
                continue
            if not sublinks:
                out.append((row, prov))
                continue
            vectors, sub_accesses = self._attach_sublinks(
                sublinks, ctx, frames, names, row, [prov])
            sub_accesses_final = sub_accesses
            out.extend((row, vector) for vector in vectors)
        if sublinks:
            if sub_accesses_final is None:
                # no row passed: still need the access list (and names)
                # for the schema — probe with a dummy evaluation
                sub_accesses_final = self._probe_sublink_accesses(sublinks)
            accesses = accesses + sub_accesses_final
        return out, accesses

    def _probe_sublink_accesses(self, sublinks: list[Sublink]
                                ) -> list[BaseAccess]:
        """Register the base accesses of sublink queries without rows
        (schema stability when the selection output is empty)."""
        from ..algebra.properties import collect_base_relations
        accesses: list[BaseAccess] = []
        for sublink in sublinks:
            for base in collect_base_relations(sublink.query):
                access = self._access_cache.get(id(base))
                if access is None:
                    access = self.registry.register_access(base)
                    self._access_cache[id(base)] = access
                accesses.append(access)
        return accesses

    def _eval_project(self, op: Project, frames: Frames):
        input_rows, accesses = self._eval(op.input, frames)
        names = op.input.schema.names
        sublinks: list[Sublink] = []
        for _, expr in op.items:
            sublinks.extend(collect_sublinks(expr))
        out: list[ProvRow] = []
        sub_accesses_final: list[BaseAccess] | None = None
        for row, prov in input_rows:
            ctx = self._context(frames, names, row)
            visible = tuple(
                evaluate(expr, ctx) for _, expr in op.items)
            if not sublinks:
                out.append((visible, prov))
                continue
            vectors, sub_accesses = self._attach_sublinks(
                sublinks, ctx, frames, names, row, [prov])
            sub_accesses_final = sub_accesses
            out.extend((visible, vector) for vector in vectors)
        if sublinks:
            if sub_accesses_final is None:
                sub_accesses_final = self._probe_sublink_accesses(sublinks)
            accesses = accesses + sub_accesses_final
        # set projection keeps duplicates: each carries its provenance
        return out, accesses

    def _eval_join(self, op: Join, frames: Frames):
        if contains_sublinks(op.condition):
            raise RewriteError(
                "direct provenance: sublinks in join conditions must be "
                "normalized to selections")
        left_rows, left_accesses = self._eval(op.left, frames)
        right_rows, right_accesses = self._eval(op.right, frames)
        names = op.schema.names
        right_width = len(op.right.schema)
        right_prov_width = self._prov_width(right_accesses)
        out: list[ProvRow] = []
        for left_row, left_prov in left_rows:
            matched = False
            for right_row, right_prov in right_rows:
                combined = left_row + right_row
                ctx = self._context(frames, names, combined)
                if is_true(evaluate(op.condition, ctx)):
                    out.append((combined, left_prov + right_prov))
                    matched = True
            if op.kind == JoinKind.LEFT and not matched:
                out.append((
                    left_row + (None,) * right_width,
                    left_prov + (None,) * right_prov_width))
        return out, left_accesses + right_accesses

    def _eval_aggregate(self, op: Aggregate, frames: Frames):
        input_rows, accesses = self._eval(op.input, frames)
        names = op.input.schema.names
        positions = op.input.schema.positions(op.group)
        from ..expressions.aggregates import make_accumulator
        groups: dict[tuple, list] = {}
        members: dict[tuple, list[tuple]] = {}
        for row, prov in input_rows:
            key = tuple(row[p] for p in positions)
            if key not in groups:
                groups[key] = [
                    make_accumulator(call.name, star=call.arg is None,
                                     distinct=call.distinct)
                    for _, call in op.aggregates]
                members[key] = []
            members[key].append(prov)
            ctx = None
            for (name, call), accumulator in zip(op.aggregates,
                                                 groups[key]):
                if call.arg is None:
                    accumulator.add(1)
                    continue
                if ctx is None:
                    ctx = self._context(frames, names, row)
                accumulator.add(evaluate(call.arg, ctx))
        out: list[ProvRow] = []
        if not groups and not op.group:
            accumulators = [
                make_accumulator(call.name, star=call.arg is None,
                                 distinct=call.distinct)
                for _, call in op.aggregates]
            result = tuple(acc.result() for acc in accumulators)
            out.append((result, (None,) * self._prov_width(accesses)))
            return out, accesses
        for key, accumulators in groups.items():
            result = key + tuple(acc.result() for acc in accumulators)
            for prov in members[key]:
                out.append((result, prov))
        return out, accesses

    def _eval_setop(self, op: SetOp, frames: Frames):
        left_rows, left_accesses = self._eval(op.left, frames)
        right_rows, right_accesses = self._eval(op.right, frames)
        left_width = self._prov_width(left_accesses)
        right_width = self._prov_width(right_accesses)
        accesses = left_accesses + right_accesses
        out: list[ProvRow] = []
        if op.kind == SetOpKind.UNION:
            for row, prov in left_rows:
                out.append((row, prov + (None,) * right_width))
            for row, prov in right_rows:
                out.append((row, (None,) * left_width + prov))
            return out, accesses
        plain_left = Relation(op.left.schema, [r for r, _ in left_rows])
        plain_right = Relation(op.left.schema,
                               [tuple(r) for r, _ in right_rows])
        if op.kind == SetOpKind.INTERSECT:
            result = plain_left.bag_intersect(plain_right) if op.all \
                else plain_left.set_intersect(plain_right)
            for row in result.rows:
                left_matches = [p for r, p in left_rows if r == row]
                right_matches = [p for r, p in right_rows
                                 if tuple(r) == row]
                for lp in left_matches:
                    for rp in right_matches:
                        out.append((row, lp + rp))
            return out, accesses
        result = plain_left.bag_difference(plain_right) if op.all \
            else plain_left.set_difference(plain_right)
        right_all = [p for _, p in right_rows] or \
            [(None,) * right_width]
        for row in result.rows:
            left_matches = [p for r, p in left_rows if r == row]
            for lp in left_matches:
                for rp in right_all:
                    out.append((row, lp + rp))
        return out, accesses


def direct_provenance(catalog: Catalog, op: Operator) -> Relation:
    """Convenience wrapper: Definition-2 provenance of *op*, computed by
    direct propagation (no query rewriting)."""
    return DirectProvenanceExecutor(catalog).execute(op)
