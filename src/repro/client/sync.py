"""Blocking facade over the asyncio client.

A :class:`SyncConnection` owns a private event loop on a daemon thread
and forwards every call with ``run_coroutine_threadsafe``, giving
synchronous callers — the interactive shell's ``\\connect`` mode, quick
scripts — the same wire connection without touching asyncio themselves.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Coroutine

from .connection import AsyncConnection, ClientResult, connect


class SyncConnection:
    """A blocking wrapper around one :class:`AsyncConnection`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 5433, *,
                 user: str = "repro", password: "str | None" = None,
                 database: "str | None" = None,
                 timeout: float = 10.0) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-client", daemon=True)
        self._thread.start()
        try:
            self._conn: AsyncConnection = self._call(connect(
                host, port, user=user, password=password,
                database=database, timeout=timeout))
        except BaseException:
            self._shutdown_loop()
            raise

    def _call(self, coro: "Coroutine[Any, Any, Any]") -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop.close()

    # -- statements -----------------------------------------------------------

    def execute(self, sql: str, params: tuple = ()) -> ClientResult:
        return self._call(self._conn.execute(sql, params))

    def query(self, sql: str) -> "list[ClientResult]":
        return self._call(self._conn.query(sql))

    def begin(self) -> None:
        self._call(self._conn.begin())

    def commit(self) -> None:
        self._call(self._conn.commit())

    def rollback(self) -> None:
        self._call(self._conn.rollback())

    # -- state ----------------------------------------------------------------

    @property
    def transaction_status(self) -> str:
        return self._conn.transaction_status

    @property
    def parameters(self) -> dict:
        return self._conn.parameters

    @property
    def closed(self) -> bool:
        return self._conn.closed

    def close(self) -> None:
        """Terminate the session and stop the client thread; idempotent."""
        if self._thread.is_alive():
            try:
                self._call(self._conn.close())
            finally:
                self._shutdown_loop()

    def __enter__(self) -> "SyncConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
