"""Pure-asyncio client for the repro wire server.

Async::

    from repro.client import connect

    conn = await connect("127.0.0.1", 5433, user="repro")
    result = await conn.execute("SELECT * FROM r WHERE a > $1", (1,))
    print(result.columns, result.rows)
    await conn.close()

Blocking (private event loop on a daemon thread)::

    from repro.client import SyncConnection

    with SyncConnection("127.0.0.1", 5433, user="repro") as conn:
        print(conn.execute("SELECT 1 + 1").rows)

Server errors re-raise as the matching :mod:`repro.errors` exception,
so network and in-process code share one error-handling path.
"""

from .connection import (
    AsyncConnection, AsyncPreparedStatement, ClientResult, connect,
)
from .sync import SyncConnection

__all__ = [
    "AsyncConnection",
    "AsyncPreparedStatement",
    "ClientResult",
    "SyncConnection",
    "connect",
]
