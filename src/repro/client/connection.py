"""A thin pure-asyncio client for the repro wire server.

Speaks the same PostgreSQL-v3 subset as :mod:`repro.server`: startup
with trust or cleartext-password auth, the simple query protocol
(:meth:`AsyncConnection.query`), and the extended protocol
(:meth:`AsyncConnection.execute`, :meth:`AsyncConnection.prepare`,
portal streaming with ``Execute(max_rows)`` / PortalSuspended).  Server
errors arrive as ErrorResponse messages and are re-raised as the
matching :mod:`repro.errors` exception via
:func:`repro.server.protocol.exception_for`, so client code catches the
same hierarchy it would in-process.

Values travel in text format and are decoded by result-column OID, so
rows come back as the Python values the engine produced (int, float,
str, bool, None).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, AsyncIterator, Callable, Sequence
from dataclasses import dataclass, field

from ..errors import InterfaceError, OperationalError, ProtocolError
from ..server import protocol


def _decode(values: Sequence["bytes | None"],
            description: "Sequence[tuple[str, int]] | None") -> tuple:
    """Wire values -> Python values per a (name, oid) description."""
    if description is None or len(values) != len(description):
        raise ProtocolError(
            f"DataRow carries {len(values)} value(s) for "
            f"{len(description or ())} described column(s)")
    return tuple(protocol.decode_text(value, oid)
                 for value, (_, oid) in zip(values, description))


@dataclass
class ClientResult:
    """One completed statement: decoded rows plus metadata."""

    #: (name, type_oid) per column; None for row-less statements.
    description: "tuple | None" = None
    rows: list = field(default_factory=list)
    #: CommandComplete tag, e.g. ``"SELECT 3"`` or ``"INSERT 0 1"``.
    tag: str = ""
    notices: list = field(default_factory=list)

    @property
    def columns(self) -> tuple:
        return tuple(name for name, _ in self.description or ())

    @property
    def provenance_columns(self) -> tuple:
        """Result columns carrying provenance, by the engine's
        ``prov_`` naming contract."""
        return tuple(name for name in self.columns
                     if name.startswith("prov_"))

    @property
    def rowcount(self) -> int:
        """Rows affected/returned, parsed from the command tag."""
        parts = self.tag.split()
        if parts and parts[-1].isdigit():
            return int(parts[-1])
        return -1


class AsyncConnection:
    """One server session.  Create with :func:`connect`; not safe for
    concurrent use from multiple tasks — issue one statement at a time
    (open one connection per task instead)."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._stream = protocol.MessageStream()
        self._closed = False
        self.parameters: dict = {}
        self.backend_pid = 0
        self.transaction_status = "I"
        self._statement_names = itertools.count(1)

    # -- plumbing -------------------------------------------------------------

    async def _recv(self) -> Any:
        """The next backend message (decoded)."""
        while True:
            framed = self._stream.next_message()
            if framed is not None:
                return protocol.parse_backend(*framed)
            data = await self._reader.read(1 << 16)
            if not data:
                self._closed = True
                raise OperationalError("server closed the connection")
            self._stream.feed(data)

    async def _send(self, *messages: Any) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")
        try:
            self._writer.write(b"".join(m.encode() for m in messages))
            await self._writer.drain()
        except ConnectionError as exc:
            self._closed = True
            raise OperationalError(
                f"connection lost: {exc}") from exc

    async def _drain_until_ready(
            self, error: "BaseException | None" = None,
            on_message: "Callable[[Any], None] | None" = None) -> None:
        """Consume messages up to ReadyForQuery, then raise the first
        error seen (if any).  *on_message* observes every message."""
        while True:
            message = await self._recv()
            if isinstance(message, protocol.ReadyForQuery):
                self.transaction_status = message.status
                if error is not None:
                    raise error
                return
            if isinstance(message, protocol.ErrorResponse) and \
                    not isinstance(message, protocol.NoticeResponse):
                if error is None:
                    error = protocol.exception_for(
                        message.sqlstate, message.message)
                if message.severity == "FATAL":
                    self._closed = True
                    raise error
                continue
            if on_message is not None:
                on_message(message)

    # -- statements -----------------------------------------------------------

    async def query(self, sql: str) -> "list[ClientResult]":
        """Run *sql* via the **simple** query protocol; returns one
        :class:`ClientResult` per statement in the string."""
        await self._send(protocol.Query(sql))
        results: list[ClientResult] = []
        current = ClientResult()

        def observe(message):
            nonlocal current
            if isinstance(message, protocol.RowDescription):
                current.description = tuple(
                    (f.name, f.type_oid) for f in message.fields)
            elif isinstance(message, protocol.DataRow):
                current.rows.append(
                    _decode(message.values, current.description))
            elif isinstance(message, protocol.CommandComplete):
                current.tag = message.tag
                results.append(current)
                current = ClientResult()
            elif isinstance(message, protocol.EmptyQueryResponse):
                current = ClientResult()
            elif isinstance(message, protocol.NoticeResponse):
                current.notices.append(message.message)

        await self._drain_until_ready(on_message=observe)
        return results

    async def execute(self, sql: str, params: tuple = ()) -> ClientResult:
        """Run one statement via the **extended** protocol (unnamed
        statement and portal), with ``$n`` parameters."""
        await self._send(
            protocol.Parse("", sql),
            protocol.Bind("", "", (), tuple(protocol.encode_text(p)
                                            for p in params)),
            protocol.Describe("P", ""),
            protocol.Execute("", 0),
            protocol.Sync())
        return await self._collect_execution()

    async def _collect_execution(self) -> ClientResult:
        result = ClientResult()

        def observe(message):
            if isinstance(message, protocol.RowDescription):
                result.description = tuple(
                    (f.name, f.type_oid) for f in message.fields)
            elif isinstance(message, protocol.DataRow):
                result.rows.append(
                    _decode(message.values, result.description))
            elif isinstance(message, protocol.CommandComplete):
                result.tag = message.tag
            elif isinstance(message, protocol.NoticeResponse):
                result.notices.append(message.message)

        await self._drain_until_ready(on_message=observe)
        return result

    async def prepare(self, sql: str,
                      name: "str | None" = None) -> "AsyncPreparedStatement":
        """Parse + describe *sql* as a named server-side statement."""
        if name is None:
            name = f"_repro_stmt_{next(self._statement_names)}"
        await self._send(
            protocol.Parse(name, sql),
            protocol.Describe("S", name),
            protocol.Sync())
        statement = AsyncPreparedStatement(self, name, sql)

        def observe(message):
            if isinstance(message, protocol.ParameterDescription):
                statement.param_oids = message.oids
            elif isinstance(message, protocol.RowDescription):
                statement.description = tuple(
                    (f.name, f.type_oid) for f in message.fields)

        await self._drain_until_ready(on_message=observe)
        return statement

    # -- transactions ---------------------------------------------------------

    async def begin(self) -> None:
        await self.execute("BEGIN")

    async def commit(self) -> None:
        await self.execute("COMMIT")

    async def rollback(self) -> None:
        await self.execute("ROLLBACK")

    @property
    def in_transaction(self) -> bool:
        return self.transaction_status in ("T", "E")

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    async def close(self) -> None:
        """Send Terminate and drop the socket; idempotent."""
        if not self._closed:
            self._closed = True
            try:
                self._writer.write(protocol.Terminate().encode())
                await self._writer.drain()
            except ConnectionError:
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass

    def abort(self) -> None:
        """Drop the socket immediately — no Terminate, no flush.  Used
        to exercise server-side cleanup of abandoned result streams."""
        self._closed = True
        transport = self._writer.transport
        if transport is not None:
            transport.abort()

    async def __aenter__(self) -> "AsyncConnection":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()


class AsyncPreparedStatement:
    """A named server-side statement created by
    :meth:`AsyncConnection.prepare`."""

    def __init__(self, conn: AsyncConnection, name: str,
                 sql: str) -> None:
        self._conn = conn
        self.name = name
        self.sql = sql
        self.param_oids: tuple = ()
        self.description: "tuple | None" = None

    @property
    def param_count(self) -> int:
        return len(self.param_oids)

    async def execute(self, params: tuple = ()) -> ClientResult:
        """Bind to the unnamed portal and run to completion."""
        await self._conn._send(
            protocol.Bind("", self.name, (),
                          tuple(protocol.encode_text(p) for p in params)),
            protocol.Describe("P", ""),
            protocol.Execute("", 0),
            protocol.Sync())
        return await self._conn._collect_execution()

    async def stream(self, params: tuple = (), batch: int = 100
                     ) -> "AsyncIterator[tuple]":
        """Async iterator over decoded rows, fetched *batch* at a time
        through a named portal (Execute ``max_rows`` + PortalSuspended).
        Closing the iterator early closes the portal server-side."""
        portal = f"_repro_portal_{self.name}"
        conn = self._conn
        await conn._send(
            protocol.Bind(portal, self.name, (),
                          tuple(protocol.encode_text(p) for p in params)),
            protocol.Sync())
        await conn._drain_until_ready()
        description = self.description
        try:
            while True:
                await conn._send(protocol.Execute(portal, batch),
                                 protocol.Sync())
                rows: list = []
                suspended = False

                def observe(message):
                    nonlocal suspended
                    if isinstance(message, protocol.DataRow):
                        rows.append(_decode(message.values, description))
                    elif isinstance(message, protocol.PortalSuspended):
                        suspended = True

                await conn._drain_until_ready(on_message=observe)
                for row in rows:
                    yield row
                if not suspended:
                    return
        finally:
            if not conn.closed:
                await conn._send(protocol.CloseMsg("P", portal),
                                 protocol.Sync())
                await conn._drain_until_ready()

    async def close(self) -> None:
        """Release the server-side statement."""
        if self._conn.closed:
            return
        await self._conn._send(protocol.CloseMsg("S", self.name),
                               protocol.Sync())
        await self._conn._drain_until_ready()


async def connect(host: str = "127.0.0.1", port: int = 5433, *,
                  user: str = "repro", password: "str | None" = None,
                  database: "str | None" = None,
                  timeout: float = 10.0) -> AsyncConnection:
    """Open a connection and run the startup handshake."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    conn = AsyncConnection(reader, writer)
    options = {"user": user,
               "database": database or user,
               "application_name": "repro.client"}
    try:
        await conn._send(protocol.Startup(tuple(options.items())))
        while True:
            message = await asyncio.wait_for(conn._recv(), timeout)
            if isinstance(message, protocol.Authentication):
                if message.code == protocol.AUTH_OK:
                    continue
                if message.code == protocol.AUTH_CLEARTEXT_PASSWORD:
                    if password is None:
                        raise protocol.exception_for(
                            "28P01", f'no password supplied for user '
                                     f'"{user}"')
                    await conn._send(protocol.Password(password))
                    continue
                raise ProtocolError(
                    f"unsupported authentication request {message.code}")
            if isinstance(message, protocol.ParameterStatus):
                conn.parameters[message.name] = message.value
            elif isinstance(message, protocol.BackendKeyData):
                conn.backend_pid = message.pid
            elif isinstance(message, protocol.ReadyForQuery):
                conn.transaction_status = message.status
                return conn
            elif isinstance(message, protocol.NoticeResponse):
                continue
            elif isinstance(message, protocol.ErrorResponse):
                raise protocol.exception_for(
                    message.sqlstate, message.message)
    except BaseException:
        writer.close()
        raise
