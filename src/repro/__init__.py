"""repro — a reproduction of *Provenance for Nested Subqueries*
(Glavic & Alonso, EDBT 2009).

A pure-Python, Perm-style provenance management system: a bag-semantics
relational engine with a SQL frontend whose ``SELECT PROVENANCE`` queries
are rewritten — via the paper's Gen / Left / Move / Unn strategies — into
plain relational algebra that computes each result tuple's Why-provenance
(Definition 2, extended provenance contribution) alongside the result.

Quickstart::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE r (a int, b int)")
    db.execute("INSERT INTO r VALUES (1, 1), (2, 1), (3, 2)")
    db.execute("CREATE TABLE s (c int, d int)")
    db.execute("INSERT INTO s VALUES (1, 3), (2, 4), (4, 5)")
    result = db.sql(
        "SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)")
    print(result.pretty())
"""

from .catalog import Catalog
from .datatypes import NULL, SQLType
from .db import Database
from .engine import ExecutionStats, Executor
from .errors import (
    AnalyzerError,
    CatalogError,
    ExecutionError,
    ExpressionError,
    ReproError,
    RewriteError,
    SchemaError,
    SQLSyntaxError,
    UnsupportedFeatureError,
)
from .provenance import ProvenanceRewriter, RewriteResult
from .relation import Relation
from .schema import Attribute, Schema

__version__ = "1.0.0"

__all__ = [
    "Attribute", "Catalog", "Database", "ExecutionStats", "Executor",
    "NULL", "ProvenanceRewriter", "Relation", "RewriteResult", "SQLType",
    "Schema",
    "AnalyzerError", "CatalogError", "ExecutionError", "ExpressionError",
    "ReproError", "RewriteError", "SQLSyntaxError", "SchemaError",
    "UnsupportedFeatureError",
    "__version__",
]
