"""repro — a reproduction of *Provenance for Nested Subqueries*
(Glavic & Alonso, EDBT 2009).

A pure-Python, Perm-style provenance management system: a bag-semantics
relational engine with a SQL frontend whose ``SELECT PROVENANCE`` queries
are rewritten — via the paper's Gen / Left / Move / Unn strategies — into
plain relational algebra that computes each result tuple's Why-provenance
(Definition 2, extended provenance contribution) alongside the result.

Quickstart (the session API)::

    from repro import connect

    with connect() as conn:
        cur = conn.cursor()
        cur.execute("CREATE TABLE r (a int, b int)")
        cur.executemany("INSERT INTO r VALUES (?, ?)",
                        [(1, 1), (2, 1), (3, 2)])
        cur.execute("CREATE TABLE s (c int, d int)")
        cur.executemany("INSERT INTO s VALUES (?, ?)",
                        [(1, 3), (2, 4), (4, 5)])
        ps = conn.prepare(
            "SELECT PROVENANCE * FROM r WHERE a = ANY "
            "(SELECT c FROM s WHERE c < ?)")
        print(ps.execute((10,)).pretty())
        ps.execute((3,))   # plan-cache hit: no re-parse / re-rewrite

Prepared statements and cursors share a per-connection LRU plan cache
keyed by ``(sql, strategy, catalog version)``; rewrite strategies —
the built-in four included — resolve through the pluggable registry in
:mod:`repro.provenance.strategies`.  The legacy :class:`Database` facade
remains available and delegates to the same machinery.
"""

from .api import (
    CachedPlan, Connection, Cursor, PlanCache, PreparedStatement,
    SessionConfig, connect,
)
from .catalog import Catalog
from .datatypes import NULL, SQLType
from .db import Database
from .engine import ExecutionStats, Executor
from .errors import (
    AnalyzerError,
    BindError,
    CatalogError,
    ExecutionError,
    ExpressionError,
    InterfaceError,
    ReproError,
    RewriteError,
    SchemaError,
    SQLSyntaxError,
    UnsupportedFeatureError,
)
from .provenance import ProvenanceRewriter, RewriteResult
from .relation import Relation
from .schema import Attribute, Schema

__version__ = "1.1.0"

__all__ = [
    "Attribute", "CachedPlan", "Catalog", "Connection", "Cursor",
    "Database", "ExecutionStats", "Executor", "NULL", "PlanCache",
    "PreparedStatement", "ProvenanceRewriter", "Relation", "RewriteResult",
    "SQLType", "Schema", "SessionConfig", "connect",
    "AnalyzerError", "BindError", "CatalogError", "ExecutionError",
    "ExpressionError", "InterfaceError", "ReproError", "RewriteError",
    "SQLSyntaxError", "SchemaError", "UnsupportedFeatureError",
    "__version__",
]
