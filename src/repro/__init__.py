"""repro — a reproduction of *Provenance for Nested Subqueries*
(Glavic & Alonso, EDBT 2009).

A pure-Python, Perm-style provenance management system: a bag-semantics
relational engine with a SQL frontend whose ``SELECT PROVENANCE`` queries
are rewritten — via the paper's Gen / Left / Move / Unn strategies — into
plain relational algebra that computes each result tuple's Why-provenance
(Definition 2, extended provenance contribution) alongside the result.

Quickstart (the session API)::

    from repro import connect

    with connect() as conn:
        cur = conn.cursor()
        cur.execute("CREATE TABLE r (a int, b int)")
        cur.executemany("INSERT INTO r VALUES (?, ?)",
                        [(1, 1), (2, 1), (3, 2)])
        cur.execute("CREATE TABLE s (c int, d int)")
        cur.executemany("INSERT INTO s VALUES (?, ?)",
                        [(1, 3), (2, 4), (4, 5)])
        ps = conn.prepare(
            "SELECT PROVENANCE * FROM r WHERE a = ANY "
            "(SELECT c FROM s WHERE c < ?)")
        result = ps.execute((10,))
        print(result.pretty())
        print(result.witnesses(0))    # contributing input tuples

Multi-session: an :class:`Engine` owns the shared catalog, the
engine-wide plan cache and the reader-writer lock; ``engine.connect()``
mints thread-safe sessions with real ``BEGIN``/``COMMIT``/``ROLLBACK``
transactions under snapshot isolation::

    from repro import Engine

    engine = Engine()
    conn = engine.connect()
    with conn.transaction():
        conn.execute("INSERT INTO r VALUES (9, 9)")
        # invisible to other sessions until commit

Over the network: ``python -m repro.serve`` boots an asyncio server
speaking the PostgreSQL v3 wire protocol (``psql`` connects directly),
and :mod:`repro.client` provides async and blocking client connections —
see :mod:`repro.server`.

Prepared statements and cursors share the engine's LRU plan cache keyed
by ``(sql, strategy, session knobs, catalog version, stats version)``;
rewrite strategies — the built-in four included — resolve through the
pluggable registry in :mod:`repro.provenance.strategies`.  The legacy
:class:`Database` facade remains available and delegates to the same
machinery.
"""

from .api import (
    CachedPlan, Connection, Contribution, Cursor, Engine, PlanCache,
    PreparedStatement, Result, SessionConfig, Transaction, Witness,
    connect,
)
from .catalog import Catalog
from .datatypes import NULL, SQLType
from .db import Database
from .engine import ExecutionStats, Executor
from .errors import (
    AnalyzerError,
    AuthenticationError,
    BindError,
    CatalogError,
    ConnectionLimitError,
    DatabaseError,
    DataError,
    Error,
    ExecutionError,
    ExpressionError,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    ProtocolError,
    ReproError,
    RewriteError,
    SchemaError,
    SerializationError,
    ServerShutdownError,
    SQLSyntaxError,
    StorageError,
    TransactionError,
    UnsupportedFeatureError,
    Warning,
)
from .provenance import ProvenanceRewriter, RewriteResult
from .relation import Relation
from .schema import Attribute, Schema

__version__ = "1.2.0"

#: DB-API 2.0 module interface (PEP 249).
apilevel = "2.0"
#: Threads may share the module (and an :class:`Engine` — each thread
#: takes its own session via ``engine.connect()``), but not a single
#: :class:`Connection`.
threadsafety = 1
#: ``?`` positional parameter markers.
paramstyle = "qmark"

__all__ = [
    "Attribute", "CachedPlan", "Catalog", "Connection", "Contribution",
    "Cursor", "Database", "Engine", "ExecutionStats", "Executor", "NULL",
    "PlanCache", "PreparedStatement", "ProvenanceRewriter", "Relation",
    "Result", "RewriteResult", "SQLType", "Schema", "SessionConfig",
    "Transaction", "Witness", "connect",
    "apilevel", "paramstyle", "threadsafety",
    "AnalyzerError", "AuthenticationError", "BindError", "CatalogError",
    "ConnectionLimitError", "DataError",
    "DatabaseError", "Error", "ExecutionError", "ExpressionError",
    "IntegrityError", "InterfaceError", "InternalError",
    "NotSupportedError", "OperationalError", "ProgrammingError",
    "ProtocolError", "ReproError", "RewriteError", "SQLSyntaxError",
    "SchemaError", "SerializationError", "ServerShutdownError",
    "StorageError", "TransactionError", "UnsupportedFeatureError",
    "Warning",
    "__version__",
]
