"""Deterministic, dbgen-like TPC-H data generator.

Row counts scale linearly with the scale factor exactly as in dbgen
(supplier 10k·SF, part 200k·SF, partsupp 4/part, customer 150k·SF, orders
10/customer, lineitem 1-7/order; nation/region fixed).  The value domains
reproduce everything the paper's nine sublink queries predicate on:

* brands ``Brand#xy``, 150 part types from the 6x5x5 word grid, the 40
  containers, part names from the color-word list (Q20's ``forest%``),
* order/commit/ship/receipt date arithmetic (Q4's late orders, Q21's late
  line items),
* supplier comments occasionally containing ``Customer ... Complaints``
  (Q16's NOT IN),
* customer phone numbers with country codes (Q22),
* account balances, supply costs, quantities and prices in dbgen's ranges.

Generation is seeded and fully deterministic: the same ``(scale, seed)``
always yields byte-identical tables.
"""

from __future__ import annotations

import random
from datetime import date, timedelta
from typing import Iterator

from ..db import Database
from .schema import create_tpch_tables

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

_TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                    "PROMO"]
_TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                    "BRUSHED"]
_TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

_CONTAINER_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
_CONTAINER_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

_COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
    "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
    "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
    "green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory",
    "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime", "linen",
    "magenta", "maroon", "medium", "metallic", "midnight", "mint", "misty",
    "moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale",
    "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple",
    "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
    "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan",
    "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
]

_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
               "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                      "TAKE BACK RETURN"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
             "HOUSEHOLD"]
_COMMENT_WORDS = [
    "carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
    "requests", "packages", "accounts", "instructions", "foxes", "ideas",
    "pinto", "beans", "theodolites", "platelets", "dependencies", "excuses",
    "asymptotes", "courts", "dolphins", "multipliers", "sauternes",
]

_START_DATE = date(1992, 1, 1)
_ORDER_DATE_SPAN = 2406  # dbgen: 1992-01-01 .. 1998-08-02

# dbgen base cardinalities at SF = 1
_BASE_ROWS = {
    "supplier": 10_000,
    "part": 200_000,
    "customer": 150_000,
    "orders": 1_500_000,
}


def scale_rows(scale: float) -> dict[str, int]:
    """Row counts for each independently sized table at *scale*."""
    return {
        "supplier": max(2, round(_BASE_ROWS["supplier"] * scale)),
        "part": max(4, round(_BASE_ROWS["part"] * scale)),
        "customer": max(3, round(_BASE_ROWS["customer"] * scale)),
        "orders": max(10, round(_BASE_ROWS["orders"] * scale)),
    }


def _iso(day: date) -> str:
    return day.isoformat()


class TPCHGenerator:
    """Generates one deterministic TPC-H instance."""

    def __init__(self, scale: float = 0.001, seed: int = 0):
        self.scale = scale
        self.seed = seed
        self.rows = scale_rows(scale)
        self.rng = random.Random(f"tpch-{seed}-{round(scale * 1_000_000)}")

    # -- individual tables -----------------------------------------------------

    def regions(self) -> Iterator[tuple]:
        for key, name in enumerate(_REGIONS):
            yield (key, name, self._comment())

    def nations(self) -> Iterator[tuple]:
        for key, (name, region) in enumerate(_NATIONS):
            yield (key, name, region, self._comment())

    def suppliers(self) -> Iterator[tuple]:
        for key in range(1, self.rows["supplier"] + 1):
            nation = self.rng.randrange(len(_NATIONS))
            comment = self._comment()
            # dbgen plants Customer...Complaints in ~0.05% of comments; at
            # our scales that would never fire, so use 5%.
            if self.rng.random() < 0.05:
                comment = f"{comment} Customer insults Complaints"
            yield (
                key,
                f"Supplier#{key:09d}",
                self._address(),
                nation,
                self._phone(nation),
                round(self.rng.uniform(-999.99, 9999.99), 2),
                comment,
            )

    def parts(self) -> Iterator[tuple]:
        for key in range(1, self.rows["part"] + 1):
            name = " ".join(self.rng.sample(_COLORS, 5))
            mfgr = self.rng.randint(1, 5)
            brand = f"Brand#{mfgr}{self.rng.randint(1, 5)}"
            type_ = " ".join((
                self.rng.choice(_TYPE_SYLLABLE_1),
                self.rng.choice(_TYPE_SYLLABLE_2),
                self.rng.choice(_TYPE_SYLLABLE_3)))
            size = self.rng.randint(1, 50)
            container = (f"{self.rng.choice(_CONTAINER_1)} "
                         f"{self.rng.choice(_CONTAINER_2)}")
            price = round(90000 + (key % 200001) / 10 + 100 * (key % 1000),
                          2) / 100
            yield (key, name, f"Manufacturer#{mfgr}", brand, type_, size,
                   container, price, self._comment())

    def partsupps(self) -> Iterator[tuple]:
        suppliers = self.rows["supplier"]
        for part in range(1, self.rows["part"] + 1):
            for copy in range(4):
                supp = ((part + (copy * ((suppliers // 4) + 1))) %
                        suppliers) + 1
                yield (
                    part,
                    supp,
                    self.rng.randint(1, 9999),
                    round(self.rng.uniform(1.00, 1000.00), 2),
                    self._comment(),
                )

    def customers(self) -> Iterator[tuple]:
        for key in range(1, self.rows["customer"] + 1):
            nation = self.rng.randrange(len(_NATIONS))
            yield (
                key,
                f"Customer#{key:09d}",
                self._address(),
                nation,
                self._phone(nation),
                round(self.rng.uniform(-999.99, 9999.99), 2),
                self.rng.choice(_SEGMENTS),
                self._comment(),
            )

    def orders_and_lineitems(self) -> tuple[list[tuple], list[tuple]]:
        orders: list[tuple] = []
        lineitems: list[tuple] = []
        customers = self.rows["customer"]
        parts = self.rows["part"]
        suppliers = self.rows["supplier"]
        for key in range(1, self.rows["orders"] + 1):
            custkey = self.rng.randint(1, customers)
            order_day = _START_DATE + timedelta(
                days=self.rng.randrange(_ORDER_DATE_SPAN))
            line_count = self.rng.randint(1, 7)
            total = 0.0
            all_filled = True
            any_open = False
            for line in range(1, line_count + 1):
                part = self.rng.randint(1, parts)
                supp = self.rng.randint(1, suppliers)
                quantity = float(self.rng.randint(1, 50))
                extended = round(quantity * self.rng.uniform(900.0, 1100.0),
                                 2)
                discount = round(self.rng.uniform(0.0, 0.10), 2)
                tax = round(self.rng.uniform(0.0, 0.08), 2)
                ship_day = order_day + timedelta(
                    days=self.rng.randint(1, 121))
                commit_day = order_day + timedelta(
                    days=self.rng.randint(30, 90))
                receipt_day = ship_day + timedelta(
                    days=self.rng.randint(1, 30))
                shipped = ship_day <= date(1998, 12, 1)
                returnflag = self.rng.choice(["R", "A"]) if shipped and \
                    self.rng.random() < 0.25 else "N"
                linestatus = "F" if shipped else "O"
                if linestatus == "O":
                    all_filled = False
                    any_open = True
                total += extended * (1 + tax) * (1 - discount)
                lineitems.append((
                    key, part, supp, line, quantity, extended, discount,
                    tax, returnflag, linestatus, _iso(ship_day),
                    _iso(commit_day), _iso(receipt_day),
                    self.rng.choice(_SHIP_INSTRUCTIONS),
                    self.rng.choice(_SHIP_MODES), self._comment()))
            status = "F" if all_filled else ("O" if not any_open else "P")
            if not all_filled and any_open:
                status = "O" if self.rng.random() < 0.5 else "P"
            orders.append((
                key, custkey, status, round(total, 2), _iso(order_day),
                self.rng.choice(_PRIORITIES),
                f"Clerk#{self.rng.randint(1, 1000):09d}",
                0, self._comment()))
        return orders, lineitems

    # -- helpers ------------------------------------------------------------------

    def _comment(self) -> str:
        count = self.rng.randint(3, 8)
        return " ".join(
            self.rng.choice(_COMMENT_WORDS) for _ in range(count))

    def _address(self) -> str:
        length = self.rng.randint(10, 30)
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 ,"
        return "".join(self.rng.choice(alphabet) for _ in range(length))

    def _phone(self, nation: int) -> str:
        country = nation + 10
        return (f"{country}-{self.rng.randint(100, 999)}-"
                f"{self.rng.randint(100, 999)}-{self.rng.randint(1000, 9999)}")

    # -- loading -----------------------------------------------------------------

    def populate(self, db: Database) -> None:
        """Create and fill all eight tables in *db*."""
        create_tpch_tables(db)
        db.insert("region", self.regions())
        db.insert("nation", self.nations())
        db.insert("supplier", self.suppliers())
        db.insert("part", self.parts())
        db.insert("partsupp", self.partsupps())
        db.insert("customer", self.customers())
        orders, lineitems = self.orders_and_lineitems()
        db.insert("orders", orders)
        db.insert("lineitem", lineitems)


def load_tpch(scale: float = 0.001, seed: int = 0) -> Database:
    """A fresh :class:`Database` populated with a TPC-H instance."""
    db = Database()
    TPCHGenerator(scale, seed).populate(db)
    return db
