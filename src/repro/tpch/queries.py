"""The TPC-H sublink query templates (Section 4.2.1).

Nine TPC-H templates contain sublinks — Q2, Q4, Q11, Q15, Q16, Q17, Q20,
Q21 and Q22 — of which Q11, Q15 and Q16 are purely uncorrelated, exactly
the paper's split (Gen everywhere; Left and Move additionally on the
uncorrelated three).  Q18's ``IN`` sublink is also included as a bonus
template (``18``) but excluded from :data:`PAPER_SUBLINK_QUERIES`.

Templates are written in this engine's SQL dialect, which differs from the
TPC-H reference text only cosmetically: date arithmetic is pre-computed by
the parameter generator into literal dates, ``substring(x from a for b)``
is spelled ``substring(x, a, b)``, and Q15's ``revenue`` view is created
via :func:`install_views`.  Each call of :func:`query_sql` draws random
parameters from a seeded generator, mirroring the paper's use of qgen with
100 random instances per template.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

from ..api import Connection
from ..db import Database

PAPER_SUBLINK_QUERIES = (2, 4, 11, 15, 16, 17, 20, 21, 22)
UNCORRELATED_QUERIES = (11, 15, 16)
ALL_QUERIES = (2, 4, 11, 15, 16, 17, 18, 20, 21, 22)

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = ["FRANCE", "GERMANY", "CANADA", "SAUDI ARABIA", "BRAZIL",
            "JAPAN", "CHINA", "INDIA", "RUSSIA", "PERU"]
_TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                    "BRUSHED"]
_CONTAINERS = ["SM CASE", "LG BOX", "MED BOX", "MED BAG", "LG CAN",
               "SM PACK", "JUMBO PKG", "WRAP JAR"]
_COLORS = ["forest", "azure", "beige", "navy", "lime", "salmon", "peach",
           "linen", "plum", "ivory"]


def _iso(day: date) -> str:
    return day.isoformat()


def install_views(db: "Database | Connection",
                  rng: random.Random | None = None) -> None:
    """Create the ``revenue`` view required by Q15.

    Accepts either the legacy :class:`~repro.db.Database` facade or a
    :class:`~repro.api.Connection` (both expose ``create_view``)."""
    rng = rng or random.Random(15)
    start = date(1993, 1, 1) + timedelta(days=30 * rng.randint(0, 60))
    end = start + timedelta(days=90)
    db.create_view("revenue", f"""
        SELECT l_suppkey AS supplier_no,
               sum(l_extendedprice * (1 - l_discount)) AS total_revenue
        FROM lineitem
        WHERE l_shipdate >= '{_iso(start)}'
          AND l_shipdate < '{_iso(end)}'
        GROUP BY l_suppkey""")


def _q2(rng: random.Random) -> str:
    size = rng.randint(1, 50)
    type_ = rng.choice(_TYPE_SYLLABLE_3)
    region = rng.choice(_REGIONS)
    return f"""
    SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address,
           s_phone, s_comment
    FROM part, supplier, partsupp, nation, region
    WHERE p_partkey = ps_partkey
      AND s_suppkey = ps_suppkey
      AND p_size = {size}
      AND p_type LIKE '%{type_}'
      AND s_nationkey = n_nationkey
      AND n_regionkey = r_regionkey
      AND r_name = '{region}'
      AND ps_supplycost = (
            SELECT min(ps_supplycost)
            FROM partsupp, supplier, nation, region
            WHERE p_partkey = ps_partkey
              AND s_suppkey = ps_suppkey
              AND s_nationkey = n_nationkey
              AND n_regionkey = r_regionkey
              AND r_name = '{region}')
    ORDER BY s_acctbal DESC, n_name, s_name, p_partkey"""


def _q4(rng: random.Random) -> str:
    start = date(1993, 1, 1) + timedelta(days=30 * rng.randint(0, 57))
    end = start + timedelta(days=90)
    return f"""
    SELECT o_orderpriority, count(*) AS order_count
    FROM orders
    WHERE o_orderdate >= '{_iso(start)}'
      AND o_orderdate < '{_iso(end)}'
      AND EXISTS (
            SELECT * FROM lineitem
            WHERE l_orderkey = o_orderkey
              AND l_commitdate < l_receiptdate)
    GROUP BY o_orderpriority
    ORDER BY o_orderpriority"""


def _q11(rng: random.Random) -> str:
    nation = rng.choice(_NATIONS)
    # The fraction is 0.0001/SF in TPC-H; at reproduction scale a fixed
    # small fraction keeps the result non-trivial.
    fraction = rng.choice([0.001, 0.005, 0.01])
    return f"""
    SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value
    FROM partsupp, supplier, nation
    WHERE ps_suppkey = s_suppkey
      AND s_nationkey = n_nationkey
      AND n_name = '{nation}'
    GROUP BY ps_partkey
    HAVING sum(ps_supplycost * ps_availqty) > (
        SELECT sum(ps_supplycost * ps_availqty) * {fraction}
        FROM partsupp, supplier, nation
        WHERE ps_suppkey = s_suppkey
          AND s_nationkey = n_nationkey
          AND n_name = '{nation}')
    ORDER BY value DESC"""


def _q15(rng: random.Random) -> str:
    return """
    SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
    FROM supplier, revenue
    WHERE s_suppkey = supplier_no
      AND total_revenue = (SELECT max(total_revenue) FROM revenue)
    ORDER BY s_suppkey"""


def _q16(rng: random.Random) -> str:
    brand = f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}"
    type_ = f"{rng.choice(_TYPE_SYLLABLE_2)}"
    sizes = rng.sample(range(1, 51), 8)
    size_list = ", ".join(str(s) for s in sizes)
    return f"""
    SELECT p_brand, p_type, p_size,
           count(DISTINCT ps_suppkey) AS supplier_cnt
    FROM partsupp, part
    WHERE p_partkey = ps_partkey
      AND p_brand <> '{brand}'
      AND p_type NOT LIKE 'MEDIUM {type_}%'
      AND p_size IN ({size_list})
      AND ps_suppkey NOT IN (
            SELECT s_suppkey FROM supplier
            WHERE s_comment LIKE '%Customer%Complaints%')
    GROUP BY p_brand, p_type, p_size
    ORDER BY supplier_cnt DESC, p_brand, p_type, p_size"""


def _q17(rng: random.Random) -> str:
    brand = f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}"
    container = rng.choice(_CONTAINERS)
    return f"""
    SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
    FROM lineitem, part
    WHERE p_partkey = l_partkey
      AND p_brand = '{brand}'
      AND p_container = '{container}'
      AND l_quantity < (
            SELECT 0.2 * avg(l_quantity)
            FROM lineitem
            WHERE l_partkey = p_partkey)"""


def _q18(rng: random.Random) -> str:
    # TPC-H uses 300-315; reproduction-scale orders have fewer, smaller
    # line items, so scale the threshold down to keep results non-empty.
    quantity = rng.randint(120, 150)
    return f"""
    SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
           sum(l_quantity) AS total_quantity
    FROM customer, orders, lineitem
    WHERE o_orderkey IN (
            SELECT l_orderkey FROM lineitem
            GROUP BY l_orderkey
            HAVING sum(l_quantity) > {quantity})
      AND c_custkey = o_custkey
      AND o_orderkey = l_orderkey
    GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
    ORDER BY o_totalprice DESC, o_orderdate"""


def _q20(rng: random.Random) -> str:
    color = rng.choice(_COLORS)
    nation = rng.choice(_NATIONS)
    start = date(1993 + rng.randint(0, 4), 1, 1)
    end = date(start.year + 1, 1, 1)
    return f"""
    SELECT s_name, s_address
    FROM supplier, nation
    WHERE s_suppkey IN (
            SELECT ps_suppkey FROM partsupp
            WHERE ps_partkey IN (
                    SELECT p_partkey FROM part
                    WHERE p_name LIKE '{color}%')
              AND ps_availqty > (
                    SELECT 0.5 * sum(l_quantity)
                    FROM lineitem
                    WHERE l_partkey = ps_partkey
                      AND l_suppkey = ps_suppkey
                      AND l_shipdate >= '{_iso(start)}'
                      AND l_shipdate < '{_iso(end)}'))
      AND s_nationkey = n_nationkey
      AND n_name = '{nation}'
    ORDER BY s_name"""


def _q21(rng: random.Random) -> str:
    nation = rng.choice(_NATIONS)
    return f"""
    SELECT s_name, count(*) AS numwait
    FROM supplier, lineitem l1, orders, nation
    WHERE s_suppkey = l1.l_suppkey
      AND o_orderkey = l1.l_orderkey
      AND o_orderstatus = 'F'
      AND l1.l_receiptdate > l1.l_commitdate
      AND EXISTS (
            SELECT * FROM lineitem l2
            WHERE l2.l_orderkey = l1.l_orderkey
              AND l2.l_suppkey <> l1.l_suppkey)
      AND NOT EXISTS (
            SELECT * FROM lineitem l3
            WHERE l3.l_orderkey = l1.l_orderkey
              AND l3.l_suppkey <> l1.l_suppkey
              AND l3.l_receiptdate > l3.l_commitdate)
      AND s_nationkey = n_nationkey
      AND n_name = '{nation}'
    GROUP BY s_name
    ORDER BY numwait DESC, s_name"""


def _q22(rng: random.Random) -> str:
    codes = rng.sample(range(10, 35), 7)
    code_list = ", ".join(f"'{c}'" for c in codes)
    return f"""
    SELECT cntrycode, count(*) AS numcust, sum(c_acctbal) AS totacctbal
    FROM (SELECT substring(c_phone, 1, 2) AS cntrycode, c_acctbal,
                 c_custkey
          FROM customer
          WHERE substring(c_phone, 1, 2) IN ({code_list})
            AND c_acctbal > (
                  SELECT avg(c_acctbal) FROM customer
                  WHERE c_acctbal > 0.00
                    AND substring(c_phone, 1, 2) IN ({code_list}))
            AND NOT EXISTS (
                  SELECT * FROM orders
                  WHERE o_custkey = c_custkey)) AS custsale
    GROUP BY cntrycode
    ORDER BY cntrycode"""


_TEMPLATES = {
    2: _q2, 4: _q4, 11: _q11, 15: _q15, 16: _q16, 17: _q17, 18: _q18,
    20: _q20, 21: _q21, 22: _q22,
}


def query_sql(number: int, seed: int = 0) -> str:
    """The SQL text of template *number* with seeded random parameters."""
    if number not in _TEMPLATES:
        raise KeyError(
            f"no sublink template for Q{number}; available: "
            f"{sorted(_TEMPLATES)}")
    return _TEMPLATES[number](random.Random(f"q{number}-{seed}")).strip()


def query_strategies(number: int) -> tuple[str, ...]:
    """The strategies the paper runs for template *number*.

    Gen applies to all nine; Left and Move additionally to the three
    purely uncorrelated templates (Q11, Q15, Q16).  None of the nine
    matches the Unn patterns (as the paper notes).
    """
    if number in UNCORRELATED_QUERIES:
        return ("gen", "left", "move")
    return ("gen",)
