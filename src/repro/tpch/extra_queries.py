"""Sublink-free TPC-H templates (Q1, Q3, Q5, Q6, Q10).

The paper's experiments only need the nine sublink templates, but a
provenance system that is "of limited use" without sublinks (the paper's
motivation) still has to handle the rest of the workload; these templates
exercise provenance through plain selection-projection-join-aggregation
plans at TPC-H scale and serve as the no-sublink baseline in examples and
tests.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
             "HOUSEHOLD"]
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]


def _iso(day: date) -> str:
    return day.isoformat()


def _q1(rng: random.Random) -> str:
    delta = rng.randint(60, 120)
    cutoff = date(1998, 12, 1) - timedelta(days=delta)
    return f"""
    SELECT l_returnflag, l_linestatus,
           sum(l_quantity) AS sum_qty,
           sum(l_extendedprice) AS sum_base_price,
           sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
           sum(l_extendedprice * (1 - l_discount) * (1 + l_tax))
               AS sum_charge,
           avg(l_quantity) AS avg_qty,
           avg(l_extendedprice) AS avg_price,
           avg(l_discount) AS avg_disc,
           count(*) AS count_order
    FROM lineitem
    WHERE l_shipdate <= '{_iso(cutoff)}'
    GROUP BY l_returnflag, l_linestatus
    ORDER BY l_returnflag, l_linestatus"""


def _q3(rng: random.Random) -> str:
    segment = rng.choice(_SEGMENTS)
    pivot = date(1995, 3, rng.randint(1, 28))
    return f"""
    SELECT l_orderkey,
           sum(l_extendedprice * (1 - l_discount)) AS revenue,
           o_orderdate, o_shippriority
    FROM customer, orders, lineitem
    WHERE c_mktsegment = '{segment}'
      AND c_custkey = o_custkey
      AND l_orderkey = o_orderkey
      AND o_orderdate < '{_iso(pivot)}'
      AND l_shipdate > '{_iso(pivot)}'
    GROUP BY l_orderkey, o_orderdate, o_shippriority
    ORDER BY revenue DESC, o_orderdate"""


def _q5(rng: random.Random) -> str:
    region = rng.choice(_REGIONS)
    start = date(rng.randint(1993, 1997), 1, 1)
    end = date(start.year + 1, 1, 1)
    return f"""
    SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
    FROM customer, orders, lineitem, supplier, nation, region
    WHERE c_custkey = o_custkey
      AND l_orderkey = o_orderkey
      AND l_suppkey = s_suppkey
      AND c_nationkey = s_nationkey
      AND s_nationkey = n_nationkey
      AND n_regionkey = r_regionkey
      AND r_name = '{region}'
      AND o_orderdate >= '{_iso(start)}'
      AND o_orderdate < '{_iso(end)}'
    GROUP BY n_name
    ORDER BY revenue DESC"""


def _q6(rng: random.Random) -> str:
    start = date(rng.randint(1993, 1997), 1, 1)
    end = date(start.year + 1, 1, 1)
    discount = rng.choice([0.02, 0.04, 0.06, 0.08])
    quantity = rng.choice([24, 25])
    return f"""
    SELECT sum(l_extendedprice * l_discount) AS revenue
    FROM lineitem
    WHERE l_shipdate >= '{_iso(start)}'
      AND l_shipdate < '{_iso(end)}'
      AND l_discount BETWEEN {discount - 0.01} AND {discount + 0.01}
      AND l_quantity < {quantity}"""


def _q10(rng: random.Random) -> str:
    start = date(rng.randint(1993, 1995), rng.choice([1, 4, 7, 10]), 1)
    end = start + timedelta(days=90)
    return f"""
    SELECT c_custkey, c_name,
           sum(l_extendedprice * (1 - l_discount)) AS revenue,
           c_acctbal, n_name, c_address, c_phone, c_comment
    FROM customer, orders, lineitem, nation
    WHERE c_custkey = o_custkey
      AND l_orderkey = o_orderkey
      AND o_orderdate >= '{_iso(start)}'
      AND o_orderdate < '{_iso(end)}'
      AND l_returnflag = 'R'
      AND c_nationkey = n_nationkey
    GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address,
             c_comment
    ORDER BY revenue DESC"""


_EXTRA_TEMPLATES = {1: _q1, 3: _q3, 5: _q5, 6: _q6, 10: _q10}

BASELINE_QUERIES = tuple(sorted(_EXTRA_TEMPLATES))


def baseline_sql(number: int, seed: int = 0) -> str:
    """The SQL text of sublink-free template *number* (seeded params)."""
    if number not in _EXTRA_TEMPLATES:
        raise KeyError(
            f"no baseline template for Q{number}; available: "
            f"{BASELINE_QUERIES}")
    return _EXTRA_TEMPLATES[number](
        random.Random(f"base-q{number}-{seed}")).strip()
