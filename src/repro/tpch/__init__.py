"""TPC-H substrate: schema, deterministic data generator, and the sublink
query templates used by the paper's Figure 6 experiments."""

from .schema import TPCH_SCHEMAS, create_tpch_tables
from .datagen import TPCHGenerator, load_tpch, scale_rows
from .extra_queries import BASELINE_QUERIES, baseline_sql
from .queries import (
    ALL_QUERIES,
    PAPER_SUBLINK_QUERIES,
    UNCORRELATED_QUERIES,
    install_views,
    query_sql,
    query_strategies,
)

__all__ = [
    "TPCH_SCHEMAS", "create_tpch_tables",
    "TPCHGenerator", "load_tpch", "scale_rows",
    "ALL_QUERIES", "PAPER_SUBLINK_QUERIES", "UNCORRELATED_QUERIES",
    "BASELINE_QUERIES", "baseline_sql",
    "install_views", "query_sql", "query_strategies",
]
