"""The TPC-H schema (all eight tables, full column sets).

Dates are ISO-8601 strings (they order correctly under string comparison);
monetary values are floats.  Column names follow the TPC-H specification
so the query templates read exactly like the published ones.
"""

from __future__ import annotations

from ..db import Database

TPCH_SCHEMAS: dict[str, list[tuple[str, str]]] = {
    "region": [
        ("r_regionkey", "int"),
        ("r_name", "text"),
        ("r_comment", "text"),
    ],
    "nation": [
        ("n_nationkey", "int"),
        ("n_name", "text"),
        ("n_regionkey", "int"),
        ("n_comment", "text"),
    ],
    "supplier": [
        ("s_suppkey", "int"),
        ("s_name", "text"),
        ("s_address", "text"),
        ("s_nationkey", "int"),
        ("s_phone", "text"),
        ("s_acctbal", "float"),
        ("s_comment", "text"),
    ],
    "customer": [
        ("c_custkey", "int"),
        ("c_name", "text"),
        ("c_address", "text"),
        ("c_nationkey", "int"),
        ("c_phone", "text"),
        ("c_acctbal", "float"),
        ("c_mktsegment", "text"),
        ("c_comment", "text"),
    ],
    "part": [
        ("p_partkey", "int"),
        ("p_name", "text"),
        ("p_mfgr", "text"),
        ("p_brand", "text"),
        ("p_type", "text"),
        ("p_size", "int"),
        ("p_container", "text"),
        ("p_retailprice", "float"),
        ("p_comment", "text"),
    ],
    "partsupp": [
        ("ps_partkey", "int"),
        ("ps_suppkey", "int"),
        ("ps_availqty", "int"),
        ("ps_supplycost", "float"),
        ("ps_comment", "text"),
    ],
    "orders": [
        ("o_orderkey", "int"),
        ("o_custkey", "int"),
        ("o_orderstatus", "text"),
        ("o_totalprice", "float"),
        ("o_orderdate", "date"),
        ("o_orderpriority", "text"),
        ("o_clerk", "text"),
        ("o_shippriority", "int"),
        ("o_comment", "text"),
    ],
    "lineitem": [
        ("l_orderkey", "int"),
        ("l_partkey", "int"),
        ("l_suppkey", "int"),
        ("l_linenumber", "int"),
        ("l_quantity", "float"),
        ("l_extendedprice", "float"),
        ("l_discount", "float"),
        ("l_tax", "float"),
        ("l_returnflag", "text"),
        ("l_linestatus", "text"),
        ("l_shipdate", "date"),
        ("l_commitdate", "date"),
        ("l_receiptdate", "date"),
        ("l_shipinstruct", "text"),
        ("l_shipmode", "text"),
        ("l_comment", "text"),
    ],
}


def create_tpch_tables(db: Database) -> None:
    """Create all eight (empty) TPC-H tables in *db*."""
    for table, columns in TPCH_SCHEMAS.items():
        db.create_table(table, columns)
