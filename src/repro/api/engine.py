"""The shared engine core: one catalog, one plan cache, many sessions.

An :class:`Engine` owns everything that is shared between concurrent
sessions — the :class:`~repro.catalog.Catalog` (tables, views, secondary
indexes, statistics), the lock-guarded LRU plan cache, and the
reader-writer lock that orders readers' snapshots against writers'
commits::

    from repro import Engine

    engine = Engine()
    writer = engine.connect()
    reader = engine.connect(default_strategy="left")

Concurrency model (snapshot isolation, copy-on-write):

* Readers never hold a lock while executing.  Each statement (or each
  explicit transaction) captures a :meth:`snapshot` — a cheap
  dict-level copy of the catalog that pins the current ``Relation``,
  index and statistics *objects* — under the read lock, then plans and
  executes entirely against the pinned objects.
* Writers never mutate a pinned object.  A transaction applies its
  changes to private copy-on-write table/index copies; :meth:`commit`
  locks only its **conflict set** — the tables it wrote, dropped or
  created plus the index names it touched — through the per-name
  :class:`TableLockManager` (canonical sorted order, so overlapping
  committers cannot deadlock), validates first-committer-wins against
  the live catalog (a loser gets
  :class:`~repro.errors.SerializationError`), appends its WAL record
  through the group-commit flusher, and finally takes the write lock
  only for the brief dict-swap publish.  Commits on disjoint tables
  validate, flush and publish in parallel; a short-lived global
  barrier (``commit_barrier``) serializes only catalog-wide DDL
  (views), ``CHECKPOINT`` and close.
* Autocommit statements are one-statement transactions; on a
  serialization conflict the connection retries the statement on a
  fresh snapshot.

The legacy single-user entry points still work: ``repro.connect()``
mints a *private* engine per connection, and a bare
``Connection(config, catalog)`` does the same — nothing breaks, but
every connection now runs on the same transactional machinery.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..catalog import Catalog
from ..errors import InterfaceError
from .config import SessionConfig
from .plan_cache import PlanCache

if TYPE_CHECKING:  # pragma: no cover
    from .connection import Connection
    from .transaction import Transaction


class RWLock:
    """A writer-preferring reader-writer lock.

    Many readers may hold the lock concurrently; a writer holds it
    exclusively.  Writer-preferring: once a writer is waiting, new
    readers queue behind it, so a steady stream of snapshots cannot
    starve commits.  Both sides are reentrant for the holding thread —
    re-acquiring the read side while a writer is queued must not send
    the established reader to the back of the line — and a thread
    holding the write lock may also take (and release) the read side,
    which shares the write depth.  Read-to-write upgrades raise
    :class:`~repro.errors.InterfaceError` instead of deadlocking.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0                     # held read entries, re-entries included
        self._read_depths: dict[int, int] = {}  # thread id -> read depth
        self._writer: int | None = None      # owning thread id
        self._write_depth = 0
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:            # writer may re-enter as reader
                self._write_depth += 1
                return
            depth = self._read_depths.get(me, 0)
            if depth:
                # Re-entrant read.  This thread was already admitted; a
                # waiting writer cannot run until it fully releases, so
                # queueing behind the writer here (as a fresh reader
                # must) would deadlock both threads.
                self._read_depths[me] = depth + 1
                self._readers += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._read_depths[me] = 1
            self._readers += 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # The write-lock owner's read entries share the write
                # depth; route through the write-release bookkeeping so
                # a depth-0 release clears the owner and wakes waiters
                # even under a mismatched guard pairing.
                self._release_write_locked()
                return
            depth = self._read_depths.get(me, 0)
            assert depth > 0, \
                "release_read() without a matching acquire_read()"
            if depth == 1:
                del self._read_depths[me]
            else:
                self._read_depths[me] = depth - 1
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            if self._read_depths.get(me, 0):
                raise InterfaceError(
                    "read-to-write lock upgrade: this thread holds the "
                    "read side; the writer would wait for its own read "
                    "to release — restructure to release the read lock "
                    "first")
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._write_depth = 1

    def release_write(self) -> None:
        with self._cond:
            assert self._writer == threading.get_ident(), \
                "release_write() by a thread that does not own the lock"
            self._release_write_locked()

    def _release_write_locked(self) -> None:
        """Drop one write-side entry; caller holds ``self._cond``."""
        self._write_depth -= 1
        assert self._write_depth >= 0, "unbalanced write-lock release"
        if not self._write_depth:
            self._writer = None
            self._cond.notify_all()

    class _Guard:
        __slots__ = ("_acquire", "_release")

        def __init__(self, acquire: Callable[[], None],
                     release: Callable[[], None]) -> None:
            self._acquire = acquire
            self._release = release

        def __enter__(self) -> "RWLock._Guard":
            self._acquire()
            return self

        def __exit__(self, *exc_info: object) -> None:
            self._release()

    def read(self) -> "RWLock._Guard":
        """``with lock.read():`` — shared acquisition."""
        return RWLock._Guard(self.acquire_read, self.release_read)

    def write(self) -> "RWLock._Guard":
        """``with lock.write():`` — exclusive acquisition."""
        return RWLock._Guard(self.acquire_write, self.release_write)


class TableLockManager:
    """Named exclusive locks over the commit path's conflict sets.

    A committing transaction locks every name in its conflict set —
    tables it wrote, dropped or created (``t:<table>``) and index names
    it created or dropped (``i:<index>``) — before validating, so two
    commits can interleave only when their sets are disjoint.
    :meth:`acquire` sorts the keys and always locks in that one
    canonical order; overlapping committers therefore contend on their
    first common key and can never deadlock on each other.

    Locks are created on demand and never discarded: names are few,
    and dropping a lock while another thread holds it would fork the
    mutual exclusion it provides.
    """

    class _Guard:
        __slots__ = ("_locks",)

        def __init__(self, locks: list[threading.Lock]) -> None:
            self._locks = locks

        def __enter__(self) -> "TableLockManager._Guard":
            for lock in self._locks:
                lock.acquire()
            return self

        def __exit__(self, *exc_info: object) -> None:
            for lock in reversed(self._locks):
                lock.release()

    def __init__(self) -> None:
        self._registry_lock = threading.Lock()
        self._locks: dict[str, threading.Lock] = {}

    def _lock_for(self, key: str) -> threading.Lock:
        with self._registry_lock:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def acquire(self, keys: "Iterable[str]") -> "TableLockManager._Guard":
        """``with table_locks.acquire(keys):`` — all of *keys*,
        exclusively, taken in canonical (sorted, deduplicated) order."""
        ordered = sorted(set(keys))
        return TableLockManager._Guard(
            [self._lock_for(key) for key in ordered])


class Engine:
    """The shared, thread-safe core behind one or many sessions.

    *config* provides the default :class:`SessionConfig` new sessions
    inherit (each :meth:`connect` call may override fields); *catalog*
    adopts an existing catalog (the TPC-H loaders and tests build one up
    front).

    *path* makes the engine **durable**: the directory is created or
    recovered (snapshot + committed WAL suffix; a torn WAL tail —
    a crash mid-commit — is discarded), every commit appends its
    write-set to the WAL per ``config.durability``, and
    :meth:`checkpoint` (SQL: ``CHECKPOINT``) compacts the log into a
    fresh snapshot.
    """

    def __init__(self, config: SessionConfig | None = None,
                 catalog: Catalog | None = None,
                 path: "str | None" = None) -> None:
        self.config = config or SessionConfig()
        self.storage = None
        if path is not None:
            if catalog is not None:
                raise InterfaceError(
                    "pass either a catalog or a path, not both — a "
                    "durable engine recovers its catalog from disk")
            from ..storage.store import DurableStore
            self.storage, catalog = DurableStore.open(
                path, self.config.durability,
                group_commit_ms=self.config.group_commit_ms)
        self.catalog = catalog if catalog is not None else Catalog()
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self.lock = RWLock()
        #: Commit-scope barrier, ordered *before* the table locks and
        #: ``self.lock``.  Table-scoped commits hold its read side for
        #: their whole validate/log/publish span; catalog-wide commits
        #: (view DDL), ``exclusive()``, ``checkpoint()`` and ``close()``
        #: take the write side and therefore see no commit in flight.
        self.commit_barrier = RWLock()
        #: Per-name commit locks (see :class:`TableLockManager`).
        self.table_locks = TableLockManager()
        self._sessions: "weakref.WeakSet[Connection]" = weakref.WeakSet()
        self._closed = False
        # serializes close() against concurrent close()/checkpoint()
        # callers — close must run its teardown exactly once even when
        # several threads (server shutdown, a finalizer, user code) race
        self._close_lock = threading.Lock()
        self._checkpoint_thread: "threading.Thread | None" = None
        self._checkpoint_wakeup = threading.Event()
        if self.storage is not None and self.config.checkpoint_wal_mb > 0:
            # background checkpointing: the group-commit flusher flags
            # the event once the WAL outgrows the configured budget, and
            # this thread compacts it off the commit path
            self.storage.growth_threshold = \
                self.config.checkpoint_wal_mb * 1024 * 1024
            self.storage.growth_event = self._checkpoint_wakeup
            self._checkpoint_thread = threading.Thread(
                target=self._auto_checkpoint_loop,
                name="repro-checkpointer", daemon=True)
            self._checkpoint_thread.start()

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def connect(self, config: SessionConfig | None = None,
                **options: Any) -> "Connection":
        """Mint a new session over this engine's shared state.

        Keyword *options* are :class:`SessionConfig` fields overriding
        the engine's defaults for this session only::

            reader = engine.connect(default_strategy="left")
        """
        if self._closed:
            raise InterfaceError("engine is closed")
        from .connection import Connection
        if config is None:
            config = self.config
        # each session gets its own copy, so runtime mutation of one
        # session's config never leaks into its siblings (Connection
        # validates durability against the opened store)
        config = config.with_options(**options)
        return Connection(config, engine=self)

    def register(self, session: "Connection") -> None:
        """Track a live session (called by ``Connection.__init__``)."""
        self._sessions.add(session)

    def release(self, session: "Connection") -> None:
        """Forget a session (called by ``Connection.close``)."""
        self._sessions.discard(session)

    @property
    def session_count(self) -> int:
        """Number of live (unclosed) sessions on this engine."""
        return len(self._sessions)

    def close(self) -> None:
        """Close the engine and every session still open on it (a
        durable engine flushes and closes its WAL).

        Idempotent and thread-safe: concurrent close() calls run the
        teardown exactly once, and closing while other sessions are
        mid-statement is safe — open transactions are rolled back under
        each session's state lock, readers keep streaming from their
        pinned snapshots, and the WAL is closed under the write lock so
        it is never yanked out from under an in-flight commit.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        checkpointer = self._checkpoint_thread
        if checkpointer is not None:
            self._checkpoint_wakeup.set()   # observe _closed and exit
            checkpointer.join()
            self._checkpoint_thread = None
        for session in list(self._sessions):
            session.close()
        self._sessions.clear()
        self.plan_cache.clear()
        if self.storage is not None:
            # the barrier's write side drains every in-flight commit
            # (each holds the read side across its WAL flush), so the
            # store — and its flusher thread — shut down quiesced
            with self.commit_barrier.write():
                with self.lock.write():
                    self.storage.close()

    # -- durability -----------------------------------------------------------

    @property
    def path(self) -> "str | None":
        """The database directory of a durable engine, or None."""
        return None if self.storage is None else str(self.storage.path)

    def checkpoint(self) -> str:
        """Compact the WAL into a fresh snapshot (SQL: ``CHECKPOINT``).

        Runs under the commit barrier (exclusive) plus the write lock:
        no commit is mid-flush or mid-publish, so the image is a
        committed-state cut and every allocated LSN is both flushed and
        applied.  Returns the database directory.  Raises
        :class:`~repro.errors.StorageError` on an in-memory engine —
        there is nowhere to persist to (``Engine(path=...)`` /
        ``connect(path=...)`` attach one).
        """
        if self.storage is None:
            from ..errors import StorageError
            raise StorageError(
                "engine has no durable storage; open the database with "
                "Engine(path=...) or connect(path=...)")
        with self.commit_barrier.write():
            with self.lock.write():
                # re-checked under the locks: a close() racing this
                # call must not see its WAL resurrected by the
                # checkpoint
                if self._closed:
                    raise InterfaceError("engine is closed")
                self.storage.checkpoint(self.catalog)
        return str(self.storage.path)

    def _auto_checkpoint_loop(self) -> None:
        """Background checkpointer: waits for the flusher's WAL-growth
        signal and compacts without stalling committers for longer than
        one checkpoint's barrier hold."""
        from ..errors import StorageError
        while True:
            self._checkpoint_wakeup.wait()
            if self._closed:
                return
            self._checkpoint_wakeup.clear()
            try:
                self.checkpoint()
            except (InterfaceError, StorageError):
                # closed underneath us, or the store poisoned its WAL —
                # either way the foreground paths surface the error;
                # the background thread just stops compacting
                return

    # -- snapshots and transactions -------------------------------------------

    def snapshot(self) -> Catalog:
        """A consistent point-in-time catalog copy (see
        :meth:`repro.catalog.Catalog.snapshot`), captured under the read
        lock so it can never observe a half-applied commit."""
        with self.lock.read():
            return self.catalog.snapshot()

    def begin(self) -> "Transaction":
        """Open a snapshot-isolated transaction against this engine."""
        from .transaction import Transaction
        return Transaction(self)

    def commit_transaction(self, txn: "Transaction") -> None:
        """Validate and publish *txn* (the engine side of
        :meth:`Transaction.commit`).

        Lock order — the invariant every commit-path change must keep
        (checked by ``repro.analysis``, documented in
        ``docs/invariants.md``):

        1. ``commit_barrier`` — read side for a table-scoped commit,
           write side when the diff is catalog-wide (view DDL) or the
           engine runs with ``commit_locking="global"``;
        2. the per-name commit locks of the transaction's conflict set,
           in :class:`TableLockManager`'s canonical sorted order;
        3. ``self.lock`` — read side while validation gathers live
           state, write side for the publish.

        Commits whose conflict sets are disjoint therefore validate,
        group-flush their WAL records and publish concurrently; losers
        of a name conflict serialize on step 2 and fail validation with
        :class:`~repro.errors.SerializationError`.
        """
        from .transaction import (compute_commit_diff, publish_commit,
                                  validate_commit)
        diff = compute_commit_diff(txn)
        if diff.catalog_wide or self.config.commit_locking == "global":
            barrier = self.commit_barrier.write()
        else:
            barrier = self.commit_barrier.read()
        with barrier:
            with self.table_locks.acquire(diff.lock_keys):
                new_indexes, gone_indexes = validate_commit(
                    txn, diff, self.catalog, rlock=self.lock)
                storage = self.storage
                if storage is not None and storage.logs_commits:
                    from ..storage.wal import (collect_commit_ops,
                                               encode_commit_ops)
                    ops = collect_commit_ops(
                        txn, diff.created, diff.dropped, diff.written,
                        diff.new_views, diff.gone_views,
                        new_indexes, gone_indexes)
                    if ops:
                        # blocks until the group-commit flusher made
                        # the record durable per the durability mode; a
                        # flush failure aborts before any shared-state
                        # mutation below
                        storage.append_commit(encode_commit_ops(ops))
                with self.lock.write():
                    publish_commit(txn, diff, new_indexes, gone_indexes,
                                   self.catalog)

    def exclusive(self) -> "RWLock._Guard":
        """Full mutual exclusion against every commit *and* snapshot:
        the commit barrier (write side) plus the engine write lock, in
        the canonical outermost-first order.  The bulk-write path and
        the shell's ``\\tpch`` loader wrap multi-statement work in it;
        commits issued while holding it still succeed (both locks are
        reentrant and the table locks are free)."""
        barrier = self.commit_barrier.write()
        inner = self.lock.write()

        def acquire() -> None:
            barrier.__enter__()
            inner.__enter__()

        def release() -> None:
            inner.__exit__(None, None, None)
            barrier.__exit__(None, None, None)

        return RWLock._Guard(acquire, release)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else \
            f"{self.session_count} session(s)"
        return f"<Engine {len(self.catalog.names())} table(s), {state}>"
