"""The shared engine core: one catalog, one plan cache, many sessions.

An :class:`Engine` owns everything that is shared between concurrent
sessions — the :class:`~repro.catalog.Catalog` (tables, views, secondary
indexes, statistics), the lock-guarded LRU plan cache, and the
reader-writer lock that orders readers' snapshots against writers'
commits::

    from repro import Engine

    engine = Engine()
    writer = engine.connect()
    reader = engine.connect(default_strategy="left")

Concurrency model (snapshot isolation, copy-on-write):

* Readers never hold a lock while executing.  Each statement (or each
  explicit transaction) captures a :meth:`snapshot` — a cheap
  dict-level copy of the catalog that pins the current ``Relation``,
  index and statistics *objects* — under the read lock, then plans and
  executes entirely against the pinned objects.
* Writers never mutate a pinned object.  A transaction applies its
  changes to private copy-on-write table/index copies; :meth:`commit`
  takes the write lock, validates that no concurrently committed
  transaction touched the same tables (first-committer-wins — a loser
  gets :class:`~repro.errors.TransactionError`), and *swaps* the new
  objects into the shared catalog.  In-flight readers keep streaming
  from the old objects; statements started after the commit see the new
  ones.
* Autocommit statements are one-statement transactions executed while
  holding the write lock, so DDL/DML serialize.

The legacy single-user entry points still work: ``repro.connect()``
mints a *private* engine per connection, and a bare
``Connection(config, catalog)`` does the same — nothing breaks, but
every connection now runs on the same transactional machinery.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Any, Callable

from ..catalog import Catalog
from ..errors import InterfaceError
from .config import SessionConfig
from .plan_cache import PlanCache

if TYPE_CHECKING:  # pragma: no cover
    from .connection import Connection
    from .transaction import Transaction


class RWLock:
    """A writer-preferring reader-writer lock.

    Many readers may hold the lock concurrently; a writer holds it
    exclusively.  Writer-preferring: once a writer is waiting, new
    readers queue behind it, so a steady stream of snapshots cannot
    starve commits.  The write side is reentrant for the owning thread,
    and a thread holding the write lock may also take the read side —
    an autocommit statement commits its one-statement transaction while
    already holding the exclusive lock.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None      # owning thread id
        self._write_depth = 0
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:            # writer may re-enter as reader
                self._write_depth += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            if self._writer == threading.get_ident():
                self._write_depth -= 1
                return
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._write_depth = 1

    def release_write(self) -> None:
        with self._cond:
            self._write_depth -= 1
            if not self._write_depth:
                self._writer = None
                self._cond.notify_all()

    class _Guard:
        __slots__ = ("_acquire", "_release")

        def __init__(self, acquire: Callable[[], None],
                     release: Callable[[], None]) -> None:
            self._acquire = acquire
            self._release = release

        def __enter__(self) -> "RWLock._Guard":
            self._acquire()
            return self

        def __exit__(self, *exc_info: object) -> None:
            self._release()

    def read(self) -> "RWLock._Guard":
        """``with lock.read():`` — shared acquisition."""
        return RWLock._Guard(self.acquire_read, self.release_read)

    def write(self) -> "RWLock._Guard":
        """``with lock.write():`` — exclusive acquisition."""
        return RWLock._Guard(self.acquire_write, self.release_write)


class Engine:
    """The shared, thread-safe core behind one or many sessions.

    *config* provides the default :class:`SessionConfig` new sessions
    inherit (each :meth:`connect` call may override fields); *catalog*
    adopts an existing catalog (the TPC-H loaders and tests build one up
    front).

    *path* makes the engine **durable**: the directory is created or
    recovered (snapshot + committed WAL suffix; a torn WAL tail —
    a crash mid-commit — is discarded), every commit appends its
    write-set to the WAL per ``config.durability``, and
    :meth:`checkpoint` (SQL: ``CHECKPOINT``) compacts the log into a
    fresh snapshot.
    """

    def __init__(self, config: SessionConfig | None = None,
                 catalog: Catalog | None = None,
                 path: "str | None" = None) -> None:
        self.config = config or SessionConfig()
        self.storage = None
        if path is not None:
            if catalog is not None:
                raise InterfaceError(
                    "pass either a catalog or a path, not both — a "
                    "durable engine recovers its catalog from disk")
            from ..storage.store import DurableStore
            self.storage, catalog = DurableStore.open(
                path, self.config.durability)
        self.catalog = catalog if catalog is not None else Catalog()
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self.lock = RWLock()
        self._sessions: "weakref.WeakSet[Connection]" = weakref.WeakSet()
        self._closed = False
        # serializes close() against concurrent close()/checkpoint()
        # callers — close must run its teardown exactly once even when
        # several threads (server shutdown, a finalizer, user code) race
        self._close_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def connect(self, config: SessionConfig | None = None,
                **options: Any) -> "Connection":
        """Mint a new session over this engine's shared state.

        Keyword *options* are :class:`SessionConfig` fields overriding
        the engine's defaults for this session only::

            reader = engine.connect(default_strategy="left")
        """
        if self._closed:
            raise InterfaceError("engine is closed")
        from .connection import Connection
        if config is None:
            config = self.config
        # each session gets its own copy, so runtime mutation of one
        # session's config never leaks into its siblings (Connection
        # validates durability against the opened store)
        config = config.with_options(**options)
        return Connection(config, engine=self)

    def register(self, session: "Connection") -> None:
        """Track a live session (called by ``Connection.__init__``)."""
        self._sessions.add(session)

    def release(self, session: "Connection") -> None:
        """Forget a session (called by ``Connection.close``)."""
        self._sessions.discard(session)

    @property
    def session_count(self) -> int:
        """Number of live (unclosed) sessions on this engine."""
        return len(self._sessions)

    def close(self) -> None:
        """Close the engine and every session still open on it (a
        durable engine flushes and closes its WAL).

        Idempotent and thread-safe: concurrent close() calls run the
        teardown exactly once, and closing while other sessions are
        mid-statement is safe — open transactions are rolled back under
        each session's state lock, readers keep streaming from their
        pinned snapshots, and the WAL is closed under the write lock so
        it is never yanked out from under an in-flight commit.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for session in list(self._sessions):
            session.close()
        self._sessions.clear()
        self.plan_cache.clear()
        if self.storage is not None:
            with self.lock.write():
                self.storage.close()

    # -- durability -----------------------------------------------------------

    @property
    def path(self) -> "str | None":
        """The database directory of a durable engine, or None."""
        return None if self.storage is None else str(self.storage.path)

    def checkpoint(self) -> str:
        """Compact the WAL into a fresh snapshot (SQL: ``CHECKPOINT``).

        Runs under the write lock, so the image is a committed-state
        cut; returns the database directory.  Raises
        :class:`~repro.errors.StorageError` on an in-memory engine —
        there is nowhere to persist to (``Engine(path=...)`` /
        ``connect(path=...)`` attach one).
        """
        if self.storage is None:
            from ..errors import StorageError
            raise StorageError(
                "engine has no durable storage; open the database with "
                "Engine(path=...) or connect(path=...)")
        with self.lock.write():
            # re-checked under the lock: a close() racing this call
            # must not see its WAL resurrected by the checkpoint
            if self._closed:
                raise InterfaceError("engine is closed")
            self.storage.checkpoint(self.catalog)
        return str(self.storage.path)

    # -- snapshots and transactions -------------------------------------------

    def snapshot(self) -> Catalog:
        """A consistent point-in-time catalog copy (see
        :meth:`repro.catalog.Catalog.snapshot`), captured under the read
        lock so it can never observe a half-applied commit."""
        with self.lock.read():
            return self.catalog.snapshot()

    def begin(self) -> "Transaction":
        """Open a snapshot-isolated transaction against this engine."""
        from .transaction import Transaction
        return Transaction(self)

    def exclusive(self) -> "RWLock._Guard":
        """The write lock, as a context manager — the autocommit write
        path wraps one statement's begin/apply/commit in it."""
        return self.lock.write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else \
            f"{self.session_count} session(s)"
        return f"<Engine {len(self.catalog.names())} table(s), {state}>"
