"""Prepared statements.

A :class:`PreparedStatement` is parsed once and — for SELECTs — planned
once; re-executing it binds new ``?`` parameter values and runs the cached
plan directly, skipping parse → analyze → rewrite → optimize entirely.
The plan lives in the connection's LRU plan cache, so it is shared with
cursors executing the same SQL text and is transparently re-planned when
DDL bumps the catalog's generation counter.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, TYPE_CHECKING

from ..errors import BindError, InterfaceError
from ..sql.ast import SelectStmt, Statement

if TYPE_CHECKING:  # pragma: no cover
    from .connection import Connection
    from .result import Result


def check_arity(expected: int, params: Sequence[Any]) -> tuple:
    """Validate parameter bindings against a statement's placeholder count."""
    values = tuple(params)
    if len(values) != expected:
        raise BindError(
            f"statement takes {expected} parameter(s) "
            f"({len(values)} given)")
    return values


class PreparedStatement:
    """A statement compiled for repeated execution.

    Obtained from :meth:`repro.api.Connection.prepare`::

        ps = conn.prepare(
            "SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s "
            "WHERE c < ?)")
        first = ps.execute((10,))
        second = ps.execute((3,))      # plan-cache hit: no re-planning

    SELECTs return a :class:`~repro.relation.Relation`; INSERT/DELETE
    return the affected row count; DDL returns None.
    """

    def __init__(self, connection: "Connection", sql: str,
                 strategy: str | None = None) -> None:
        self._connection = connection
        self._sql = sql
        self._strategy = strategy
        self._closed = False
        self._statement: Statement = connection._parse(sql)
        self._param_count = getattr(self._statement, "param_count", 0)
        # Plan SELECTs eagerly: planning errors surface at prepare() time,
        # and the first execute() is already a cache hit.
        if isinstance(self._statement, SelectStmt):
            connection._get_plan(sql, strategy, statement=self._statement)

    # -- introspection --------------------------------------------------------

    @property
    def sql(self) -> str:
        """The SQL text this statement was prepared from."""
        return self._sql

    @property
    def param_count(self) -> int:
        """Number of ``?`` placeholders to bind on execute."""
        return self._param_count

    @property
    def is_select(self) -> bool:
        return isinstance(self._statement, SelectStmt)

    @property
    def column_names(self) -> tuple[str, ...] | None:
        """Output column names (SELECT only), without executing."""
        if not isinstance(self._statement, SelectStmt):
            return None
        cached = self._connection._get_plan(
            self._sql, self._strategy, statement=self._statement)
        return cached.column_names

    # -- execution ------------------------------------------------------------

    def execute(self, params: Sequence[Any] = ()) -> "Result | int | None":
        """Execute with *params* bound to the ``?`` placeholders.

        SELECTs return a streaming :class:`~repro.api.result.Result`.
        """
        if self._closed:
            raise InterfaceError("prepared statement is closed")
        values = check_arity(self._param_count, params)
        connection = self._connection
        if isinstance(self._statement, SelectStmt):
            connection._implicit_begin()
            catalog = connection._read_catalog()
            cached = connection._get_plan(
                self._sql, self._strategy, statement=self._statement,
                catalog=catalog)
            return connection._execute_plan(cached, values, catalog)
        return connection._run_statement(self._statement, values)

    __call__ = execute

    def executemany(self, seq_of_params: Iterable[Sequence[Any]]) -> int:
        """Execute once per parameter tuple; returns total affected rows
        (for INSERT/DELETE) or the number of executions (for SELECTs).

        Write statements run in one transaction — a single copy-on-write
        pass and a single commit for the whole batch.
        """
        total = 0
        if isinstance(self._statement, SelectStmt):
            for params in seq_of_params:
                self.execute(params)
                total += 1
            return total
        with self._connection._bulk():
            for params in seq_of_params:
                result = self.execute(params)
                total += result if isinstance(result, int) else 1
        return total

    def close(self) -> None:
        """Release the statement (the shared plan-cache entry survives)."""
        self._closed = True

    def __enter__(self) -> "PreparedStatement":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"params={self._param_count}"
        return f"<PreparedStatement {self._sql[:40]!r} {state}>"
