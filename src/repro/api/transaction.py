"""Snapshot-isolated transactions over a shared :class:`Engine`.

A :class:`Transaction` owns a private snapshot of the engine's catalog
(:meth:`repro.catalog.Catalog.snapshot` — copied dicts, shared
``Relation``/index/statistics objects).  All of the transaction's reads
and writes go through that private catalog:

* the first write to a table **privatizes** it — the rows list is copied
  and every index on it is cloned, so mutations never touch the objects
  concurrent readers have pinned (copy-on-write);
* DDL (CREATE/DROP of tables, views, indexes; ANALYZE) applies to the
  private catalog directly, visible to this transaction only.

``commit()`` hands the transaction to the engine, which — holding the
commit locks of the transaction's conflict set, not a global writer
lock — validates *first-committer-wins* against the per-table data
generations captured at snapshot time and then **swaps** the private
objects into the shared catalog under the engine write lock.  A
conflict raises :class:`~repro.errors.SerializationError` and leaves
the shared state untouched; ``rollback()`` (or an abandoned
transaction) simply discards
the private snapshot — tables, indexes and statistics all revert for
free because they were never changed.

The commit's change set is computed by *identity diff* against the
snapshot: a table whose ``Relation`` object differs from the snapshot's
was written (privatized); names present on one side only were created or
dropped.  Explicit op tracking is only needed for the drop-then-recreate
corner, which must behave as DDL (plan invalidation), not as a data swap.

On a durable engine (``Engine(path=...)``) the validated write-set is
additionally appended to the write-ahead log — and, in ``"commit"``
durability, fsynced — before the in-memory apply, so every published
commit is recoverable (:mod:`repro.storage.wal`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..catalog import Catalog
from ..errors import CatalogError, SerializationError, TransactionError
from ..relation import Relation
from ..schema import Schema
from ..storage.index import SecondaryIndex, build_index

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine, RWLock


class Transaction:
    """One snapshot-isolated unit of work (see the module docstring)."""

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        #: the private catalog this transaction reads from and writes to
        self.catalog: Catalog = engine.snapshot()
        self._base_tables = dict(self.catalog._tables)
        self._base_views = dict(self.catalog._views)
        self._base_indexes = dict(self.catalog._indexes)
        self._base_stats = dict(self.catalog.stats._stats)
        self._base_data_versions = self.catalog.data_versions()
        self._base_catalog_version = self.catalog.version
        self._base_stats_version = self.catalog.stats_version
        self._recreated: set[str] = set()   # dropped-then-recreated names
        # Row-level write-set, tracked only when commits are WAL-logged:
        # table -> (deleted rows, inserted rows).  Lets the commit log a
        # big table's small DML in O(delta) instead of re-diffing the
        # whole table under the write lock.
        storage = engine.storage
        self._track_wal = storage is not None and storage.logs_commits
        self._wal_deltas: dict[str, tuple[list, list]] = {}
        self._finished = False

    # -- state ----------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def diverged(self) -> bool:
        """True once the transaction performed private DDL or ANALYZE —
        its plans must stop sharing the engine-wide plan cache, whose
        keys are only meaningful for states the live catalog has had."""
        return (self.catalog.version != self._base_catalog_version
                or self.catalog.stats_version != self._base_stats_version)

    def _check_active(self) -> None:
        if self._finished:
            raise TransactionError("transaction is already finished")

    # -- write operations (against the private catalog) ------------------------

    def table_for_write(self, name: str) -> Relation:
        """The private, mutation-safe copy of *name* (copy-on-write).

        Callers must treat the returned relation's ``rows`` *list* as
        immutable once a statement finished: DML rebinds ``rows`` to a
        fresh list instead of mutating in place, so the transaction's
        own still-streaming results (whose scans captured the previous
        list at ``open``) are never torn by a later statement.
        """
        self._check_active()
        key = name.lower()
        stored = self.catalog.get(key)
        if stored is not self._base_tables.get(key):
            return stored           # created in-txn, or already privatized
        private = Relation.from_trusted_rows(stored.schema,
                                             list(stored.rows))
        clones = [index.clone() for index in self.catalog.indexes_on(key)]
        self.catalog.swap_table(key, private, clones)
        return private

    def insert_rows(self, name: str,
                    rows: Iterable[Sequence[Any]]) -> int:
        """Insert rows with statement-level atomicity: on any failure
        (unique violation, arity mismatch) every row this statement
        already inserted is backed out of the private indexes and the
        table is left exactly as before the statement — also inside an
        explicit transaction, whose earlier statements survive."""
        stored = self.table_for_write(name)
        indexes = self.catalog.indexes_on(name)
        new_rows = list(stored.rows)
        added: list[tuple] = []
        try:
            for row in rows:
                coerced = Relation._coerce(stored.schema, row)
                if indexes:
                    self.catalog.note_insert(name, (coerced,), indexes)
                new_rows.append(coerced)
                added.append(coerced)
        except BaseException:
            for row in reversed(added):
                for index in indexes:
                    index.remove(row)
            raise
        stored.rows = new_rows      # rebind: open streams keep the old list
        if self._track_wal:
            self._wal_deltas.setdefault(
                name.lower(), ([], []))[1].extend(added)
        return len(added)

    def delete_rows(self, name: str, removed: list[tuple]) -> None:
        """Index-maintenance hook after the caller filtered the private
        table's rows in place."""
        self._check_active()
        self.catalog.note_delete(name, removed)
        if self._track_wal:
            self._wal_deltas.setdefault(
                name.lower(), ([], []))[0].extend(removed)

    def create_table(self, name: str, schema: Schema,
                     rows: Iterable[tuple] = (),
                     partition: tuple[str, int] | None = None) -> None:
        """Create a table privately; *partition* is the optional
        ``PARTITION BY HASH(column) PARTITIONS count`` declaration."""
        self._check_active()
        key = name.lower()
        existed_in_base = key in self._base_tables
        self.catalog.create(key, schema, rows)
        if partition is not None:
            self.catalog.set_partition(key, partition[0], partition[1])
        if existed_in_base:
            self._recreated.add(key)

    def drop_table(self, name: str) -> None:
        self._check_active()
        self.catalog.drop(name)

    def run_ddl(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Apply a catalog DDL method (``create_view`` / ``drop_view`` /
        ``create_index`` / ``drop_index`` / ``analyze``) privately."""
        self._check_active()
        return getattr(self.catalog, method)(*args, **kwargs)

    # -- finishing ------------------------------------------------------------

    def commit(self) -> None:
        """Validate and publish this transaction's changes atomically.

        The engine drives the commit (see
        :meth:`repro.api.engine.Engine.commit_transaction`): it locks
        the transaction's conflict set, validates first-committer-wins,
        group-flushes the WAL record, and publishes under the write
        lock.  A loser raises
        :class:`~repro.errors.SerializationError` and leaves the shared
        state untouched."""
        self._check_active()
        try:
            self.engine.commit_transaction(self)
        finally:
            self._finished = True

    def rollback(self) -> None:
        """Discard the private snapshot; shared state was never touched."""
        self._finished = True


# ---------------------------------------------------------------------------
# Commit, in three phases driven by Engine.commit_transaction:
#   compute_commit_diff — pure diff of the private snapshot (no locks),
#   validate_commit     — first-committer-wins checks against the live
#                         catalog (caller holds the commit locks),
#   publish_commit      — the apply step, under the engine write lock.
# ---------------------------------------------------------------------------

def same_index_def(left: "SecondaryIndex",
                   right: "SecondaryIndex") -> bool:
    """Whether two same-named index objects define the same index.

    The commit diff cannot use object identity alone — privatizing a
    written table *clones* its indexes — so an index counts as changed
    only when its definition does.  Shared with the WAL writer, which
    must log exactly the drops/creates the live apply performs.
    """
    return (left.table == right.table and left.column == right.column
            and left.kind == right.kind and left.unique == right.unique)

@dataclass
class CommitDiff:
    """One transaction's private write-set, as names.

    Computed by :func:`compute_commit_diff` from the transaction's own
    snapshot only — no live-catalog reads — so the commit path can size
    its lock set *before* taking any lock.
    """

    created: list[str]
    dropped: list[str]
    written: list[str]
    new_views: list[tuple[str, Any]]
    gone_views: list[str]
    #: private index objects whose definition is new or changed vs base
    added_indexes: list[SecondaryIndex]
    #: (name, base index) pairs dropped or replaced by this transaction
    removed_indexes: list[tuple[str, SecondaryIndex]]
    #: tables whose statistics this transaction re-ANALYZEd
    stats_tables: list[str]

    @property
    def touched(self) -> set[str]:
        """Tables whose live entry the publish will swap or install."""
        return set(self.created) | set(self.written)

    @property
    def catalog_wide(self) -> bool:
        """View DDL rewrites name→AST bindings that *every* concurrent
        commit validates against by identity; it commits under the
        global barrier instead of per-name locks."""
        return bool(self.new_views or self.gone_views)

    @property
    def lock_keys(self) -> list[str]:
        """The conflict set as commit-lock keys: ``t:<table>`` for each
        table written/dropped/created/re-ANALYZEd or carrying index
        DDL, plus ``i:<index>`` for each index name created or dropped
        (two transactions creating the same index name on *different*
        tables must still conflict)."""
        keys = {f"t:{name}" for name in self.created}
        keys.update(f"t:{name}" for name in self.dropped)
        keys.update(f"t:{name}" for name in self.written)
        keys.update(f"t:{name}" for name in self.stats_tables)
        for index in self.added_indexes:
            keys.add(f"t:{index.table}")
            keys.add(f"i:{index.name}")
        for name, index in self.removed_indexes:
            keys.add(f"t:{index.table}")
            keys.add(f"i:{name}")
        return sorted(keys)


def compute_commit_diff(txn: Transaction) -> CommitDiff:
    """Identity-diff the transaction's private catalog against its
    snapshot baseline (see the module docstring for why identity is the
    right equality here)."""
    private = txn.catalog
    final_tables = private._tables
    created = [k for k in final_tables
               if k not in txn._base_tables or k in txn._recreated]
    dropped = [k for k in txn._base_tables
               if k not in final_tables or k in txn._recreated]
    written = [k for k, rel in final_tables.items()
               if k in txn._base_tables and k not in txn._recreated
               and rel is not txn._base_tables[k]]
    new_views = [(name, query) for name, query in private._views.items()
                 if txn._base_views.get(name) is not query]
    gone_views = [name for name in txn._base_views
                  if name not in private._views]
    added_indexes = []
    for name, index in private._indexes.items():
        base = txn._base_indexes.get(name)
        if base is not None and same_index_def(base, index):
            continue    # pre-existing index, or its copy-on-write clone
        added_indexes.append(index)
    removed_indexes = []
    for name, index in txn._base_indexes.items():
        survivor = private._indexes.get(name)
        if survivor is not None and same_index_def(survivor, index):
            continue    # kept (possibly as a clone), not dropped/replaced
        removed_indexes.append((name, index))
    # stats only for tables that are not *finally* gone — a
    # dropped-and-recreated table's in-txn ANALYZE must publish
    finally_gone = set(dropped) - set(created)
    stats_tables = [table for table, stats in private.stats._stats.items()
                    if table not in finally_gone
                    and txn._base_stats.get(table) is not stats]
    return CommitDiff(created=created, dropped=dropped, written=written,
                      new_views=new_views, gone_views=gone_views,
                      added_indexes=added_indexes,
                      removed_indexes=removed_indexes,
                      stats_tables=stats_tables)


def validate_commit(
    txn: Transaction, diff: CommitDiff, live: Catalog,
    rlock: "RWLock | None" = None,
) -> tuple[list[tuple[SecondaryIndex, bool]], list[tuple[str, bool]]]:
    """First-committer-wins validation against the live catalog.

    The caller holds the commit barrier and every lock in
    ``diff.lock_keys``, so the names under check cannot be republished
    concurrently — but *disjoint* commits may be publishing other names
    right now, so every live-catalog read happens under *rlock*'s read
    side (publishers mutate the shared dicts under its write side).
    The expensive part — rebuilding an index over a table that moved
    since the snapshot — runs after the read lock is released, against
    row lists pinned while it was held.

    Returns ``(new_indexes, gone_indexes)`` for :func:`publish_commit`:
    index objects (rebuilt where needed) paired with their
    installed-via-table-swap flag.  Any conflict raises
    :class:`~repro.errors.SerializationError`.
    """
    from contextlib import nullcontext

    private = txn.catalog
    new_indexes: list[tuple[SecondaryIndex, bool]] = []
    gone_indexes: list[tuple[str, bool]] = []
    #: (position in new_indexes, stale index, pinned live rows)
    rebuilds: list[tuple[int, SecondaryIndex, list]] = []
    touched = diff.touched
    dropped = set(diff.dropped)
    guard = nullcontext() if rlock is None else rlock.read()
    with guard:
        for key in set(diff.written) | dropped:
            if key not in live:
                raise SerializationError(
                    f"could not serialize access: table {key!r} was "
                    f"concurrently dropped")
            if live.data_version(key) != \
                    txn._base_data_versions.get(key, 0):
                raise SerializationError(
                    f"could not serialize access: table {key!r} was "
                    f"concurrently updated")
            # swapping/dropping this table replaces its index list
            # wholesale with the snapshot-era (plus in-txn) objects —
            # concurrent index DDL on it would be silently undone, so
            # it must conflict
            base_ids = {id(ix) for ix in txn._base_indexes.values()
                        if ix.table == key}
            live_ids = {id(ix) for ix in live.indexes_on(key)}
            if base_ids != live_ids:
                raise SerializationError(
                    f"could not serialize access: indexes on table "
                    f"{key!r} were concurrently changed")
        for key in diff.created:
            if key in live and key not in dropped:
                raise SerializationError(
                    f"could not serialize access: table {key!r} was "
                    f"concurrently created")
        for name, _ in diff.new_views:
            base_query = txn._base_views.get(name)
            live_query = live._views.get(name)
            if base_query is None:
                if live_query is not None:
                    raise SerializationError(
                        f"could not serialize access: view {name!r} "
                        f"was concurrently created")
            elif live_query is not base_query:
                raise SerializationError(
                    f"could not serialize access: view {name!r} was "
                    f"concurrently replaced or dropped")
        for name in diff.gone_views:
            if live._views.get(name) is not txn._base_views.get(name):
                raise SerializationError(
                    f"could not serialize access: view {name!r} was "
                    f"concurrently replaced or dropped")
        for index in diff.added_indexes:
            base = txn._base_indexes.get(index.name)
            if base is None and index.name in live._indexes:
                raise SerializationError(
                    f"could not serialize access: index {index.name!r} "
                    f"was concurrently created")
            if index.table in touched:
                new_indexes.append((index, True))  # installed via swap
                continue
            if live.data_version(index.table) != \
                    txn._base_data_versions.get(index.table, 0):
                # the indexed table moved under us: rebuild over the
                # live rows (outside the read lock, over the list
                # pinned here), so a unique violation surfaces as a
                # conflict rather than failing mid-apply
                rebuilds.append((len(new_indexes), index,
                                 live.get(index.table).rows))
            new_indexes.append((index, False))
        for name, index in diff.removed_indexes:
            if index.table in touched or index.table in dropped:
                gone_indexes.append((name, True))  # removed via swap/drop
                continue
            live_index = live._indexes.get(name)
            if live_index is None:
                raise SerializationError(
                    f"could not serialize access: index {name!r} was "
                    f"concurrently dropped")
            if not same_index_def(live_index, index):
                # definition, not just presence: a concurrent
                # transaction replaced the index — dropping the *name*
                # would clobber its committed definition
                # (first-committer-wins).  A mere clone (concurrent DML
                # on the table) keeps the definition and may be
                # dropped.
                raise SerializationError(
                    f"could not serialize access: index {name!r} was "
                    f"concurrently replaced")
            gone_indexes.append((name, False))
    for position, index, rows in rebuilds:
        try:
            rebuilt = build_index(
                index.kind, index.name, index.table, index.column,
                index.position, rows, index.unique)
        except CatalogError as exc:
            raise SerializationError(
                f"could not serialize access: {exc}") from exc
        new_indexes[position] = (rebuilt, False)
    return new_indexes, gone_indexes


def publish_commit(txn: Transaction, diff: CommitDiff,
                   new_indexes: list[tuple[SecondaryIndex, bool]],
                   gone_indexes: list[tuple[str, bool]],
                   live: Catalog) -> None:
    """The apply step — it cannot fail halfway: everything that *could*
    fail ran in :func:`validate_commit`.  The caller holds the engine
    write lock (plus the commit locks that validated *diff*).

    Index drops run before installs so that a replaced index name
    (``DROP INDEX i; CREATE INDEX i ON other...``) frees its entry
    first."""
    private = txn.catalog
    final_tables = private._tables
    for key in diff.dropped:
        live.drop(key)
    for name, swapped in gone_indexes:
        if swapped:
            live.bump_ddl()
        else:
            live.drop_index(name)
    for key in diff.created:
        live.install_table(key, final_tables[key],
                           private.indexes_on(key))
        declared = private.partition_of(key)
        if declared is not None:
            live.set_partition(key, declared[0], declared[1])
    for key in diff.written:
        live.swap_table(key, final_tables[key], private.indexes_on(key))
    for name, query in diff.new_views:
        live.create_view(name, query)
    for name in diff.gone_views:
        live.drop_view(name)
    for index, swapped in new_indexes:
        if swapped:
            live.bump_ddl()
        else:
            live.install_index(index)
    for table in diff.stats_tables:
        live.stats.put(table, private.stats._stats[table])
