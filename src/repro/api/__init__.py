"""The public session API: ``Connection`` / ``Cursor`` /
``PreparedStatement``.

A DB-API-2.0-flavored layer over the SQL frontend, provenance rewriter and
executor.  Compared with the legacy :class:`repro.db.Database` facade
(which re-parses, re-analyzes and re-rewrites every query on every call),
this layer plans once and re-executes compiled plans through an LRU plan
cache keyed by ``(sql, strategy, catalog version)``::

    from repro import connect

    with connect(default_strategy="auto") as conn:
        cur = conn.cursor()
        cur.execute("CREATE TABLE r (a int, b int)")
        cur.executemany("INSERT INTO r VALUES (?, ?)",
                        [(1, 1), (2, 1), (3, 2)])
        ps = conn.prepare(
            "SELECT PROVENANCE * FROM r WHERE a = ANY (SELECT c FROM s)")
        ps.execute()        # planned once …
        ps.execute()        # … cache hit: no parse/analyze/rewrite
"""

from .config import SessionConfig
from .connection import Connection, connect
from .cursor import Cursor
from .plan_cache import CachedPlan, PlanCache
from .prepared import PreparedStatement

__all__ = [
    "CachedPlan", "Connection", "Cursor", "PlanCache",
    "PreparedStatement", "SessionConfig", "connect",
]
