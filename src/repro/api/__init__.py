"""The public session API: ``Engine`` / ``Connection`` / ``Cursor`` /
``PreparedStatement`` / ``Result``.

A DB-API-2.0-flavored layer over the SQL frontend, provenance rewriter
and executor.  The :class:`Engine` is the shared, thread-safe core — one
catalog, one lock-guarded plan cache, snapshot-isolated transactions —
and every :class:`Connection` is a lightweight session on one::

    from repro import Engine, connect

    engine = Engine()
    conn = engine.connect()          # sessions share catalog + plan cache
    solo = connect()                 # or: a private engine per connection

    cur = conn.cursor()
    cur.execute("CREATE TABLE r (a int, b int)")
    cur.executemany("INSERT INTO r VALUES (?, ?)",
                    [(1, 1), (2, 1), (3, 2)])
    with conn.transaction():         # snapshot isolation
        cur.execute("DELETE FROM r WHERE b = 1")
    result = conn.execute("SELECT * FROM r")   # streaming Result
    for row in result:
        ...
"""

from .config import SessionConfig
from .connection import Connection, connect
from .cursor import Cursor
from .engine import Engine, RWLock
from .plan_cache import CachedPlan, PlanCache
from .prepared import PreparedStatement
from .result import Contribution, Result, Witness
from .transaction import Transaction

__all__ = [
    "CachedPlan", "Connection", "Contribution", "Cursor", "Engine",
    "PlanCache", "PreparedStatement", "Result", "RWLock", "SessionConfig",
    "Transaction", "Witness", "connect",
]
