"""Session-wide configuration.

One :class:`SessionConfig` object travels from the connection through the
analyzer, the :class:`~repro.provenance.rewriter.ProvenanceRewriter` and
the :class:`~repro.engine.executor.Executor`, replacing the ad-hoc keyword
arguments each layer used to grow.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import InterfaceError
from ..provenance import strategies


def _env_int(name: str, default: int) -> int:
    """An integer knob default taken from the environment; malformed
    values fall back to *default* rather than breaking session setup."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= 0 else default


@dataclass
class SessionConfig:
    """Knobs shared by every statement a session runs.

    ``default_strategy``
        Strategy substituted when SQL says plain ``SELECT PROVENANCE``
        (which parses as ``"auto"``); explicit ``SELECT PROVENANCE (name)``
        and per-call overrides win over it.  Resolved through the strategy
        registry, so registered third-party strategies are valid values.
    ``optimize``
        Run the logical optimizer pass (selection pushdown / join
        extraction) when planning.  The ablation benchmark disables it.
    ``compile_expressions``
        Compile expressions to closures instead of tree-walking them.
    ``collect_stats``
        Keep per-operator evaluation counters in
        :class:`~repro.engine.ExecutionStats` (the cheap scalar counters
        are always maintained).
    ``plan_cache_size``
        Capacity of the per-connection LRU plan cache; ``0`` disables
        caching entirely.
    ``engine``
        Which execution engine runs statements: ``"pipelined"`` (the
        row-batch pipeline over physical plans — the default),
        ``"vectorized"`` (the pipelined engine with columnar
        ``ColumnBatch`` data flow and whole-column expression kernels;
        nodes the vector compiler cannot handle fall back to row
        operators per node, so it is always correct) or
        ``"materializing"`` (the original tree-walking interpreter, kept
        as the benchmark baseline and parity reference).
    ``batch_size``
        Rows per batch in the pipelined and vectorized engines.  Larger
        batches amortize per-batch overhead; smaller ones bound memory
        between pipeline breakers.  Ignored by the materializing engine.
    ``use_indexes``
        Let the cost-based lowering plan ``IndexScan`` /
        ``IndexNestedLoopJoin`` over secondary indexes.  Disabling it
        plans every statement as if no index existed — the knob the
        benchmarks use to price index plans against their scan
        equivalents on identical data.
    ``autocommit``
        Initial autocommit mode of new sessions.  True (the default):
        every statement is its own snapshot-isolated transaction.
        False: the first statement implicitly opens a transaction that
        stays open until ``commit()`` / ``rollback()`` (DB-API style).
        Sessions can flip :attr:`Connection.autocommit` at runtime.
    ``durability``
        How eagerly a durable engine (``Engine(path=...)``) persists
        commits.  ``"commit"`` (the default): every commit appends its
        write-set to the WAL and fsyncs before returning —
        committed-means-durable, even across power loss.
        ``"checkpoint"``: commits append to the WAL without fsync (the
        OS flushes when it likes; ``CHECKPOINT`` and a clean close
        fsync), trading the fsync per commit for a bounded-loss window.
        ``"off"``: commits are not logged at all — only an explicit
        ``CHECKPOINT`` (or the shell's ``\\save``) writes anything.
        Engine-level: the WAL's policy is fixed when the database
        directory opens, so ``engine.connect()`` rejects a session
        override that disagrees with it.  Ignored by purely in-memory
        engines.
    ``group_commit_ms``
        Group-commit linger window, in milliseconds.  Commit records
        are always flushed by one background flusher thread that
        batches whatever is queued when it wakes — concurrent
        committers already share one fsync with ``0`` (the default).
        A positive value makes the flusher *wait* that long after the
        first record arrives so more committers can join the batch:
        higher commit latency, fewer fsyncs under sustained load.
        Engine-level, fixed when the store opens.
    ``commit_locking``
        Commit concurrency mode.  ``"table"`` (the default): a commit
        locks only its conflict set through the per-name lock manager,
        so disjoint-table transactions validate and publish in
        parallel.  ``"global"``: every commit takes the commit
        barrier's write side — the pre-lock-manager behavior, kept as
        the benchmark baseline and a belt-and-braces escape hatch.
        Engine-level (the locks live on the shared engine).
    ``checkpoint_wal_mb``
        WAL size budget, in MiB, that triggers a *background*
        checkpoint on a durable engine (the flusher signals a
        dedicated thread; committers never compact the log
        themselves).  ``0`` disables automatic checkpointing — only
        explicit ``CHECKPOINT`` compacts.  Engine-level.
    ``max_parallel_workers``
        Upper bound on worker processes a single query may fan out to
        through the exchange operators (:mod:`repro.engine.parallel`).
        ``0`` (the default) disables parallel execution entirely; the
        ``REPRO_PARALLEL`` environment variable sets the default for
        new sessions (the CI parity jobs export ``REPRO_PARALLEL=2``).
        Parallelism is a plan property, so the knob is part of the
        plan-cache key.
    ``parallel_threshold``
        Minimum estimated input rows before the lowering pass considers
        a Gather plan at all — below it, fork/serialize overhead always
        loses to serial execution.  The ``REPRO_PARALLEL_THRESHOLD``
        environment variable sets the default for new sessions (the CI
        parity jobs lower it so small test tables exercise the
        exchanges).
    """

    default_strategy: str = "auto"
    optimize: bool = True
    compile_expressions: bool = True
    collect_stats: bool = True
    plan_cache_size: int = 128
    engine: str = "pipelined"
    batch_size: int = 1024
    use_indexes: bool = True
    autocommit: bool = True
    durability: str = "commit"
    group_commit_ms: float = 0.0
    commit_locking: str = "table"
    checkpoint_wal_mb: int = 64
    max_parallel_workers: int = field(
        default_factory=lambda: _env_int("REPRO_PARALLEL", 0))
    parallel_threshold: int = field(
        default_factory=lambda: _env_int("REPRO_PARALLEL_THRESHOLD", 10000))

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check the configuration; raises :class:`InterfaceError`."""
        from ..engine import ENGINES
        if self.plan_cache_size < 0:
            raise InterfaceError(
                f"plan_cache_size must be >= 0, got {self.plan_cache_size}")
        if self.engine not in ENGINES:
            raise InterfaceError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{list(ENGINES)}")
        if self.batch_size < 1:
            raise InterfaceError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.durability not in ("off", "commit", "checkpoint"):
            raise InterfaceError(
                f"unknown durability {self.durability!r}; expected one "
                f"of ['off', 'commit', 'checkpoint']")
        if self.group_commit_ms < 0:
            raise InterfaceError(
                f"group_commit_ms must be >= 0, got "
                f"{self.group_commit_ms}")
        if self.commit_locking not in ("table", "global"):
            raise InterfaceError(
                f"unknown commit_locking {self.commit_locking!r}; "
                f"expected one of ['table', 'global']")
        if self.checkpoint_wal_mb < 0:
            raise InterfaceError(
                f"checkpoint_wal_mb must be >= 0, got "
                f"{self.checkpoint_wal_mb}")
        if self.max_parallel_workers < 0:
            raise InterfaceError(
                f"max_parallel_workers must be >= 0, got "
                f"{self.max_parallel_workers}")
        if self.parallel_threshold < 0:
            raise InterfaceError(
                f"parallel_threshold must be >= 0, got "
                f"{self.parallel_threshold}")
        if self.default_strategy != strategies.AUTO and \
                not strategies.is_registered(self.default_strategy):
            raise InterfaceError(
                f"unknown default_strategy {self.default_strategy!r}; "
                f"expected one of {strategies.strategy_names()}")

    def with_options(self, **changes: Any) -> "SessionConfig":
        """A copy of this config with *changes* applied (and validated)."""
        return replace(self, **changes)
