"""The engine-wide LRU plan cache.

Compiled plans are cached per :class:`~repro.api.engine.Engine` — shared
by every session on it — keyed by ``(sql text, strategy, session knobs,
catalog version, statistics version)``; see
:meth:`repro.api.Connection._plan_key`.  Because the catalog's DDL
generation counter *and* its statistics generation are part of the key,
any DDL (CREATE/DROP of tables, views or indexes) or ``ANALYZE`` makes
every previously cached plan unreachable — cost-based plans are never
served against statistics or indexes they were not costed with; stale
entries are evicted by LRU order as new plans come in.

Thread safety is two-level:

* the cache's own bookkeeping (the LRU ordering and the hit/miss
  counters) is guarded by an internal lock, so concurrent sessions can
  probe and fill it freely;
* physical plan *instances* carry per-execution operator state between
  ``open`` and ``close``, so one instance must never be driven by two
  executions at once.  Each :class:`CachedPlan` therefore manages a small
  pool: :meth:`CachedPlan.acquire_physical` leases an exclusive instance
  (re-lowering the logical plan when the pool is empty — concurrent
  executions of the same statement each get their own operator tree) and
  :meth:`CachedPlan.release_physical` returns it.  Single-session use
  leases the same instance every time, with no extra lowering.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from ..algebra.operators import Operator
from ..engine.physical import PhysicalPlan
from ..provenance.naming import BaseAccess

#: Leased-and-returned physical instances kept per cached plan; beyond
#: this, returned instances are dropped (re-lowered on future demand).
_POOL_CAP = 4


@dataclass
class CachedPlan:
    """One compiled query: the (already optimized) logical plan, its
    physical lowering, and the bits needed to execute and describe it
    without re-planning."""

    plan: Operator
    param_count: int
    strategy: str | None            # effective strategy, None = no rewrite
    catalog_version: int
    #: statistics generation the plan was costed against
    stats_version: int = 0
    #: template physical plan (pool seed); its nodes carry the
    #: batch-compiled expression closures, so a cache hit skips lowering
    #: *and* expression compilation.
    physical: PhysicalPlan | None = None
    #: provenance base accesses recorded by the rewrite (None when the
    #: statement was not a provenance query) — carried into
    #: :class:`repro.api.result.Result` for the witness accessors.
    accesses: list[BaseAccess] | None = None
    #: compiled-expression closures for the materializing engine, shared
    #: across executions of this plan (keyed by expression node identity
    #: — valid only for ``plan``).
    compiled: dict[int, Any] = field(default_factory=dict)
    #: physical instances currently leased (acquired, not yet returned).
    #: Observable through :meth:`PlanCache.leased_instances` — a non-zero
    #: steady-state value means some execution path abandoned a streaming
    #: result without closing it.
    leased: int = 0
    _pool: list[PhysicalPlan] = field(default_factory=list, repr=False)
    _pool_lock: threading.Lock = field(default_factory=threading.Lock,
                                       repr=False)

    def __post_init__(self) -> None:
        if self.physical is not None:
            self._pool.append(self.physical)

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.plan.schema.names

    # -- physical-instance leasing -------------------------------------------

    def acquire_physical(self, lower: Callable[[], PhysicalPlan]
                         ) -> PhysicalPlan:
        """Lease an exclusive physical instance, lowering a fresh one via
        *lower* when every pooled instance is in use."""
        with self._pool_lock:
            self.leased += 1
            if self._pool:
                return self._pool.pop()
        instance = lower()
        if self.physical is None:
            self.physical = instance    # adopt as the template
        return instance

    def release_physical(self, instance: PhysicalPlan) -> None:
        """Return a leased instance to the pool (dropped when full)."""
        with self._pool_lock:
            self.leased -= 1
            if len(self._pool) < _POOL_CAP:
                self._pool.append(instance)


class PlanCache:
    """A tiny lock-guarded LRU mapping from plan keys to
    :class:`CachedPlan` objects."""

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, key: Hashable) -> CachedPlan | None:
        """The cached plan for *key* without touching counters or LRU
        order — for callers that do not yet know whether the statement is
        cacheable (e.g. un-parsed text that may turn out to be DDL)."""
        with self._lock:
            return self._entries.get(key)

    def lookup(self, key: Hashable) -> CachedPlan | None:
        """The cached plan for *key*, bumping it to most-recently-used."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: Hashable, plan: CachedPlan) -> None:
        """Insert *plan*, evicting the least-recently-used entry if full.

        Two sessions racing to plan the same statement both store; the
        later entry wins and the earlier one ages out — duplicate
        planning work, never a correctness problem.
        """
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def leased_instances(self) -> int:
        """Physical instances currently leased across all cached plans.

        Zero at quiescence; a persistent positive value is a leak — a
        streaming :class:`~repro.api.result.Result` was abandoned
        without :meth:`~repro.api.result.Result.close` (e.g. a network
        client vanished mid-stream and the server failed to clean up).
        """
        with self._lock:
            return sum(entry.leased for entry in self._entries.values())

    def stats(self) -> dict[str, int]:
        """Counters for monitoring: hits, misses, current size, capacity."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "capacity": self.capacity,
        }
