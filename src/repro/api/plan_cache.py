"""The LRU plan cache.

Compiled plans are cached per connection, keyed by ``(sql text, strategy,
catalog version, statistics version)`` — see
:meth:`repro.api.Connection._plan_key`.  Because the catalog's DDL
generation counter *and* its statistics generation are part of the key,
any DDL (CREATE/DROP of tables, views or indexes) or ``ANALYZE`` makes
every previously cached plan unreachable — cost-based plans are never
served against statistics or indexes they were not costed with; stale
entries are evicted by LRU order as new plans come in.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable

from ..algebra.operators import Operator
from ..engine.physical import PhysicalPlan


@dataclass
class CachedPlan:
    """One compiled query: the (already optimized) logical plan, its
    physical lowering, and the bits needed to execute and describe it
    without re-planning."""

    plan: Operator
    param_count: int
    strategy: str | None            # effective strategy, None = no rewrite
    catalog_version: int
    #: statistics generation the plan was costed against
    stats_version: int = 0
    #: the physical plan the pipelined engine executes; its nodes also
    #: carry the batch-compiled expression closures, so a cache hit skips
    #: lowering *and* expression compilation.
    physical: PhysicalPlan | None = None
    #: compiled-expression closures for the materializing engine, shared
    #: across executions of this plan (keyed by expression node identity
    #: — valid only for ``plan``).
    compiled: dict[int, Any] = field(default_factory=dict)

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.plan.schema.names


class PlanCache:
    """A tiny LRU mapping from plan keys to :class:`CachedPlan` objects."""

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, CachedPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, key: Hashable) -> CachedPlan | None:
        """The cached plan for *key* without touching counters or LRU
        order — for callers that do not yet know whether the statement is
        cacheable (e.g. un-parsed text that may turn out to be DDL)."""
        return self._entries.get(key)

    def lookup(self, key: Hashable) -> CachedPlan | None:
        """The cached plan for *key*, bumping it to most-recently-used."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: Hashable, plan: CachedPlan) -> None:
        """Insert *plan*, evicting the least-recently-used entry if full."""
        if self.capacity <= 0:
            return
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counters for monitoring: hits, misses, current size, capacity."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "capacity": self.capacity,
        }
