"""The first-class query result: streaming, DB-API-described,
provenance-aware.

A :class:`Result` is what :meth:`repro.api.Connection.execute`,
:meth:`Cursor.execute <repro.api.Cursor>` and prepared statements return
for SELECTs.  It **is a** :class:`~repro.relation.Relation` — every
existing call site (``result.rows``, ``result.pretty()``,
``sorted(result.rows)``, bag comparisons) keeps working — but its rows
arrive lazily: the pipelined engine hands over a generator of row
batches, and the result pulls them on demand::

    result = conn.execute("SELECT * FROM big")
    for row in result:          # batches stream from the engine
        if interesting(row):
            break
    result.close()              # abandon the rest without draining

Consumed rows are buffered, so a fully iterated (or ``.rows``-touched)
result behaves exactly like a materialized relation afterwards.  The
first batch is pulled eagerly at construction: execution errors surface
at ``execute()`` time and the first rows are available immediately,
while everything past the first batch stays lazy.

Provenance accessors implement the paper's reading of a provenance
result (Definition 2): the schema is the original query's attributes
followed by ``P(R_1) … P(R_n)`` — one group of provenance columns per
base-relation access — and each output tuple is duplicated once per
combination of contributing input tuples.  :meth:`witnesses` re-groups
that flat encoding: one :class:`Witness` per *distinct* regular tuple,
carrying every combination of contributing input rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from ..errors import InterfaceError
from ..provenance.naming import BaseAccess
from ..relation import Relation
from ..schema import Schema

#: DB-API description entry: (name, type_code, display_size,
#: internal_size, precision, scale, null_ok).
Description = tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class Contribution:
    """One base access's part in a witness combination: the accessed
    table and the contributing input row (None when the access did not
    contribute — its provenance columns were all NULL)."""

    table: str
    row: tuple | None


@dataclass(frozen=True)
class Witness:
    """One distinct output tuple with its contributing input tuples.

    ``inputs`` holds one entry per duplicate copy of the output tuple in
    the provenance result — i.e. one entry per witness combination —
    each a tuple of :class:`Contribution` records in base-access order.
    """

    tuple: tuple
    inputs: tuple

    def __len__(self) -> int:
        return len(self.inputs)


class Result(Relation):
    """A (possibly still streaming) query result; see the module
    docstring."""

    # __weakref__ lets sessions track live streaming results without
    # keeping abandoned ones alive (Connection.close sweeps the set)
    __slots__ = ("_batches", "_exhausted", "_on_close", "_accesses",
                 "_strategy", "__weakref__")

    def __init__(self, schema: Schema, batches: Iterator[list] | None = None,
                 rows: list | None = None,
                 on_close: Callable[[], None] | None = None,
                 strategy: str | None = None,
                 accesses: list[BaseAccess] | None = None) -> None:
        self.schema = schema
        Relation.rows.__set__(self, rows if rows is not None else [])
        self._batches = batches
        self._exhausted = batches is None
        self._on_close = on_close
        self._accesses = accesses
        self._strategy = strategy
        if batches is not None:
            self._pull()    # errors surface here; first rows are ready

    @classmethod
    def completed(cls, relation: Relation,
                  strategy: str | None = None,
                  accesses: list[BaseAccess] | None = None) -> "Result":
        """Wrap an already-materialized relation (DDL-free helpers, the
        materializing engine)."""
        return cls(relation.schema, rows=relation.rows,
                   strategy=strategy, accesses=accesses)

    # -- streaming ------------------------------------------------------------

    def _buffer(self) -> list:
        return Relation.rows.__get__(self)

    def _pull(self) -> bool:
        """Pull one batch into the buffer; False when exhausted."""
        if self._exhausted:
            return False
        try:
            batch = next(self._batches)
        except StopIteration:
            self._finish()
            return False
        except BaseException:
            self._finish()
            raise
        if isinstance(batch, list):
            self._buffer().extend(batch)
        else:
            # the vectorized engine streams ColumnBatch objects;
            # transposition to row tuples happens here, at the sink
            self._buffer().extend(batch.to_rows())
        return True

    def _ensure(self, count: int) -> None:
        """Buffer at least *count* rows (or exhaust the stream)."""
        while len(self._buffer()) < count and self._pull():
            pass

    def _finish(self) -> None:
        self._exhausted = True
        self._batches = None
        if self._on_close is not None:
            callback, self._on_close = self._on_close, None
            callback()

    @property
    def rows(self) -> list:
        """All result rows (draining the stream on first access)."""
        while self._pull():
            pass
        return self._buffer()

    @property
    def streaming(self) -> bool:
        """True while batches may still be pending from the engine."""
        return not self._exhausted

    def close(self) -> None:
        """Stop streaming; rows not yet pulled are abandoned (the
        engine's operator tree is closed and released).  Idempotent."""
        batches, self._batches = self._batches, None
        self._exhausted = True
        if batches is not None:
            batches.close()
        if self._on_close is not None:
            callback, self._on_close = self._on_close, None
            callback()

    def __enter__(self) -> "Result":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __iter__(self) -> Iterator[tuple]:
        position = 0
        while True:
            buffered = self._buffer()
            if position < len(buffered):
                yield buffered[position]
                position += 1
            elif not self._pull():
                return

    def fetch(self, count: int, start: int = 0) -> list[tuple]:
        """Rows ``start : start+count`` of the result, pulling batches as
        needed (the cursor's fetchone/fetchmany backend)."""
        self._ensure(start + count)
        return self._buffer()[start:start + count]

    # -- DB-API flavored metadata ---------------------------------------------

    @property
    def description(self) -> Description:
        """DB-API column metadata (name and type are meaningful)."""
        return tuple(
            (attr.name, attr.type, None, None, None, None, None)
            for attr in self.schema)

    @property
    def rowcount(self) -> int:
        """Number of result rows.  Drains a still-streaming result."""
        return len(self.rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        """The rows as ``{column: value}`` dicts (drains the stream)."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows]

    # -- provenance accessors -------------------------------------------------

    @property
    def is_provenance(self) -> bool:
        """True when this result came from a ``SELECT PROVENANCE``."""
        return bool(self._accesses) or bool(self.provenance_columns)

    @property
    def strategy(self) -> str | None:
        """The rewrite strategy that produced this result (None for a
        plain query)."""
        return self._strategy

    @property
    def provenance_columns(self) -> tuple[str, ...]:
        """The provenance attribute names ``P(R_1) … P(R_n)`` appended by
        the rewrite (exact when the rewrite's base-access bookkeeping is
        attached; name-prefix heuristic otherwise)."""
        if self._accesses:
            return tuple(name for access in self._accesses
                         for name in access.prov_names)
        return tuple(name for name in self.schema.names
                     if name.startswith("prov_"))

    @property
    def regular_columns(self) -> tuple[str, ...]:
        """The original query's output attributes (non-provenance)."""
        exclude = set(self.provenance_columns)
        return tuple(name for name in self.schema.names
                     if name not in exclude)

    def _access_positions(self) -> list[tuple[str, list[int]]]:
        """Per base access: (table, positions of its provenance columns)."""
        positions = {name: i for i, name in enumerate(self.schema.names)}
        if self._accesses:
            return [(access.table,
                     [positions[name] for name in access.prov_names])
                    for access in self._accesses]
        # heuristic fallback: one pseudo-access holding every prov_ column
        prov = [positions[name] for name in self.provenance_columns]
        return [("?", prov)] if prov else []

    def witnesses(self, index: int | None = None
                  ) -> "list[Witness] | Witness":
        """Group the flat provenance encoding by output tuple.

        ``witnesses()`` returns every :class:`Witness` in first-appearance
        order of the distinct regular tuples; ``witnesses(i)`` returns the
        *i*-th one.  Raises :class:`~repro.errors.InterfaceError` when the
        result carries no provenance columns.
        """
        accesses = self._access_positions()
        if not accesses:
            raise InterfaceError(
                "result has no provenance columns; run a "
                "SELECT PROVENANCE query")
        prov_positions = {p for _, group in accesses for p in group}
        regular = [i for i in range(len(self.schema))
                   if i not in prov_positions]
        grouped: dict[tuple, list] = {}
        for row in self.rows:
            key = tuple(row[i] for i in regular)
            combo = tuple(
                Contribution(
                    table,
                    None if all(row[p] is None for p in group)
                    else tuple(row[p] for p in group))
                for table, group in accesses)
            grouped.setdefault(key, []).append(combo)
        witnesses = [Witness(key, tuple(combos))
                     for key, combos in grouped.items()]
        if index is None:
            return witnesses
        try:
            return witnesses[index]
        except IndexError:
            raise InterfaceError(
                f"witness index {index} out of range "
                f"({len(witnesses)} distinct output tuple(s))") from None

    def __repr__(self) -> str:
        state = "streaming" if self.streaming else "complete"
        return (f"Result({list(self.schema.names)}, "
                f"{len(self._buffer())} row(s) buffered, {state})")
