"""DB-API-2.0-flavored cursors.

A :class:`Cursor` is the statement-execution surface of a
:class:`~repro.api.Connection`::

    with connect() as conn:
        cur = conn.cursor()
        cur.execute("CREATE TABLE r (a int, b int)")
        cur.execute("INSERT INTO r VALUES (?, ?)", (1, 1))
        cur.execute("SELECT PROVENANCE * FROM r WHERE a = ?", (1,))
        print(cur.description)
        for row in cur:
            print(row)

SELECT plans go through the connection's plan cache, so re-executing the
same SQL text (even from a different cursor) skips planning entirely.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence, TYPE_CHECKING

from ..errors import InterfaceError
from ..relation import Relation
from ..sql.ast import SelectStmt

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionStats
    from .connection import Connection

#: DB-API description entry: (name, type_code, display_size, internal_size,
#: precision, scale, null_ok) — only the first two are meaningful here.
Description = tuple[tuple[Any, ...], ...]


class Cursor:
    """Executes statements and holds the pending result set."""

    arraysize = 1

    def __init__(self, connection: "Connection"):
        self._connection = connection
        self._closed = False
        self._relation: Relation | None = None
        self._position = 0
        self._rowcount = -1

    # -- DB-API attributes ----------------------------------------------------

    @property
    def connection(self) -> "Connection":
        return self._connection

    @property
    def description(self) -> Description | None:
        """Column metadata of the pending result set (None otherwise)."""
        if self._relation is None:
            return None
        return tuple(
            (attr.name, attr.type, None, None, None, None, None)
            for attr in self._relation.schema)

    @property
    def rowcount(self) -> int:
        """Rows in the result set / affected by DML; -1 when unknown."""
        return self._rowcount

    @property
    def last_stats(self) -> "ExecutionStats | None":
        """Execution statistics of the most recent statement."""
        return self._connection.last_stats

    # -- execution ------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self._connection._check_open()

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        """Execute one statement, binding *params* to ``?`` placeholders."""
        self._check_open()
        self._relation = None
        self._position = 0
        result = self._connection._execute_text(sql, params)
        if isinstance(result, Relation):
            self._relation = result
            self._rowcount = len(result.rows)
        elif isinstance(result, int):
            self._rowcount = result
        else:
            self._rowcount = -1
        return self

    def executemany(self, sql: str,
                    seq_of_params: Iterable[Sequence[Any]]) -> "Cursor":
        """Execute *sql* once per parameter tuple (rowcounts accumulate)."""
        self._check_open()
        total = 0
        saw_count = False
        for params in seq_of_params:
            self.execute(sql, params)
            if self._rowcount >= 0:
                saw_count = True
                total += self._rowcount
        self._rowcount = total if saw_count else -1
        return self

    # -- fetching -------------------------------------------------------------

    def _pending(self) -> Relation:
        if self._relation is None:
            raise InterfaceError(
                "no result set pending; execute a SELECT first")
        return self._relation

    @property
    def relation(self) -> Relation:
        """The pending result as a :class:`~repro.relation.Relation`
        (schema included) — this engine's native result type."""
        return self._pending()

    def fetchone(self) -> tuple | None:
        rows = self._pending().rows
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        size = self.arraysize if size is None else size
        rows = self._pending().rows
        chunk = rows[self._position:self._position + size]
        self._position += len(chunk)
        return list(chunk)

    def fetchall(self) -> list[tuple]:
        rows = self._pending().rows
        chunk = rows[self._position:]
        self._position = len(rows)
        return list(chunk)

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._relation = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
