"""DB-API-2.0-flavored cursors.

A :class:`Cursor` is the statement-execution surface of a
:class:`~repro.api.Connection`::

    with connect() as conn:
        cur = conn.cursor()
        cur.execute("CREATE TABLE r (a int, b int)")
        cur.execute("INSERT INTO r VALUES (?, ?)", (1, 1))
        cur.execute("SELECT PROVENANCE * FROM r WHERE a = ?", (1,))
        print(cur.description)
        for row in cur:
            print(row)

SELECT plans go through the engine's plan cache, so re-executing the
same SQL text (even from a different cursor or session) skips planning
entirely.  Results stream: ``fetchone``/``fetchmany`` and iteration pull
row batches from the engine on demand — the pending
:class:`~repro.api.result.Result` is exposed as :attr:`Cursor.result`
(and, materialized, as the legacy :attr:`Cursor.relation`).

``executemany`` parses (and, for SELECTs, plans) the statement **once**
and reuses it for every parameter tuple; write statements additionally
run inside one transaction, so the whole batch is a single copy-on-write
privatization and a single commit — and all-or-nothing on error.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence, TYPE_CHECKING

from ..errors import InterfaceError
from ..relation import Relation
from ..sql.ast import SelectStmt
from .result import Result

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ExecutionStats
    from .connection import Connection

#: DB-API description entry: (name, type_code, display_size, internal_size,
#: precision, scale, null_ok) — only the first two are meaningful here.
Description = tuple[tuple[Any, ...], ...]


class Cursor:
    """Executes statements and holds the pending result set."""

    arraysize = 1

    def __init__(self, connection: "Connection") -> None:
        self._connection = connection
        self._closed = False
        self._result: Result | None = None
        self._position = 0
        self._rowcount = -1

    # -- DB-API attributes ----------------------------------------------------

    @property
    def connection(self) -> "Connection":
        return self._connection

    @property
    def description(self) -> Description | None:
        """Column metadata of the pending result set (None otherwise)."""
        if self._result is None:
            return None
        return self._result.description

    @property
    def rowcount(self) -> int:
        """Rows in the result set / affected by DML; -1 when unknown.

        For a pending SELECT this drains the streaming result to count
        it — iterate the cursor instead when you only need the rows.
        """
        if self._result is not None and self._rowcount < 0:
            self._rowcount = self._result.rowcount
        return self._rowcount

    @property
    def last_stats(self) -> "ExecutionStats | None":
        """Execution statistics of the most recent statement."""
        return self._connection.last_stats

    # -- execution ------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self._connection._check_open()

    def _discard_pending(self) -> None:
        if self._result is not None and self._result.streaming:
            self._result.close()
        self._result = None
        self._position = 0
        self._rowcount = -1

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        """Execute one statement, binding *params* to ``?`` placeholders."""
        self._check_open()
        self._discard_pending()
        result = self._connection._execute_text(sql, params)
        if isinstance(result, Relation):
            self._result = result if isinstance(result, Result) \
                else Result.completed(result)
        elif isinstance(result, int):
            self._rowcount = result
        return self

    def executemany(self, sql: str,
                    seq_of_params: Iterable[Sequence[Any]]) -> "Cursor":
        """Execute *sql* once per parameter tuple (rowcounts accumulate).

        The statement is parsed once; SELECTs are planned once and every
        re-execution hits the plan cache; write statements run in a
        single transaction (all-or-nothing) over one copy-on-write pass.
        """
        self._check_open()
        self._discard_pending()
        connection = self._connection
        statement = connection._parse(sql)
        total = 0
        saw_count = False
        if isinstance(statement, SelectStmt):
            connection._implicit_begin()
            for params in seq_of_params:
                result = connection._run_select_cached(sql, statement,
                                                       params)
                saw_count = True
                total += result.rowcount
                self._result = result
            self._rowcount = total if saw_count else -1
            return self
        with connection._bulk():
            for params in seq_of_params:
                result = connection._run_statement(statement, params)
                if isinstance(result, int):
                    saw_count = True
                    total += result
        self._rowcount = total if saw_count else -1
        return self

    # -- fetching -------------------------------------------------------------

    def _pending(self) -> Result:
        if self._result is None:
            raise InterfaceError(
                "no result set pending; execute a SELECT first")
        return self._result

    @property
    def result(self) -> Result:
        """The pending :class:`~repro.api.result.Result` (streaming)."""
        return self._pending()

    @property
    def relation(self) -> Relation:
        """The pending result as a :class:`~repro.relation.Relation`
        (schema included) — this engine's native result type.  Touching
        ``.rows`` on it drains the stream."""
        return self._pending()

    def fetchone(self) -> tuple | None:
        chunk = self._pending().fetch(1, self._position)
        if not chunk:
            return None
        self._position += 1
        return chunk[0]

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        size = self.arraysize if size is None else size
        chunk = self._pending().fetch(size, self._position)
        self._position += len(chunk)
        return list(chunk)

    def fetchall(self) -> list[tuple]:
        rows = self._pending().rows
        chunk = rows[self._position:]
        self._position = len(rows)
        return list(chunk)

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        if self._result is not None and self._result.streaming:
            self._result.close()
        self._result = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
