"""The session object: a lightweight, transactional view over a shared
:class:`~repro.api.engine.Engine`.

A :class:`Connection` is the public entry point of the library::

    from repro import connect

    with connect() as conn:
        cur = conn.cursor()
        cur.execute("CREATE TABLE r (a int, b int)")
        cur.execute("INSERT INTO r VALUES (?, ?)", (1, 1))
        ps = conn.prepare("SELECT PROVENANCE * FROM r WHERE a = ?")
        print(ps.execute((1,)).pretty())

``connect()`` mints a private engine; ``Engine().connect()`` mints
sessions sharing one catalog, plan cache and lock across threads.  Three
execution surfaces share them:

* :meth:`cursor` / :meth:`execute` — DB-API-flavored, plan-cached,
  returning streaming :class:`~repro.api.result.Result` objects.
* :meth:`prepare` — parse/plan once, re-execute with new bindings.
* :meth:`sql` / :meth:`provenance` / :meth:`plan` / :meth:`explain` —
  one-shot helpers that deliberately bypass the plan cache and execute
  eagerly (they back the legacy :class:`repro.db.Database` facade and
  the benchmarks, which must measure un-cached, fully-drained runs).

Transactions are real: ``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` (or
:meth:`begin` / :meth:`commit` / :meth:`rollback` /
``with conn.transaction():``) give snapshot isolation — reads see the
state as of ``BEGIN`` plus the transaction's own writes; commits are
first-committer-wins.  In autocommit mode (the default) every statement
is its own transaction: reads run lock-free against a per-statement
snapshot, writes serialize on the engine's write lock.

Plans are cached engine-wide under ``(sql text, strategy override,
session planning knobs, catalog version, statistics version)``; the
catalog's generation counter is bumped by every DDL statement and the
statistics generation by every ``ANALYZE``, so any change the cost-based
planner's decisions depend on invalidates all cached plans for the old
state.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, \
    Sequence

from ..catalog import Catalog
from ..datatypes import SQLType
from ..errors import (
    AnalyzerError, InterfaceError, ProgrammingError, ReproError,
    SerializationError,
)
from ..engine import ExecutionStats, Executor
from ..expressions.ast import Expr
from ..expressions.evaluator import EvalContext, Frame, evaluate
from ..algebra.operators import Operator
from ..algebra.printer import explain as explain_plan
from ..provenance import ProvenanceRewriter
from ..provenance.naming import BaseAccess
from ..provenance.strategies import AUTO
from ..relation import Relation
from ..schema import Attribute, Schema
from ..sql.analyzer import Analyzer
from ..sql.ast import (
    AnalyzeStmt, BeginStmt, CheckpointStmt, CommitStmt, CreateIndexStmt,
    CreateTableStmt, CreateViewStmt, DeleteStmt, DropStmt, InsertStmt,
    RollbackStmt, SelectStmt, Statement,
)
from ..sql.parser import parse_statement, parse_statements
from .config import SessionConfig
from .cursor import Cursor
from .engine import Engine
from .plan_cache import CachedPlan, PlanCache
from .prepared import PreparedStatement, check_arity
from .result import Result
from .transaction import Transaction

#: Upper bound on autocommit statement retries after serialization
#: conflicts.  Each retry means a concurrent commit made progress, so
#: this is a livelock tripwire, not a latency budget.
_AUTOCOMMIT_RETRIES = 1000

if TYPE_CHECKING:
    from ..engine.physical import PhysicalPlan


class Connection:
    """An in-process session over a shared engine, with a per-session
    config, transaction state, and access to the engine-wide plan cache."""

    def __init__(self, config: SessionConfig | None = None,
                 catalog: Catalog | None = None,
                 engine: Engine | None = None,
                 path: str | None = None) -> None:
        if engine is not None:
            if catalog is not None and catalog is not engine.catalog:
                raise InterfaceError(
                    "pass either an engine or a catalog, not both")
            if path is not None:
                raise InterfaceError(
                    "pass either an engine or a path, not both — open "
                    "the durable engine first and connect() to it")
            self._engine = engine
            self._private_engine = False
            self.config = config or engine.config
            if engine.storage is not None and \
                    self.config.durability != engine.storage.durability:
                # the WAL's fsync policy was fixed when the directory
                # opened; a session believing in a different guarantee
                # is a bug waiting for a power cut
                raise InterfaceError(
                    f"durability is fixed at engine open "
                    f"({engine.storage.durability!r}); pass it to "
                    f"Engine(path=..., config=...) instead of a "
                    f"session")
        else:
            self.config = config or SessionConfig()
            self._engine = Engine(self.config, catalog, path=path)
            self._private_engine = True
        self.last_stats: ExecutionStats | None = None
        #: autocommit (the default): every statement is its own
        #: transaction.  Set False to have the first statement implicitly
        #: BEGIN; the transaction then stays open until commit/rollback.
        self.autocommit = self.config.autocommit
        self._txn: Transaction | None = None
        self._txn_cache: PlanCache | None = None
        self._closed = False
        # guards transitions of the transaction state (_txn) so that
        # close() from another thread — e.g. a server tearing down a
        # dead client while its statement thread is still running —
        # serializes against begin/commit/rollback instead of racing
        # them into a double rollback
        self._state_lock = threading.Lock()
        # live streaming Results minted by this session; close() sweeps
        # them so abandoned streams release their leased plan instances
        # (weak: a GC'd Result's generator finalizer already releases)
        self._live_results: "weakref.WeakSet" = weakref.WeakSet()
        self._engine.register(self)

    # -- shared state ---------------------------------------------------------

    @property
    def engine(self) -> Engine:
        """The engine core this session runs on (private unless the
        connection came from :meth:`Engine.connect`)."""
        return self._engine

    @property
    def catalog(self) -> Catalog:
        """The engine's live, shared catalog."""
        return self._engine.catalog

    @property
    def plan_cache(self) -> PlanCache:
        """The engine-wide plan cache (shared by every session)."""
        return self._engine.plan_cache

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the session: roll back any open transaction (releasing
        its snapshot) and deregister from the engine.  Idempotent and
        thread-safe — concurrent close() calls (or a close racing a
        commit/rollback on another thread) run the teardown exactly
        once.  A private engine closes with its only session; a shared
        engine (and its plan cache) lives on.

        A statement already executing on another thread keeps running
        against its pinned snapshot; only the *next* call on this
        session observes the closed state.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            txn, self._txn = self._txn, None
            self._txn_cache = None
            if txn is not None:
                txn.rollback()
        for result in list(self._live_results):
            result.close()
        self._engine.release(self)
        if self._private_engine:
            self._engine.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    # -- transactions ----------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """True while an explicit (or autocommit=False implicit)
        transaction is open."""
        return self._txn is not None

    def begin(self) -> None:
        """Open a snapshot-isolated transaction (SQL: ``BEGIN``).

        Until commit/rollback, every read sees the catalog as of this
        moment plus the transaction's own writes; writes stay private.
        """
        with self._state_lock:
            self._check_open()
            if self._txn is not None:
                raise ProgrammingError(
                    "a transaction is already in progress")
            self._txn = self._engine.begin()
            self._txn_cache = None

    def commit(self) -> None:
        """Publish the open transaction's changes atomically (SQL:
        ``COMMIT``).  First-committer-wins: raises
        :class:`~repro.errors.TransactionError` if a concurrently
        committed transaction changed a table this one wrote (state is
        rolled back).  Without an open transaction this is a no-op
        (DB-API compatibility for autocommit sessions)."""
        with self._state_lock:
            self._check_open()
            txn, self._txn = self._txn, None
            self._txn_cache = None
            if txn is not None:
                txn.commit()

    def rollback(self) -> None:
        """Discard the open transaction: tables, indexes and statistics
        all revert to their pre-``BEGIN`` state (they were never touched
        — writes went to private copies).  Without an open transaction
        this is a no-op."""
        with self._state_lock:
            self._check_open()
            txn, self._txn = self._txn, None
            self._txn_cache = None
            if txn is not None:
                txn.rollback()

    @contextmanager
    def transaction(self) -> Iterator["Connection"]:
        """``with conn.transaction(): ...`` — begin, then commit on
        success or roll back on exception."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        else:
            self.commit()

    # -- statement surfaces ---------------------------------------------------

    def cursor(self) -> Cursor:
        """A new cursor sharing this session's transaction state and the
        engine's plan cache."""
        self._check_open()
        return Cursor(self)

    def prepare(self, sql: str,
                strategy: str | None = None) -> PreparedStatement:
        """Parse (and, for SELECTs, plan) *sql* once for repeated execution.

        *strategy* overrides the strategy named in the SQL text; it is only
        meaningful for provenance queries.
        """
        self._check_open()
        return PreparedStatement(self, sql, strategy)

    def execute(self, sql: str,
                params: Sequence[Any] = ()) -> Result | int | None:
        """Execute one statement through the plan cache.

        SELECTs return a streaming :class:`~repro.api.result.Result`,
        INSERT/DELETE the affected row count, DDL and transaction
        control None.
        """
        self._check_open()
        return self._execute_text(sql, params)

    def execute_script(self, text: str) -> None:
        """Execute a ``;``-separated script, discarding SELECT outputs."""
        self._check_open()
        for statement in parse_statements(text):
            if isinstance(statement, SelectStmt):
                self._run_select_uncached(statement)
            else:
                self._run_statement(statement, ())

    # -- one-shot helpers (uncached; the legacy Database substrate) -----------

    def sql(self, text: str, strategy: str | None = None,
            params: Sequence[Any] = ()) -> Result:
        """Run a SELECT (optionally ``SELECT PROVENANCE``) without
        caching, fully drained (the benchmarks time this path).

        *strategy* overrides the strategy named in the SQL text.
        """
        self._check_open()
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("sql() expects a SELECT statement")
        return self._run_select_uncached(statement, strategy, params)

    def provenance(self, text: str, strategy: str = AUTO,
                   params: Sequence[Any] = ()) -> Result:
        """Compute the provenance of a plain SELECT query."""
        self._check_open()
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("provenance() expects a SELECT statement")
        strategy = strategy or AUTO
        if strategy == AUTO and self.config.default_strategy != AUTO:
            strategy = self.config.default_strategy
        catalog = self._read_catalog()
        plan, accesses = self._build_plan_full(statement, strategy, catalog)
        return self._execute_uncached(plan, statement.param_count, params,
                                      catalog, strategy, accesses)

    def plan(self, text: str, strategy: str | None = None) -> Operator:
        """The algebra plan a query would execute (after any rewrite)."""
        self._check_open()
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("plan() expects a SELECT statement")
        return self._build_plan(
            statement, self._effective_strategy(statement, strategy))

    def explain(self, text: str, strategy: str | None = None) -> str:
        """EXPLAIN-style rendering of the logical (rewritten) plan."""
        return explain_plan(self.plan(text, strategy))

    def explain_physical(self, text: str,
                         strategy: str | None = None) -> str:
        """EXPLAIN-style rendering of the *physical* plan: the lowered
        operator tree the pipelined engine executes, with join algorithms
        and InitPlan/SubPlan sublink classification visible."""
        from ..engine.physical import explain_physical as render
        catalog = self._read_catalog()
        plan = self._optimize_plan(self.plan(text, strategy), catalog)
        lowered = self._lower(plan, catalog)
        if self.config.engine == "vectorized":
            # show the plan as the vectorized engine would run it, with
            # per-node [columnar]/[rows] batch-format tags
            from ..engine.vectorized import vectorize_plan
            vectorize_plan(lowered)
        return render(lowered)

    def estimate_rows(self, text: str, strategy: str | None = None) -> float:
        """The cost model's cardinality estimate for a SELECT — the row
        count ``EXPLAIN`` would show on the plan root, without executing
        anything."""
        from ..engine.cost import CardinalityEstimator
        catalog = self._read_catalog()
        plan = self._optimize_plan(self.plan(text, strategy), catalog)
        return CardinalityEstimator(catalog).estimate(plan)

    def explain_analyze(self, text: str, params: Sequence[Any] = (),
                        strategy: str | None = None) -> str:
        """Execute the query and render its physical plan annotated with
        per-node actual rows / batches / loops / inclusive time.

        Runs through the plan cache (so the analyzed plan is the one a
        normal execution would use) on the session's engine (the
        pipelined engine when the session is materializing) with stats
        collection forced on.  Under ``engine="vectorized"`` every node
        is tagged with its batch format and a summary line counts
        vector-kernel vs row-fallback nodes.
        """
        self._check_open()
        from ..engine.physical import explain_physical as render
        engine = "vectorized" if self.config.engine == "vectorized" \
            else "pipelined"
        catalog = self._read_catalog()
        cached = self._get_plan(text, strategy, catalog=catalog)
        instance = cached.acquire_physical(
            lambda: self._lower(cached.plan, catalog))
        try:
            executor = Executor(
                catalog, optimize=False,
                config=self.config.with_options(
                    engine=engine, collect_stats=True))
            relation = executor.execute_physical(
                instance, check_arity(cached.param_count, params))
            stats = self._finish_stats(executor)
            root = stats.node_stats.get(id(instance.root))
            lines = [render(instance, stats=stats)]
            lines.append(f"Result: {len(relation.rows)} row(s), "
                         f"{root.batches if root else 0} batch(es), "
                         f"batch size {self.config.batch_size}")
            if engine == "vectorized":
                lines.append(
                    f"Vectorized: {stats.vectorized_nodes} columnar "
                    f"node(s), {stats.row_fallback_nodes} row-fallback "
                    f"node(s)")
            return "\n".join(lines)
        finally:
            cached.release_physical(instance)

    def create_view(self, name: str, text: str) -> None:
        """Register a view over a SELECT statement."""
        self._check_open()
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("a view must be defined by a SELECT")
        if statement.param_count:
            raise AnalyzerError(
                "a view definition cannot contain ? parameters")
        self._write(lambda txn: txn.run_ddl("create_view", name, statement))

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str]],
                     partition_by: str | None = None,
                     partitions: int = 0) -> None:
        """Create a table from ``(column, type-name)`` pairs.

        ``partition_by``/``partitions`` declare hash partitioning — the
        API spelling of ``PARTITION BY HASH(col) PARTITIONS n``."""
        self._check_open()
        schema = Schema(
            Attribute(column, SQLType.parse(type_name))
            for column, type_name in columns)
        spec = (partition_by, partitions) if partition_by else None
        self._write(
            lambda txn: txn.create_table(name, schema, partition=spec))

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert rows; returns the number of rows inserted.

        One transaction per call: secondary indexes are maintained in
        step, and a unique violation rolls the whole statement back.
        """
        self._check_open()
        # materialized up front: the autocommit path may retry the
        # statement after a serialization conflict, and a generator
        # argument would arrive exhausted on the second attempt
        rows = list(rows)
        return self._write(lambda txn: txn.insert_rows(table, rows))

    # -- planning internals ---------------------------------------------------

    def _parse(self, sql: str) -> Statement:
        return parse_statement(sql)

    def _read_catalog(self) -> Catalog:
        """The catalog this session's reads should see: the open
        transaction's private snapshot, or a fresh per-statement snapshot
        (autocommit) — never the live shared dicts, so a concurrent
        commit can never tear a statement mid-plan or mid-scan."""
        if self._txn is not None:
            return self._txn.catalog
        return self._engine.snapshot()

    def _implicit_begin(self) -> None:
        """Open the implicit DB-API transaction when ``autocommit`` is
        off — shared by every statement surface (cursors, prepared
        statements), so repeatable reads hold regardless of which
        surface ran the statement."""
        if self._txn is None and not self.autocommit:
            self.begin()

    def _active_cache(self) -> PlanCache:
        """The plan cache for the current state: engine-wide normally;
        a small transaction-local cache once the transaction performed
        private DDL/ANALYZE (its catalog versions no longer describe any
        state the shared cache's keys could safely match)."""
        if self._txn is not None and self._txn.diverged:
            if self._txn_cache is None:
                self._txn_cache = PlanCache(16)
            return self._txn_cache
        return self.plan_cache

    def _effective_strategy(self, statement: SelectStmt,
                            override: str | None) -> str | None:
        """The strategy a SELECT will be rewritten with (None = no rewrite).

        Priority: explicit per-call override, then the strategy named in
        the SQL text; a plain ``SELECT PROVENANCE`` (= ``"auto"``) defers
        to the session's ``default_strategy``.
        """
        strategy = override if override is not None \
            else statement.provenance
        if strategy == AUTO and self.config.default_strategy != AUTO:
            strategy = self.config.default_strategy
        return strategy

    def _optimize_plan(self, plan: Operator,
                       catalog: Catalog | None = None) -> Operator:
        """The session's logical-optimizer step (no-op when disabled)."""
        if self.config.optimize:
            from ..engine.optimizer import optimize as optimize_tree
            plan = optimize_tree(
                plan, catalog if catalog is not None else self.catalog)
        return plan

    def _lower(self, plan: Operator,
               catalog: Catalog) -> "PhysicalPlan":
        """Physical lowering with the given catalog and the session's
        index knob — the one spelling shared by every planning surface,
        so EXPLAIN output always describes the plan execution would run."""
        from ..engine.lowering import lower_plan
        physical = lower_plan(plan, catalog,
                              use_indexes=self.config.use_indexes)
        workers = self.config.max_parallel_workers
        if workers >= 2 or catalog.partitions():
            from ..engine.parallel import parallelize_plan
            engine_name = self.config.engine \
                if self.config.engine == "vectorized" else "pipelined"
            physical = parallelize_plan(
                physical, catalog, workers,
                self.config.parallel_threshold, engine_name)
        return physical

    def _build_plan_full(self, statement: SelectStmt, strategy: str | None,
                         catalog: Catalog
                         ) -> tuple[Operator, list[BaseAccess] | None]:
        """analyze → (rewrite): the un-optimized plan plus the rewrite's
        base-access bookkeeping; the statement is left untouched."""
        plan = Analyzer(catalog).analyze(statement)
        accesses: list[BaseAccess] | None = None
        if strategy:
            rewriter = ProvenanceRewriter(catalog, strategy, self.config)
            result = rewriter.rewrite_query(plan)
            plan, accesses = result.plan, result.accesses
        return plan, accesses

    def _build_plan(self, statement: SelectStmt,
                    strategy: str | None,
                    catalog: Catalog | None = None) -> Operator:
        """Back-compat spelling of :meth:`_build_plan_full` (plan only)."""
        if catalog is None:
            catalog = self._read_catalog()
        return self._build_plan_full(statement, strategy, catalog)[0]

    def _plan_key(self, sql: str, override: str | None,
                  catalog: Catalog | None = None) -> tuple:
        if catalog is None:
            catalog = self._read_catalog()
        # The statistics generation is part of the key: ANALYZE changes
        # the cost model's answers (and CREATE/DROP INDEX bumps the DDL
        # counter), so no stale cost-based plan is ever served.  The
        # session planning knobs are too — the cache is engine-wide now,
        # and sessions with different engines/optimizer settings must not
        # trade plans.
        return (sql, override, self.config.default_strategy,
                self.config.engine, self.config.optimize,
                self.config.compile_expressions, self.config.use_indexes,
                self.config.max_parallel_workers,
                self.config.parallel_threshold,
                catalog.version, catalog.stats_version)

    def _get_plan(self, sql: str, override: str | None = None,
                  statement: SelectStmt | None = None,
                  catalog: Catalog | None = None) -> CachedPlan:
        """The cached plan for *sql*, compiling (and storing) on a miss.

        *statement* skips re-parsing when the caller already holds the
        parsed form (prepared statements).  The catalog version in the key
        means DDL-invalidated entries simply never match again.
        """
        if catalog is None:
            catalog = self._read_catalog()
        key = self._plan_key(sql, override, catalog)
        cache = self._active_cache()
        cached = cache.lookup(key)
        if cached is not None:
            return cached
        if statement is None:
            parsed = self._parse(sql)
            if not isinstance(parsed, SelectStmt):
                raise AnalyzerError("expected a SELECT statement")
            statement = parsed
        strategy = self._effective_strategy(statement, override)
        plan, accesses = self._build_plan_full(statement, strategy, catalog)
        plan = self._optimize_plan(plan, catalog)
        physical = None
        if self.config.engine != "materializing":
            # The baseline engine never executes the physical tree, so
            # only the pipelined configuration pays for lowering.
            physical = self._lower(plan, catalog)
        cached = CachedPlan(plan, statement.param_count, strategy,
                            catalog.version,
                            physical=physical,
                            accesses=accesses,
                            stats_version=catalog.stats_version)
        cache.store(key, cached)
        return cached

    # -- execution internals --------------------------------------------------

    def _finish_stats(self, executor: Executor) -> ExecutionStats:
        stats = executor.stats
        stats.plan_cache_hits = self.plan_cache.hits
        stats.plan_cache_misses = self.plan_cache.misses
        self.last_stats = stats
        return stats

    def _execute_plan(self, cached: CachedPlan, params: tuple,
                      catalog: Catalog) -> Result:
        """Run an already-planned cached statement (no per-call optimizer
        or lowering — a leased physical instance streams directly)."""
        executor = Executor(catalog, optimize=False,
                            config=self.config,
                            compiled_cache=cached.compiled)
        if self.config.engine == "materializing":
            relation = executor.execute(cached.plan, params)
            self._finish_stats(executor)
            return Result.completed(relation, strategy=cached.strategy,
                                    accesses=cached.accesses)
        instance = cached.acquire_physical(
            lambda: self._lower(cached.plan, catalog))

        def batches():
            try:
                yield from executor.stream_physical(instance, params)
            finally:
                cached.release_physical(instance)

        self._finish_stats(executor)    # counters update live as batches
        result = Result(instance.schema, batches(),  # are consumed
                        strategy=cached.strategy, accesses=cached.accesses)
        self._live_results.add(result)
        return result

    def _execute_uncached(self, plan: Operator, param_count: int,
                          params: Sequence[Any], catalog: Catalog,
                          strategy: str | None = None,
                          accesses: list[BaseAccess] | None = None
                          ) -> Result:
        values = check_arity(param_count, params)
        executor = Executor(catalog, config=self.config)
        relation = executor.execute(plan, values)
        self._finish_stats(executor)
        return Result.completed(relation, strategy=strategy,
                                accesses=accesses)

    def _run_select_uncached(self, statement: SelectStmt,
                             strategy: str | None = None,
                             params: Sequence[Any] = ()) -> Result:
        catalog = self._read_catalog()
        effective = self._effective_strategy(statement, strategy)
        plan, accesses = self._build_plan_full(statement, effective, catalog)
        return self._execute_uncached(plan, statement.param_count, params,
                                      catalog, effective, accesses)

    def _execute_text(self, sql: str,
                      params: Sequence[Any]) -> Result | int | None:
        """The cursor path: plan-cache lookup before parsing.

        The pre-parse probe is a counter-free :meth:`PlanCache.peek` so
        that DDL/DML statements (which can never be cached) do not inflate
        the miss counter; hit/miss accounting happens in
        :meth:`_get_plan`, once per cacheable statement.
        """
        if self._txn is None and not self.autocommit:
            # can't implicitly BEGIN before knowing whether the text is
            # itself transaction control — parse first on this path
            statement = self._parse(sql)
            if not isinstance(statement,
                              (BeginStmt, CommitStmt, RollbackStmt)):
                self.begin()                 # implicit DB-API transaction
            if isinstance(statement, SelectStmt):
                return self._run_select_cached(sql, statement, params)
            return self._run_statement(statement, params)
        catalog = self._read_catalog()
        cache = self._active_cache()
        if cache.peek(self._plan_key(sql, None, catalog)) is not None:
            return self._run_select_cached(sql, None, params, catalog)
        statement = self._parse(sql)
        if isinstance(statement, SelectStmt):
            return self._run_select_cached(sql, statement, params, catalog)
        return self._run_statement(statement, params)

    def _run_select_cached(self, sql: str, statement: SelectStmt | None,
                           params: Sequence[Any],
                           catalog: Catalog | None = None) -> Result:
        """Plan-cache lookup (hit counting included) + execution — the
        one spelling behind every cached-SELECT dispatch branch."""
        if catalog is None:
            catalog = self._read_catalog()
        cached = self._get_plan(sql, statement=statement, catalog=catalog)
        return self._execute_plan(
            cached, check_arity(cached.param_count, params), catalog)

    def _write(self, apply: Callable[[Transaction], Any]) -> Any:
        """Run one write operation transactionally: inside the open
        transaction when there is one (implicitly beginning one when
        ``autocommit`` is off), otherwise as a one-statement
        transaction.

        Autocommit statements no longer serialize on a global writer
        lock — the commit locks only its conflict set — so a statement
        can lose a first-committer-wins race against a concurrent
        commit on the same table.  Statement-level semantics absorb
        that: the statement re-applies on a fresh snapshot and tries
        again.  The retry bound is progress-bounded, not time-bounded —
        each retry means some *other* commit succeeded — and generous
        enough that hitting it indicates a livelock bug, which should
        surface rather than spin forever.
        """
        if self._txn is not None:
            return apply(self._txn)
        if not self.autocommit:
            self.begin()
            return apply(self._txn)
        last: "SerializationError | None" = None
        for _ in range(_AUTOCOMMIT_RETRIES):
            txn = self._engine.begin()
            try:
                result = apply(txn)
                txn.commit()
                return result
            except SerializationError as exc:
                last = exc
                if not txn.finished:
                    txn.rollback()
            except BaseException:
                txn.rollback()
                raise
        raise last if last is not None else InterfaceError(
            "autocommit retry loop exited without an error")

    @contextmanager
    def _bulk(self) -> Iterator[None]:
        """Group many write statements into one transaction (the
        ``executemany`` fast path: one copy-on-write privatization and
        one commit for the whole batch)."""
        if self._txn is not None or not self.autocommit:
            yield
            return
        with self._engine.exclusive():
            self._txn = self._engine.begin()
            try:
                yield
            except BaseException:
                txn, self._txn = self._txn, None
                if txn is not None:
                    txn.rollback()
                raise
            else:
                txn, self._txn = self._txn, None
                self._txn_cache = None
                if txn is not None:
                    txn.commit()

    def _run_statement(self, statement: Statement,
                       params: Sequence[Any] = ()) -> Result | int | None:
        """Execute a parsed statement (the non-plan-cached dispatch)."""
        values = check_arity(getattr(statement, "param_count", 0), params)
        if isinstance(statement, SelectStmt):
            return self._run_select_uncached(statement, params=values)
        if isinstance(statement, BeginStmt):
            self.begin()
            return None
        if isinstance(statement, CommitStmt):
            self.commit()
            return None
        if isinstance(statement, RollbackStmt):
            self.rollback()
            return None
        if isinstance(statement, CheckpointStmt):
            self._engine.checkpoint()
            return None
        return self._write(
            lambda txn: self._apply_statement(txn, statement, values))

    def _apply_statement(self, txn: Transaction, statement: Statement,
                         values: tuple) -> int | None:
        """Apply one write statement to a transaction's private state."""
        if isinstance(statement, CreateTableStmt):
            schema = Schema(
                Attribute(column, SQLType.parse(type_name))
                for column, type_name in statement.columns)
            spec = (statement.partition_by, statement.partitions) \
                if statement.partition_by else None
            txn.create_table(statement.name, schema, partition=spec)
            return None
        if isinstance(statement, CreateViewStmt):
            txn.run_ddl("create_view", statement.name, statement.query)
            return None
        if isinstance(statement, InsertStmt):
            rows = [[_constant(expr, values) for expr in row]
                    for row in statement.rows]
            return txn.insert_rows(statement.table, rows)
        if isinstance(statement, CreateIndexStmt):
            txn.run_ddl("create_index", statement.name, statement.table,
                        statement.column, kind=statement.kind,
                        unique=statement.unique)
            return None
        if isinstance(statement, AnalyzeStmt):
            txn.run_ddl("analyze", statement.table)
            return None
        if isinstance(statement, DropStmt):
            if statement.kind == "view":
                if not txn.catalog.has_view(statement.name):
                    raise AnalyzerError(
                        f"view {statement.name!r} does not exist")
                txn.run_ddl("drop_view", statement.name)
            elif statement.kind == "index":
                txn.run_ddl("drop_index", statement.name)
            else:
                txn.drop_table(statement.name)
            return None
        if isinstance(statement, DeleteStmt):
            return self._delete(txn, statement, values)
        raise ReproError(f"unsupported statement {statement!r}")

    def _delete(self, txn: Transaction, statement: DeleteStmt,
                params: tuple) -> int:
        stored = txn.table_for_write(statement.table)
        if statement.where is None:
            removed_rows = stored.rows
            stored.rows = []    # rebind: open streams keep the old list
            txn.delete_rows(statement.table, removed_rows)
            return len(removed_rows)
        condition = Analyzer(txn.catalog).analyze_expression(
            statement.where, stored.schema, qualifier=statement.table)
        executor = Executor(txn.catalog, config=self.config)
        index = Frame.index_for(stored.schema.names)
        kept = []
        removed_rows = []
        for row in stored.rows:
            ctx = EvalContext((Frame(index, row),), executor, params)
            if evaluate(condition, ctx) is not True:
                kept.append(row)
            else:
                removed_rows.append(row)
        stored.rows = kept      # rebind: open streams keep the old list
        txn.delete_rows(statement.table, removed_rows)
        return len(removed_rows)


def connect(config: SessionConfig | None = None,
            catalog: Catalog | None = None, path: str | None = None,
            **options: Any) -> Connection:
    """Open a session on a new private engine.

    Keyword *options* are :class:`SessionConfig` fields, as a shorthand::

        conn = connect(default_strategy="left", plan_cache_size=64)

    *path* opens (or creates, or crash-recovers) a **durable** database
    directory — snapshot plus write-ahead log::

        conn = connect(path="/data/mydb")     # open-or-recover
        conn.execute("CHECKPOINT")            # compact WAL -> snapshot

    To share one engine between sessions (threads), create an
    :class:`~repro.api.engine.Engine` and call its ``connect()`` instead.
    """
    if options:
        if config is not None:
            config = config.with_options(**options)
        else:
            config = SessionConfig(**options)
    return Connection(config, catalog, path=path)


def _constant(expr: Expr, params: tuple = ()) -> Any:
    """Evaluate a constant expression (INSERT VALUES; ? params allowed)."""
    return evaluate(expr, EvalContext((), None, params))
