"""The session object: catalog + config + plan cache.

A :class:`Connection` is the new public entry point of the library::

    from repro import connect

    with connect() as conn:
        cur = conn.cursor()
        cur.execute("CREATE TABLE r (a int, b int)")
        cur.execute("INSERT INTO r VALUES (?, ?)", (1, 1))
        ps = conn.prepare("SELECT PROVENANCE * FROM r WHERE a = ?")
        print(ps.execute((1,)).pretty())

Three execution surfaces share one catalog and one plan cache:

* :meth:`cursor` / :meth:`execute` — DB-API-flavored, plan-cached.
* :meth:`prepare` — parse/plan once, re-execute with new bindings.
* :meth:`sql` / :meth:`provenance` / :meth:`plan` / :meth:`explain` —
  one-shot helpers that deliberately bypass the plan cache (they back the
  legacy :class:`repro.db.Database` facade and the benchmarks, which must
  measure un-cached planning).

Plans are cached under ``(sql text, strategy override, default strategy,
catalog version, statistics version)``; the catalog's generation counter
is bumped by every DDL statement (CREATE/DROP of tables, views and
indexes) and the statistics generation by every ``ANALYZE``, so any
change the cost-based planner's decisions depend on invalidates all
cached plans for the old state.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..catalog import Catalog
from ..datatypes import SQLType
from ..errors import AnalyzerError, InterfaceError, ReproError
from ..engine import ExecutionStats, Executor
from ..expressions.ast import Expr
from ..expressions.evaluator import EvalContext, Frame, evaluate
from ..algebra.operators import Operator
from ..algebra.printer import explain as explain_plan
from ..provenance import ProvenanceRewriter
from ..provenance.strategies import AUTO
from ..relation import Relation
from ..schema import Attribute, Schema
from ..sql.analyzer import Analyzer
from ..sql.ast import (
    AnalyzeStmt, CreateIndexStmt, CreateTableStmt, CreateViewStmt,
    DeleteStmt, DropStmt, InsertStmt, SelectStmt, Statement,
)
from ..sql.parser import parse_statement, parse_statements
from .config import SessionConfig
from .cursor import Cursor
from .plan_cache import CachedPlan, PlanCache
from .prepared import PreparedStatement, check_arity


class Connection:
    """An in-process session over a catalog, with a per-session config
    and an LRU cache of compiled plans."""

    def __init__(self, config: SessionConfig | None = None,
                 catalog: Catalog | None = None):
        self.config = config or SessionConfig()
        self.catalog = catalog if catalog is not None else Catalog()
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self.last_stats: ExecutionStats | None = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the session and drop its cached plans."""
        self._closed = True
        self.plan_cache.clear()

    def commit(self) -> None:
        """No-op (the engine is non-transactional); DB-API compatibility."""
        self._check_open()

    def rollback(self) -> None:
        """No-op (the engine is non-transactional); DB-API compatibility."""
        self._check_open()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    # -- statement surfaces ---------------------------------------------------

    def cursor(self) -> Cursor:
        """A new cursor sharing this session's catalog and plan cache."""
        self._check_open()
        return Cursor(self)

    def prepare(self, sql: str,
                strategy: str | None = None) -> PreparedStatement:
        """Parse (and, for SELECTs, plan) *sql* once for repeated execution.

        *strategy* overrides the strategy named in the SQL text; it is only
        meaningful for provenance queries.
        """
        self._check_open()
        return PreparedStatement(self, sql, strategy)

    def execute(self, sql: str,
                params: Sequence[Any] = ()) -> Relation | int | None:
        """Execute one statement through the plan cache.

        SELECTs return a :class:`~repro.relation.Relation`, INSERT/DELETE
        the affected row count, DDL None.
        """
        self._check_open()
        return self._execute_text(sql, params)

    def execute_script(self, text: str) -> None:
        """Execute a ``;``-separated script, discarding SELECT outputs."""
        self._check_open()
        for statement in parse_statements(text):
            if isinstance(statement, SelectStmt):
                self._run_select_uncached(statement)
            else:
                self._run_statement(statement, ())

    # -- one-shot helpers (uncached; the legacy Database substrate) -----------

    def sql(self, text: str, strategy: str | None = None,
            params: Sequence[Any] = ()) -> Relation:
        """Run a SELECT (optionally ``SELECT PROVENANCE``) without caching.

        *strategy* overrides the strategy named in the SQL text.
        """
        self._check_open()
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("sql() expects a SELECT statement")
        return self._run_select_uncached(statement, strategy, params)

    def provenance(self, text: str, strategy: str = AUTO,
                   params: Sequence[Any] = ()) -> Relation:
        """Compute the provenance of a plain SELECT query."""
        self._check_open()
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("provenance() expects a SELECT statement")
        strategy = strategy or AUTO
        if strategy == AUTO and self.config.default_strategy != AUTO:
            strategy = self.config.default_strategy
        plan = self._build_plan(statement, strategy)
        return self._execute_uncached(plan, statement.param_count, params)

    def plan(self, text: str, strategy: str | None = None) -> Operator:
        """The algebra plan a query would execute (after any rewrite)."""
        self._check_open()
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("plan() expects a SELECT statement")
        return self._build_plan(
            statement, self._effective_strategy(statement, strategy))

    def explain(self, text: str, strategy: str | None = None) -> str:
        """EXPLAIN-style rendering of the logical (rewritten) plan."""
        return explain_plan(self.plan(text, strategy))

    def explain_physical(self, text: str,
                         strategy: str | None = None) -> str:
        """EXPLAIN-style rendering of the *physical* plan: the lowered
        operator tree the pipelined engine executes, with join algorithms
        and InitPlan/SubPlan sublink classification visible."""
        from ..engine.physical import explain_physical as render
        return render(self._lower(self._optimize_plan(
            self.plan(text, strategy))))

    def estimate_rows(self, text: str, strategy: str | None = None) -> float:
        """The cost model's cardinality estimate for a SELECT — the row
        count ``EXPLAIN`` would show on the plan root, without executing
        anything."""
        from ..engine.cost import CardinalityEstimator
        plan = self._optimize_plan(self.plan(text, strategy))
        return CardinalityEstimator(self.catalog).estimate(plan)

    def explain_analyze(self, text: str, params: Sequence[Any] = (),
                        strategy: str | None = None) -> str:
        """Execute the query and render its physical plan annotated with
        per-node actual rows / batches / loops / inclusive time.

        Runs through the plan cache (so the analyzed plan is the one a
        normal execution would use) on the pipelined engine with stats
        collection forced on.
        """
        self._check_open()
        from ..engine.physical import explain_physical as render
        cached = self._get_plan(text, strategy)
        if cached.physical is None:  # materializing session / legacy entry
            cached.physical = self._lower(cached.plan)
        executor = Executor(
            self.catalog, optimize=False,
            config=self.config.with_options(
                engine="pipelined", collect_stats=True))
        relation = executor.execute_physical(
            cached.physical, check_arity(cached.param_count, params))
        stats = self._finish_stats(executor)
        root = stats.node_stats.get(id(cached.physical.root))
        lines = [render(cached.physical, stats=stats)]
        lines.append(f"Result: {len(relation.rows)} row(s), "
                     f"{root.batches if root else 0} batch(es), "
                     f"batch size {self.config.batch_size}")
        return "\n".join(lines)

    def create_view(self, name: str, text: str) -> None:
        """Register a view over a SELECT statement."""
        self._check_open()
        statement = parse_statement(text)
        if not isinstance(statement, SelectStmt):
            raise AnalyzerError("a view must be defined by a SELECT")
        if statement.param_count:
            raise AnalyzerError(
                "a view definition cannot contain ? parameters")
        self.catalog.create_view(name, statement)

    def create_table(self, name: str,
                     columns: Sequence[tuple[str, str]]) -> None:
        """Create a table from ``(column, type-name)`` pairs."""
        self._check_open()
        schema = Schema(
            Attribute(column, SQLType.parse(type_name))
            for column, type_name in columns)
        self.catalog.create(name, schema)

    def insert(self, table: str, rows: Iterable[Sequence[Any]]) -> int:
        """Bulk-insert rows; returns the number of rows inserted.

        Secondary indexes on *table* are maintained in step; a unique
        violation rolls the offending row back out of the table before
        the error propagates.
        """
        self._check_open()
        stored = self.catalog.get(table)
        indexes = self.catalog.indexes_on(table)
        count = 0
        for row in rows:
            stored.insert(row)
            if indexes:
                try:
                    self.catalog.note_insert(table, (stored.rows[-1],),
                                             indexes)
                except ReproError:
                    stored.rows.pop()
                    raise
            count += 1
        return count

    # -- planning internals ---------------------------------------------------

    def _parse(self, sql: str) -> Statement:
        return parse_statement(sql)

    def _analyzer(self) -> Analyzer:
        return Analyzer(self.catalog)

    def _effective_strategy(self, statement: SelectStmt,
                            override: str | None) -> str | None:
        """The strategy a SELECT will be rewritten with (None = no rewrite).

        Priority: explicit per-call override, then the strategy named in
        the SQL text; a plain ``SELECT PROVENANCE`` (= ``"auto"``) defers
        to the session's ``default_strategy``.
        """
        strategy = override if override is not None \
            else statement.provenance
        if strategy == AUTO and self.config.default_strategy != AUTO:
            strategy = self.config.default_strategy
        return strategy

    def _optimize_plan(self, plan: Operator) -> Operator:
        """The session's logical-optimizer step (no-op when disabled)."""
        if self.config.optimize:
            from ..engine.optimizer import optimize as optimize_tree
            plan = optimize_tree(plan, self.catalog)
        return plan

    def _lower(self, plan: Operator):
        """Physical lowering with the session's catalog and index knob —
        the one spelling shared by every planning surface, so EXPLAIN
        output always describes the plan execution would run."""
        from ..engine.lowering import lower_plan
        return lower_plan(plan, self.catalog,
                          use_indexes=self.config.use_indexes)

    def _build_plan(self, statement: SelectStmt,
                    strategy: str | None) -> Operator:
        """analyze → (rewrite): the un-optimized plan, statement untouched."""
        plan = self._analyzer().analyze(statement)
        if strategy:
            rewriter = ProvenanceRewriter(self.catalog, strategy,
                                          self.config)
            plan = rewriter.rewrite_query(plan).plan
        return plan

    def _plan_key(self, sql: str, override: str | None) -> tuple:
        # The statistics generation is part of the key: ANALYZE changes
        # the cost model's answers (and CREATE/DROP INDEX bumps the DDL
        # counter), so no stale cost-based plan is ever served.  So is
        # the use_indexes knob — toggling it mid-session must not keep
        # serving plans lowered under the other setting.
        return (sql, override, self.config.default_strategy,
                self.config.use_indexes, self.catalog.version,
                self.catalog.stats_version)

    def _get_plan(self, sql: str, override: str | None = None,
                  statement: SelectStmt | None = None) -> CachedPlan:
        """The cached plan for *sql*, compiling (and storing) on a miss.

        *statement* skips re-parsing when the caller already holds the
        parsed form (prepared statements).  The catalog version in the key
        means DDL-invalidated entries simply never match again.
        """
        key = self._plan_key(sql, override)
        cached = self.plan_cache.lookup(key)
        if cached is not None:
            return cached
        if statement is None:
            parsed = self._parse(sql)
            if not isinstance(parsed, SelectStmt):
                raise AnalyzerError("expected a SELECT statement")
            statement = parsed
        plan = self._optimize_plan(self._build_plan(
            statement, self._effective_strategy(statement, override)))
        physical = None
        if self.config.engine != "materializing":
            # The baseline engine never executes the physical tree, so
            # only the pipelined configuration pays for lowering.
            physical = self._lower(plan)
        cached = CachedPlan(plan, statement.param_count,
                            self._effective_strategy(statement, override),
                            self.catalog.version,
                            physical=physical,
                            stats_version=self.catalog.stats_version)
        self.plan_cache.store(key, cached)
        return cached

    # -- execution internals --------------------------------------------------

    def _finish_stats(self, executor: Executor) -> ExecutionStats:
        stats = executor.stats
        stats.plan_cache_hits = self.plan_cache.hits
        stats.plan_cache_misses = self.plan_cache.misses
        self.last_stats = stats
        return stats

    def _execute_plan(self, cached: CachedPlan,
                      params: tuple) -> Relation:
        """Run an already-planned cached statement (no per-call optimizer
        or lowering — the physical plan executes directly)."""
        executor = Executor(self.catalog, optimize=False,
                            config=self.config,
                            compiled_cache=cached.compiled)
        if cached.physical is not None:
            relation = executor.execute_physical(cached.physical, params)
        else:
            relation = executor.execute(cached.plan, params)
        self._finish_stats(executor)
        return relation

    def _execute_uncached(self, plan: Operator, param_count: int,
                          params: Sequence[Any]) -> Relation:
        values = check_arity(param_count, params)
        executor = Executor(self.catalog, config=self.config)
        relation = executor.execute(plan, values)
        self._finish_stats(executor)
        return relation

    def _run_select_uncached(self, statement: SelectStmt,
                             strategy: str | None = None,
                             params: Sequence[Any] = ()) -> Relation:
        plan = self._build_plan(
            statement, self._effective_strategy(statement, strategy))
        return self._execute_uncached(plan, statement.param_count, params)

    def _execute_text(self, sql: str,
                      params: Sequence[Any]) -> Relation | int | None:
        """The cursor path: plan-cache lookup before parsing.

        The pre-parse probe is a counter-free :meth:`PlanCache.peek` so
        that DDL/DML statements (which can never be cached) do not inflate
        the miss counter; hit/miss accounting happens in
        :meth:`_get_plan`, once per cacheable statement.
        """
        if self.plan_cache.peek(self._plan_key(sql, None)) is not None:
            cached = self._get_plan(sql)   # counts the hit, bumps LRU
            return self._execute_plan(
                cached, check_arity(cached.param_count, params))
        statement = self._parse(sql)
        if isinstance(statement, SelectStmt):
            cached = self._get_plan(sql, statement=statement)
            return self._execute_plan(
                cached, check_arity(cached.param_count, params))
        return self._run_statement(statement, params)

    def _run_statement(self, statement: Statement,
                       params: Sequence[Any] = ()) -> Relation | int | None:
        """Execute a parsed statement (the non-plan-cached dispatch)."""
        values = check_arity(getattr(statement, "param_count", 0), params)
        if isinstance(statement, SelectStmt):
            return self._run_select_uncached(statement, params=values)
        if isinstance(statement, CreateTableStmt):
            self.create_table(statement.name, statement.columns)
            return None
        if isinstance(statement, CreateViewStmt):
            self.catalog.create_view(statement.name, statement.query)
            return None
        if isinstance(statement, InsertStmt):
            rows = [[_constant(expr, values) for expr in row]
                    for row in statement.rows]
            return self.insert(statement.table, rows)
        if isinstance(statement, CreateIndexStmt):
            self.catalog.create_index(
                statement.name, statement.table, statement.column,
                kind=statement.kind, unique=statement.unique)
            return None
        if isinstance(statement, AnalyzeStmt):
            self.catalog.analyze(statement.table)
            return None
        if isinstance(statement, DropStmt):
            if statement.kind == "view":
                if not self.catalog.has_view(statement.name):
                    raise AnalyzerError(
                        f"view {statement.name!r} does not exist")
                self.catalog.drop_view(statement.name)
            elif statement.kind == "index":
                self.catalog.drop_index(statement.name)
            else:
                self.catalog.drop(statement.name)
            return None
        if isinstance(statement, DeleteStmt):
            return self._delete(statement, values)
        raise ReproError(f"unsupported statement {statement!r}")

    def _delete(self, statement: DeleteStmt, params: tuple) -> int:
        stored = self.catalog.get(statement.table)
        if statement.where is None:
            removed_rows = list(stored.rows)
            stored.rows.clear()
            self.catalog.note_delete(statement.table, removed_rows)
            return len(removed_rows)
        condition = self._analyzer().analyze_expression(
            statement.where, stored.schema, qualifier=statement.table)
        executor = Executor(self.catalog, config=self.config)
        index = Frame.index_for(stored.schema.names)
        kept = []
        removed_rows = []
        for row in stored.rows:
            ctx = EvalContext((Frame(index, row),), executor, params)
            if evaluate(condition, ctx) is not True:
                kept.append(row)
            else:
                removed_rows.append(row)
        stored.rows[:] = kept
        self.catalog.note_delete(statement.table, removed_rows)
        return len(removed_rows)


def connect(config: SessionConfig | None = None,
            catalog: Catalog | None = None, **options: Any) -> Connection:
    """Open a session.

    Keyword *options* are :class:`SessionConfig` fields, as a shorthand::

        conn = connect(default_strategy="left", plan_cache_size=64)
    """
    if options:
        if config is not None:
            config = config.with_options(**options)
        else:
            config = SessionConfig(**options)
    return Connection(config, catalog)


def _constant(expr: Expr, params: tuple = ()) -> Any:
    """Evaluate a constant expression (INSERT VALUES; ? params allowed)."""
    return evaluate(expr, EvalContext((), None, params))
