"""The columnar vectorized execution engine.

:func:`vectorize_plan` rewrites a lowered :class:`PhysicalPlan` in place,
replacing row operators with columnar counterparts wherever the vector
compiler (:mod:`repro.expressions.compiler`) can compile the node's
expressions: scans read straight into cached column vectors, filters
refine a selection vector with whole-column kernels, projections remap or
compute column vectors, hash joins build and probe on key vectors,
nested-loop joins (including LEFT outer NULL padding) filter candidate
index pairs with predicate kernels, sorts order a selection vector by
computed key vectors, and aggregates consume value vectors.  Anything
the vector compiler rejects
(sublinks, outer columns, OR, LIKE/CASE/casts/functions) keeps its row
operator; a :class:`RowsFromColumns` bridge transposes at the boundary,
so ``engine="vectorized"`` is always correct, never partial.

The transform is *payoff-aware*: a columnar subtree is only bridged back
to rows when it contains at least one compute node (filter / project /
join / aggregate) — a bare columnar scan under a row operator would be
pure transposition overhead, so the original row scan is kept instead.

:class:`VectorizedEngine` is the pipelined engine with a vectorizing
prepare step and a sink that transposes :class:`ColumnBatch` output; the
Volcano ``open/next_batch/close`` protocol, the per-node statistics, and
the sublink machinery are all inherited unchanged (sublink plans always
stay on the row path — they run under outer frames, which vector kernels
do not model).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from ..algebra.operators import JoinKind, SetOpKind
from ..expressions.aggregates import make_accumulator
from ..expressions.ast import Col, Expr
from ..expressions.compiler import (
    VectorPredicate, compile_vector_predicate, compile_vector_values,
)
from ..expressions.printer import format_expr
from ..relation import Relation
from .columnar import Column, ColumnBatch, column_from_values, table_columns
from .physical import (
    Filter, HashAggregate, HashJoin, NestedLoopJoin, PhysicalOperator,
    PhysicalPlan, Project, SeqScan, SetOperation, SortNode,
    StreamingLimit, ValuesScan,
)
from .pipeline import PipelineEngine

__all__ = ["VectorizedEngine", "vectorize_plan"]


class VectorOperator(PhysicalOperator):
    """Base class of columnar physical nodes: ``next_batch`` returns
    :class:`ColumnBatch` instead of a list of row tuples."""

    __slots__ = ()

    batch_format = "columnar"


# ---------------------------------------------------------------------------
# Bridges
# ---------------------------------------------------------------------------

class RowsFromColumns(PhysicalOperator):
    """Columnar -> rows bridge in front of a row-fallback operator."""

    __slots__ = ("child",)

    is_bridge = True

    def __init__(self, child: PhysicalOperator) -> None:
        super().__init__()
        self.child = child
        self.est_rows = child.est_rows
        self.est_cost = child.est_cost

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def next_batch(self) -> list | None:
        batch = self.engine.pull(self.child)
        if batch is None:
            return None
        return batch.to_rows()

    def label(self) -> str:
        return "RowsFromColumns (bridge)"


class ColumnsFromRows(VectorOperator):
    """Rows -> columnar bridge under a vectorized operator (used for a
    hash-join side whose subtree stayed on the row path)."""

    __slots__ = ("child",)

    is_bridge = True

    def __init__(self, child: PhysicalOperator) -> None:
        super().__init__()
        self.child = child
        self.est_rows = child.est_rows
        self.est_cost = child.est_cost

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def next_batch(self) -> ColumnBatch | None:
        batch = self.engine.pull(self.child)
        if batch is None:
            return None
        return ColumnBatch.from_rows(batch)

    def label(self) -> str:
        return "ColumnsFromRows (bridge)"


# ---------------------------------------------------------------------------
# Columnar scans
# ---------------------------------------------------------------------------

class VTableScan(VectorOperator):
    """Columnar scan of a catalog table: the table's cached column
    vectors are shared across batches; each batch is just a ``range``
    selection — zero per-batch allocation."""

    __slots__ = ("table", "alias", "names", "_columns", "_nrows", "_pos")

    def __init__(self, table: str, alias: str, names: tuple[str, ...]) -> None:
        super().__init__()
        self.table = table
        self.alias = alias
        self.names = names
        self._columns: list[Column] = []
        self._nrows = 0
        self._pos = 0

    def _reset(self) -> None:
        rows = self.engine.catalog.get(self.table).rows
        self._columns = table_columns(rows, len(self.names))
        self._nrows = len(rows)
        self._pos = 0

    def _release(self) -> None:
        self._columns = []

    def next_batch(self) -> ColumnBatch | None:
        if self._pos >= self._nrows:
            return None
        end = min(self._pos + self.engine.batch_size, self._nrows)
        batch = ColumnBatch(self._columns, range(self._pos, end))
        self._pos = end
        return batch

    def label(self) -> str:
        return f"SeqScan {self.table} as {self.alias} -> {list(self.names)}"


class VValuesScan(VectorOperator):
    """Columnar scan of a literal relation (columnarized once — the rows
    are statement constants)."""

    __slots__ = ("rows", "names", "_columns", "_pos")

    def __init__(self, rows: list[tuple], names: tuple[str, ...]) -> None:
        super().__init__()
        self.rows = rows
        self.names = names
        self._columns: list[Column] | None = None
        self._pos = 0

    def _reset(self) -> None:
        if self._columns is None:
            self._columns = ColumnBatch.from_rows(
                self.rows, len(self.names)).columns
        self._pos = 0

    def next_batch(self) -> ColumnBatch | None:
        if self._pos >= len(self.rows):
            return None
        end = min(self._pos + self.engine.batch_size, len(self.rows))
        batch = ColumnBatch(self._columns, range(self._pos, end))
        self._pos = end
        return batch

    def label(self) -> str:
        return f"ValuesScan {len(self.rows)} row(s) -> {list(self.names)}"


# ---------------------------------------------------------------------------
# Columnar pipelines
# ---------------------------------------------------------------------------

class VFilter(VectorOperator):
    """Vectorized selection: the predicate kernel refines the selection
    vector; the column vectors are passed through untouched."""

    __slots__ = ("child", "condition", "kernel")

    def __init__(self, child: PhysicalOperator, condition: Expr,
                 kernel: VectorPredicate) -> None:
        super().__init__()
        self.child = child
        self.condition = condition
        self.kernel = kernel

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def next_batch(self) -> ColumnBatch | None:
        engine = self.engine
        kernel = self.kernel
        params = engine.params
        while True:
            batch = engine.pull(self.child)
            if batch is None:
                return None
            sel = kernel(batch.columns, batch.sel, params)
            if sel:
                return ColumnBatch(batch.columns, sel)

    def label(self) -> str:
        return f"Filter {format_expr(self.condition)}"


class VProject(VectorOperator):
    """Vectorized projection.  All-column-reference projections remap
    the column list and keep the selection (zero copies); computed items
    produce dense vectors through value kernels."""

    __slots__ = ("child", "items", "distinct", "plan", "_positions",
                 "_seen")

    def __init__(self, child: PhysicalOperator, items: tuple,
                 distinct: bool, plan: list) -> None:
        super().__init__()
        self.child = child
        self.items = items
        self.distinct = distinct
        self.plan = plan
        if all(tag == "col" for tag, _ in plan):
            self._positions = tuple(payload for _, payload in plan)
        else:
            self._positions = None
        self._seen: dict | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _reset(self) -> None:
        self._seen = {} if self.distinct else None

    def next_batch(self) -> ColumnBatch | None:
        engine = self.engine
        positions = self._positions
        while True:
            batch = engine.pull(self.child)
            if batch is None:
                return None
            if positions is not None:
                columns = batch.columns
                out = ColumnBatch([columns[p] for p in positions],
                                  batch.sel)
            else:
                sel = batch.sel
                columns = batch.columns
                out_columns = []
                for tag, payload in self.plan:
                    if tag == "col":
                        out_columns.append(columns[payload].gather(sel))
                    else:
                        out_columns.append(column_from_values(
                            payload(columns, sel, engine.params)))
                out = ColumnBatch(out_columns, range(len(sel)))
            if self.distinct:
                seen = self._seen
                fresh = []
                for row in out.to_rows():
                    if row not in seen:
                        seen[row] = None
                        fresh.append(row)
                if not fresh:
                    continue
                out = ColumnBatch.from_rows(fresh, len(self.plan))
            return out

    def label(self) -> str:
        kind = "Distinct" if self.distinct else "Project"
        items = ", ".join(
            f"{format_expr(expr)} AS {name}" for name, expr in self.items)
        return f"{kind} [{items}]"


class VHashJoin(VectorOperator):
    """Vectorized equi-join: the right input accumulates into dense
    column vectors with a key -> row-index hash table; probing walks the
    left key vector and the output gathers both sides by index — row
    tuples are never formed.

    Key semantics are exactly the row engine's dict semantics (NULL never
    joins; ``1 == True == 1.0`` share a bucket; NaN matches only itself).
    LEFT padding appends one all-NULL sentinel row to the dense right
    vectors and pairs unmatched left rows with it.
    """

    __slots__ = ("left", "right", "left_positions", "right_positions",
                 "residual", "residual_kernel", "kind", "right_width",
                 "_table", "_right_cols", "_sentinel")

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 left_positions: tuple[int, ...],
                 right_positions: tuple[int, ...],
                 residual: Expr | None,
                 residual_kernel: VectorPredicate | None,
                 kind: JoinKind, right_width: int) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.left_positions = left_positions
        self.right_positions = right_positions
        self.residual = residual
        self.residual_kernel = residual_kernel
        self.kind = kind
        self.right_width = right_width
        self._table: dict | None = None
        self._right_cols: list[Column] | None = None
        self._sentinel = -1

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _reset(self) -> None:
        self._table = None
        self._right_cols = None
        self.engine.stats.hash_joins += 1

    def _release(self) -> None:
        self._table = None
        self._right_cols = None

    def _build(self) -> None:
        engine = self.engine
        width = self.right_width
        values: list[list] = [[] for _ in range(width)]
        kinds: list[str | None] = [None] * width
        nulls = [False] * width
        table: dict = {}
        positions = self.right_positions
        single = positions[0] if len(positions) == 1 else None
        n = 0
        while True:
            batch = engine.pull(self.right)
            if batch is None:
                break
            columns = batch.columns
            sel = batch.sel
            for c in range(width):
                column = columns[c]
                column_values = column.values
                values[c].extend([column_values[i] for i in sel])
                if kinds[c] is None:
                    kinds[c] = column.kind
                elif kinds[c] != column.kind:
                    kinds[c] = "any"
                if column.has_nulls:
                    nulls[c] = True
            if single is not None:
                key_values = columns[single].values
                for i in sel:
                    key = key_values[i]
                    if key is not None:
                        bucket = table.get(key)
                        if bucket is None:
                            table[key] = [n]
                        else:
                            bucket.append(n)
                    n += 1
            else:
                key_columns = [columns[p].values for p in positions]
                for i in sel:
                    key = tuple(kv[i] for kv in key_columns)
                    if not any(v is None for v in key):
                        table.setdefault(key, []).append(n)
                    n += 1
        if self.kind == JoinKind.LEFT:
            for c in range(width):
                values[c].append(None)
                nulls[c] = True
        self._sentinel = n
        self._right_cols = [Column(values[c], kinds[c] or "any", nulls[c])
                            for c in range(width)]
        self._table = table

    def next_batch(self) -> ColumnBatch | None:
        if self._table is None:
            self._build()
        engine = self.engine
        table = self._table
        pad_left = self.kind == JoinKind.LEFT
        sentinel = self._sentinel
        positions = self.left_positions
        single = positions[0] if len(positions) == 1 else None
        kernel = self.residual_kernel
        while True:
            batch = engine.pull(self.left)
            if batch is None:
                return None
            columns = batch.columns
            sel = batch.sel
            out_left: list[int] = []
            out_right: list[int] = []
            if kernel is None:
                if single is not None:
                    key_values = columns[single].values
                    for i in sel:
                        key = key_values[i]
                        bucket = table.get(key) \
                            if key is not None else None
                        if bucket:
                            for j in bucket:
                                out_left.append(i)
                                out_right.append(j)
                        elif pad_left:
                            out_left.append(i)
                            out_right.append(sentinel)
                else:
                    key_columns = [columns[p].values for p in positions]
                    for i in sel:
                        key = tuple(kv[i] for kv in key_columns)
                        bucket = None
                        if not any(v is None for v in key):
                            bucket = table.get(key)
                        if bucket:
                            for j in bucket:
                                out_left.append(i)
                                out_right.append(j)
                        elif pad_left:
                            out_left.append(i)
                            out_right.append(sentinel)
            else:
                self._probe_residual(batch, table, kernel, pad_left,
                                     sentinel, out_left, out_right)
            if not out_left:
                continue
            out_columns = [column.gather(out_left) for column in columns]
            out_columns += [column.gather(out_right)
                            for column in self._right_cols]
            return ColumnBatch(out_columns, range(len(out_left)))

    def _probe_residual(self, batch: ColumnBatch, table: dict,
                        kernel: VectorPredicate, pad_left: bool,
                        sentinel: Any, out_left: list[int],
                        out_right: list[int]) -> None:
        """Collect candidate pairs, run the residual kernel once over the
        whole candidate set, then merge survivors span by span so output
        order (and LEFT padding) matches the row engine exactly."""
        engine = self.engine
        columns = batch.columns
        sel = batch.sel
        positions = self.left_positions
        single = positions[0] if len(positions) == 1 else None
        cand_left: list[int] = []
        cand_right: list[int] = []
        spans: list[tuple[int, int, int]] = []
        if single is not None:
            key_values = columns[single].values
            for i in sel:
                start = len(cand_left)
                key = key_values[i]
                if key is not None:
                    bucket = table.get(key)
                    if bucket:
                        for j in bucket:
                            cand_left.append(i)
                            cand_right.append(j)
                spans.append((i, start, len(cand_left)))
        else:
            key_columns = [columns[p].values for p in positions]
            for i in sel:
                start = len(cand_left)
                key = tuple(kv[i] for kv in key_columns)
                if not any(v is None for v in key):
                    bucket = table.get(key)
                    if bucket:
                        for j in bucket:
                            cand_left.append(i)
                            cand_right.append(j)
                spans.append((i, start, len(cand_left)))
        kept: list[int] = []
        if cand_left:
            combined = [column.gather(cand_left) for column in columns]
            combined += [column.gather(cand_right)
                         for column in self._right_cols]
            kept = kernel(combined, range(len(cand_left)), engine.params)
        pointer = 0
        total = len(kept)
        for i, start, end in spans:
            matched = False
            while pointer < total and kept[pointer] < end:
                p = kept[pointer]
                out_left.append(cand_left[p])
                out_right.append(cand_right[p])
                matched = True
                pointer += 1
            if pad_left and not matched:
                out_left.append(i)
                out_right.append(sentinel)

    def label(self) -> str:
        keys = ", ".join(
            f"left[{l}] = right[{r}]"
            for l, r in zip(self.left_positions, self.right_positions))
        text = f"HashJoin {self.kind.value} on [{keys}]"
        if self.residual is not None:
            text += f" residual {format_expr(self.residual)}"
        return text


class VHashAggregate(VectorOperator):
    """Vectorized grouped aggregation: group keys come straight off the
    key vectors, aggregate arguments are computed one vector per batch,
    and the accumulators are shared with the row engines — results (and
    group order) are bit-identical."""

    __slots__ = ("child", "group", "group_positions", "aggregates",
                 "arg_kernels", "_result", "_pos")

    def __init__(self, child: PhysicalOperator, group: tuple[str, ...],
                 group_positions: tuple[int, ...], aggregates: tuple,
                 arg_kernels: list) -> None:
        super().__init__()
        self.child = child
        self.group = group
        self.group_positions = group_positions
        self.aggregates = aggregates
        self.arg_kernels = arg_kernels
        self._result: list[tuple] | None = None
        self._pos = 0

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _reset(self) -> None:
        self._result = None
        self._pos = 0

    def _release(self) -> None:
        self._result = None

    def _make_accumulators(self) -> list:
        return [make_accumulator(call.name, star=call.arg is None,
                                 distinct=call.distinct)
                for _, call in self.aggregates]

    def _aggregate(self) -> list[tuple]:
        engine = self.engine
        positions = self.group_positions
        kernels = self.arg_kernels
        groups: dict[tuple, list] = {}
        while True:
            batch = engine.pull(self.child)
            if batch is None:
                break
            columns = batch.columns
            sel = batch.sel
            arg_columns = [
                None if fn is None else fn(columns, sel, engine.params)
                for fn in kernels]
            if positions:
                key_vectors = [columns[p].values for p in positions]
                for offset, i in enumerate(sel):
                    key = tuple(kv[i] for kv in key_vectors)
                    accumulators = groups.get(key)
                    if accumulators is None:
                        accumulators = self._make_accumulators()
                        groups[key] = accumulators
                    for column, accumulator in zip(arg_columns,
                                                   accumulators):
                        accumulator.add(
                            1 if column is None else column[offset])
            else:
                accumulators = groups.get(())
                if accumulators is None:
                    accumulators = self._make_accumulators()
                    groups[()] = accumulators
                for column, accumulator in zip(arg_columns, accumulators):
                    if column is None:
                        for _ in sel:
                            accumulator.add(1)
                    else:
                        for value in column:
                            accumulator.add(value)
        if not groups and not self.group:
            groups[()] = self._make_accumulators()
        return [key + tuple(acc.result() for acc in accumulators)
                for key, accumulators in groups.items()]

    def next_batch(self) -> ColumnBatch | None:
        if self._result is None:
            self._result = self._aggregate()
            self._pos = 0
        if self._pos >= len(self._result):
            return None
        rows = self._result[self._pos:self._pos + self.engine.batch_size]
        self._pos += len(rows)
        return ColumnBatch.from_rows(
            rows, len(self.group) + len(self.aggregates))

    def label(self) -> str:
        aggs = ", ".join(
            f"{format_expr(call)} AS {name}"
            for name, call in self.aggregates)
        return f"HashAggregate group={list(self.group)} [{aggs}]"


class VNestedLoopJoin(VectorOperator):
    """Vectorized theta/cross join: the right input accumulates into
    dense column vectors; each left batch forms the candidate cross
    product as index pairs and (for theta joins) runs the predicate
    kernel once over the whole candidate set.  LEFT padding reuses
    :class:`VHashJoin`'s sentinel trick — one all-NULL row appended to
    the dense right vectors pairs with unmatched left rows, so NULL
    padding never forms row tuples either."""

    __slots__ = ("left", "right", "condition", "kernel", "kind",
                 "right_width", "_right_cols", "_nright")

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 condition: Expr | None, kernel: VectorPredicate | None,
                 kind: JoinKind, right_width: int) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.condition = condition
        self.kernel = kernel
        self.kind = kind
        self.right_width = right_width
        self._right_cols: list[Column] | None = None
        self._nright = 0

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _reset(self) -> None:
        self._right_cols = None
        if self.condition is not None:
            self.engine.stats.nested_loop_joins += 1

    def _release(self) -> None:
        self._right_cols = None

    def _materialize_right(self) -> None:
        engine = self.engine
        width = self.right_width
        values: list[list] = [[] for _ in range(width)]
        kinds: list[str | None] = [None] * width
        nulls = [False] * width
        n = 0
        while True:
            batch = engine.pull(self.right)
            if batch is None:
                break
            columns = batch.columns
            sel = batch.sel
            for c in range(width):
                column = columns[c]
                column_values = column.values
                values[c].extend([column_values[i] for i in sel])
                if kinds[c] is None:
                    kinds[c] = column.kind
                elif kinds[c] != column.kind:
                    kinds[c] = "any"
                if column.has_nulls:
                    nulls[c] = True
            n += len(sel)
        if self.kind == JoinKind.LEFT:
            for c in range(width):
                values[c].append(None)
                nulls[c] = True
        self._nright = n
        self._right_cols = [Column(values[c], kinds[c] or "any", nulls[c])
                            for c in range(width)]

    def next_batch(self) -> ColumnBatch | None:
        if self._right_cols is None:
            self._materialize_right()
        engine = self.engine
        pad_left = self.kind == JoinKind.LEFT
        n = self._nright
        sentinel = n
        kernel = self.kernel
        while True:
            batch = engine.pull(self.left)
            if batch is None:
                return None
            columns = batch.columns
            sel = batch.sel
            out_left: list[int] = []
            out_right: list[int] = []
            if kernel is None:
                if n:
                    inner = range(n)
                    for i in sel:
                        out_left.extend([i] * n)
                        out_right.extend(inner)
                elif pad_left:
                    out_left.extend(sel)
                    out_right.extend([sentinel] * len(sel))
            elif n or pad_left:
                cand_left: list[int] = []
                cand_right: list[int] = []
                inner = range(n)
                for i in sel:
                    cand_left.extend([i] * n)
                    cand_right.extend(inner)
                kept: list[int] = []
                if cand_left:
                    combined = [column.gather(cand_left)
                                for column in columns]
                    combined += [column.gather(cand_right)
                                 for column in self._right_cols]
                    kept = kernel(combined, range(len(cand_left)),
                                  engine.params)
                pointer = 0
                total = len(kept)
                for offset, i in enumerate(sel):
                    end = (offset + 1) * n
                    matched = False
                    while pointer < total and kept[pointer] < end:
                        p = kept[pointer]
                        out_left.append(cand_left[p])
                        out_right.append(cand_right[p])
                        matched = True
                        pointer += 1
                    if pad_left and not matched:
                        out_left.append(i)
                        out_right.append(sentinel)
            if not out_left:
                continue
            out_columns = [column.gather(out_left) for column in columns]
            out_columns += [column.gather(out_right)
                            for column in self._right_cols]
            return ColumnBatch(out_columns, range(len(out_left)))

    def label(self) -> str:
        if self.condition is None:
            return f"NestedLoopJoin {self.kind.value} (cross product)"
        return (f"NestedLoopJoin {self.kind.value} "
                f"on {format_expr(self.condition)}")


class VSort(VectorOperator):
    """Vectorized blocking sort: accumulates the input into dense column
    vectors, computes one key vector per sort key, and sorts a
    *selection* order — output batches are selections over the collected
    columns, so no row tuple is ever formed.  Key semantics (stable
    multi-key, NULLs first ascending / last descending) are shared with
    the row engine's ``sort_rows``."""

    __slots__ = ("child", "keys", "index", "kernels", "_columns",
                 "_order", "_pos")

    def __init__(self, child: PhysicalOperator, keys: tuple,
                 index: dict[str, int], kernels: list) -> None:
        super().__init__()
        self.child = child
        self.keys = keys
        self.index = index
        self.kernels = kernels
        self._columns: list[Column] | None = None
        self._order: list[int] = []
        self._pos = 0

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _reset(self) -> None:
        self._columns = None
        self._order = []
        self._pos = 0

    def _release(self) -> None:
        self._columns = None
        self._order = []

    def _collect(self) -> None:
        from .materialize import _asc_key, _desc_key
        engine = self.engine
        values: list[list] | None = None
        kinds: list[str | None] = []
        nulls: list[bool] = []
        key_vectors: list[list] = [[] for _ in self.kernels]
        while True:
            batch = engine.pull(self.child)
            if batch is None:
                break
            columns = batch.columns
            sel = batch.sel
            if values is None:
                width = len(columns)
                values = [[] for _ in range(width)]
                kinds = [None] * width
                nulls = [False] * width
            for k, kernel in enumerate(self.kernels):
                key_vectors[k].extend(
                    kernel(columns, sel, engine.params))
            for c, column in enumerate(columns):
                column_values = column.values
                values[c].extend([column_values[i] for i in sel])
                if kinds[c] is None:
                    kinds[c] = column.kind
                elif kinds[c] != column.kind:
                    kinds[c] = "any"
                if column.has_nulls:
                    nulls[c] = True
        if values is None:
            self._columns = []
            self._order = []
            return
        order = list(range(len(values[0]) if values else 0))
        for key, vector in zip(reversed(self.keys),
                               reversed(key_vectors)):
            if key.ascending:
                order.sort(key=lambda i, v=vector: _asc_key(v[i]))
            else:
                order.sort(key=lambda i, v=vector: _desc_key(v[i]))
        self._columns = [Column(values[c], kinds[c] or "any", nulls[c])
                         for c in range(len(values))]
        self._order = order

    def next_batch(self) -> ColumnBatch | None:
        if self._columns is None:
            self._collect()
            self._pos = 0
        if self._pos >= len(self._order):
            return None
        chunk = self._order[self._pos:self._pos + self.engine.batch_size]
        self._pos += len(chunk)
        return ColumnBatch(self._columns, chunk)

    def label(self) -> str:
        keys = ", ".join(
            f"{format_expr(k.expr)} {'ASC' if k.ascending else 'DESC'}"
            for k in self.keys)
        return f"Sort [{keys}]"


class VUnionAll(VectorOperator):
    """Streaming bag union: left batches, then right batches, passed
    through in columnar form."""

    __slots__ = ("left", "right", "_right_phase")

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self._right_phase = False

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def _reset(self) -> None:
        self._right_phase = False

    def next_batch(self) -> ColumnBatch | None:
        if not self._right_phase:
            batch = self.engine.pull(self.left)
            if batch is not None:
                return batch
            self._right_phase = True
        return self.engine.pull(self.right)

    def label(self) -> str:
        return "SetOp UNION ALL"


class VLimit(VectorOperator):
    """LIMIT/OFFSET over columnar batches: trims the selection vector —
    the column vectors are never copied."""

    __slots__ = ("child", "count", "offset", "_skipped", "_emitted",
                 "_done")

    def __init__(self, child: PhysicalOperator, count: int | None,
                 offset: int) -> None:
        super().__init__()
        self.child = child
        self.count = count
        self.offset = offset
        self._skipped = 0
        self._emitted = 0
        self._done = False

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _reset(self) -> None:
        self._skipped = 0
        self._emitted = 0
        self._done = False

    def next_batch(self) -> ColumnBatch | None:
        if self._done:
            return None
        if self.count is not None and self._emitted >= self.count:
            self._done = True
            return None
        while True:
            batch = self.engine.pull(self.child)
            if batch is None:
                self._done = True
                return None
            sel = batch.sel
            if self._skipped < self.offset:
                take = min(self.offset - self._skipped, len(sel))
                self._skipped += take
                sel = sel[take:]
                if not len(sel):
                    continue
            if self.count is not None:
                remaining = self.count - self._emitted
                if len(sel) > remaining:
                    sel = sel[:remaining]
            self._emitted += len(sel)
            if self.count is not None and self._emitted >= self.count:
                self._done = True
            if len(sel):
                return ColumnBatch(batch.columns, sel)

    def label(self) -> str:
        return f"StreamingLimit {self.count} OFFSET {self.offset}"


# ---------------------------------------------------------------------------
# Plan vectorization
# ---------------------------------------------------------------------------

def _copy_est(new: PhysicalOperator, old: PhysicalOperator) -> None:
    new.est_rows = old.est_rows
    new.est_cost = old.est_cost


def _bridge_to_rows(child: PhysicalOperator,
                    vector: PhysicalOperator | None, compute: bool
                    ) -> PhysicalOperator:
    """The row-format version of a child: its vectorized subtree behind a
    transposing bridge when that subtree does real vector work, else the
    original row operator (a bare columnar scan bridged back to rows
    would only add transposition cost)."""
    if vector is not None and compute:
        return RowsFromColumns(vector)
    return child


#: Physical operators that deliberately stay row-format, with the reason.
#: Every concrete plan node must either be handled by :func:`_vectorize`
#: or appear here — the ``exhaustiveness-physical`` analysis rule fails
#: the build otherwise, so a new operator cannot silently skip the
#: columnar engine without an explicit entry.
ROW_ONLY_FALLBACK: dict[str, str] = {
    "IndexScan": "point/small-range lookups emit too few rows for "
                 "column batches to pay for the transposition",
    "IndexNestedLoopJoin": "probes the inner index one outer row at a "
                           "time; there is no whole-column formulation",
    "PartitionScan": "emits stored-order row slices straight off the "
                     "partition map; batches would be rebuilt per part",
    "Gather": "exchange boundary: fragments ship encoded rows between "
              "processes, vector work happens inside the fragments",
}


def _vectorize(node: PhysicalOperator) -> tuple[PhysicalOperator | None, bool]:
    """Recursively build a columnar version of *node*'s subtree.

    Returns ``(vector, compute)``: *vector* is a columnar-format
    equivalent (or None when this subtree cannot run columnar), *compute*
    whether it contains at least one vector compute node.  *node* itself
    always remains a valid row-format alternative; when it stays the
    fallback its child slots are re-aimed through bridges as payoff
    dictates.
    """
    if isinstance(node, SeqScan) and not node.sublinks:
        vector = VTableScan(node.table, node.alias, node.names)
        _copy_est(vector, node)
        return vector, False

    if isinstance(node, ValuesScan) and not node.sublinks:
        vector = VValuesScan(node.rows, node.names)
        _copy_est(vector, node)
        return vector, False

    if isinstance(node, Filter) and not node.sublinks:
        vchild, ccompute = _vectorize(node.child)
        if vchild is not None:
            kernel = compile_vector_predicate(node.condition, node.index)
            if kernel is not None:
                vector = VFilter(vchild, node.condition, kernel)
                _copy_est(vector, node)
                return vector, True
        node.child = _bridge_to_rows(node.child, vchild, ccompute)
        return None, False

    if isinstance(node, Project) and not node.sublinks:
        vchild, ccompute = _vectorize(node.child)
        if vchild is not None:
            plan: list = []
            supported = True
            for _, expr in node.items:
                if isinstance(expr, Col) and expr.level == 0 \
                        and expr.name in node.index:
                    plan.append(("col", node.index[expr.name]))
                    continue
                kernel = compile_vector_values(expr, node.index)
                if kernel is None:
                    supported = False
                    break
                plan.append(("kernel", kernel))
            if supported:
                vector = VProject(vchild, node.items, node.distinct, plan)
                _copy_est(vector, node)
                return vector, True
        node.child = _bridge_to_rows(node.child, vchild, ccompute)
        return None, False

    if isinstance(node, HashJoin) and not node.sublinks:
        vleft, lcompute = _vectorize(node.left)
        vright, rcompute = _vectorize(node.right)
        supported = vleft is not None or vright is not None
        residual_kernel = None
        if supported and node.residual is not None:
            residual_kernel = compile_vector_predicate(
                node.residual, node.index)
            supported = residual_kernel is not None
        if supported:
            left = vleft if vleft is not None \
                else ColumnsFromRows(node.left)
            right = vright if vright is not None \
                else ColumnsFromRows(node.right)
            vector = VHashJoin(
                left, right, node.left_positions, node.right_positions,
                node.residual, residual_kernel, node.kind,
                node.right_width)
            _copy_est(vector, node)
            return vector, True
        node.left = _bridge_to_rows(node.left, vleft, lcompute)
        node.right = _bridge_to_rows(node.right, vright, rcompute)
        return None, False

    if isinstance(node, HashAggregate) and not node.sublinks:
        vchild, ccompute = _vectorize(node.child)
        if vchild is not None:
            kernels: list = []
            supported = True
            for _, call in node.aggregates:
                if call.arg is None:
                    kernels.append(None)
                    continue
                kernel = compile_vector_values(call.arg, node.index)
                if kernel is None:
                    supported = False
                    break
                kernels.append(kernel)
            if supported:
                vector = VHashAggregate(
                    vchild, node.group, node.group_positions,
                    node.aggregates, kernels)
                _copy_est(vector, node)
                return vector, True
        node.child = _bridge_to_rows(node.child, vchild, ccompute)
        return None, False

    if isinstance(node, NestedLoopJoin) and not node.sublinks:
        vleft, lcompute = _vectorize(node.left)
        vright, rcompute = _vectorize(node.right)
        supported = vleft is not None or vright is not None
        kernel = None
        if supported and node.condition is not None:
            kernel = compile_vector_predicate(node.condition, node.index)
            supported = kernel is not None
        if supported:
            left = vleft if vleft is not None \
                else ColumnsFromRows(node.left)
            right = vright if vright is not None \
                else ColumnsFromRows(node.right)
            vector = VNestedLoopJoin(
                left, right, node.condition, kernel, node.kind,
                node.right_width)
            _copy_est(vector, node)
            return vector, True
        node.left = _bridge_to_rows(node.left, vleft, lcompute)
        node.right = _bridge_to_rows(node.right, vright, rcompute)
        return None, False

    if isinstance(node, SortNode) and not node.sublinks:
        vchild, ccompute = _vectorize(node.child)
        if vchild is not None:
            kernels: list = []
            supported = True
            for key in node.keys:
                kernel = compile_vector_values(key.expr, node.index)
                if kernel is None:
                    supported = False
                    break
                kernels.append(kernel)
            if supported:
                vector = VSort(vchild, node.keys, node.index, kernels)
                _copy_est(vector, node)
                return vector, True
        node.child = _bridge_to_rows(node.child, vchild, ccompute)
        return None, False

    if isinstance(node, StreamingLimit) and not node.sublinks:
        vchild, ccompute = _vectorize(node.child)
        if vchild is not None:
            vector = VLimit(vchild, node.count, node.offset)
            _copy_est(vector, node)
            return vector, ccompute
        return None, False

    if isinstance(node, SetOperation) and not node.sublinks \
            and node.kind == SetOpKind.UNION and node.all:
        vleft, lcompute = _vectorize(node.left)
        vright, rcompute = _vectorize(node.right)
        if vleft is not None and vright is not None:
            vector = VUnionAll(vleft, vright)
            _copy_est(vector, node)
            return vector, lcompute or rcompute
        node.left = _bridge_to_rows(node.left, vleft, lcompute)
        node.right = _bridge_to_rows(node.right, vright, rcompute)
        return None, False

    # Row-only operators (index scans, index nested-loop joins, the
    # materializing set operations, exchange operators, anything carrying
    # sublinks): keep the node, but let worthwhile columnar subtrees feed
    # it through bridges.
    for attr in ("child", "left", "right"):
        try:
            child = getattr(node, attr)
        except AttributeError:
            continue
        if isinstance(child, PhysicalOperator):
            vchild, ccompute = _vectorize(child)
            setattr(node, attr, _bridge_to_rows(child, vchild, ccompute))
    return None, False


def vectorize_plan(plan: PhysicalPlan) -> PhysicalPlan:
    """Rewrite *plan* in place for columnar execution (idempotent).

    Sublink plans are untouched — they execute under outer frames, which
    the vector kernels do not model.  Afterwards ``plan.vector_counts``
    holds ``(columnar_nodes, row_fallback_nodes)`` over the whole plan,
    bridges excluded.
    """
    if plan.vectorized:
        return plan
    vector, compute = _vectorize(plan.root)
    if vector is not None and compute:
        plan.root = vector
    columnar = fallback = 0
    for node in plan.nodes():
        if node.is_bridge:
            continue
        if node.batch_format == "columnar":
            columnar += 1
        else:
            fallback += 1
    plan.vector_counts = (columnar, fallback)
    plan.vectorized = True
    return plan


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

class VectorizedEngine(PipelineEngine):
    """The pipelined engine with a vectorizing prepare step.

    Plans are vectorized lazily on first execution (the session layer's
    plan-instance leasing makes the in-place rewrite safe — an instance
    is never shared between concurrent executions, and the plan-cache key
    includes the engine name so row engines never see a vectorized
    instance).  The sink accepts both batch formats, so row-fallback
    plans — and sublink subplans, which always stay on rows — run
    unchanged.
    """

    engine_name = "vectorized"

    def _prepare(self, plan: PhysicalPlan) -> None:
        if not plan.vectorized:
            vectorize_plan(plan)
        if plan.vector_counts is not None:
            self.stats.vectorized_nodes, self.stats.row_fallback_nodes = \
                plan.vector_counts

    def execute_physical(self, plan: PhysicalPlan,
                         params: Iterable[Any] = ()) -> Relation:
        self._prepare(plan)
        return super().execute_physical(plan, params)

    def stream_physical(self, plan: PhysicalPlan,
                        params: Iterable[Any] = ()
                        ) -> Iterator[list[tuple]]:
        self._prepare(plan)
        return super().stream_physical(plan, params)

    def _drain(self, root: PhysicalOperator, frames: tuple) -> list[tuple]:
        root.open(self, frames)
        rows: list[tuple] = []
        try:
            while True:
                batch = self.pull(root)
                if batch is None:
                    break
                if isinstance(batch, ColumnBatch):
                    rows.extend(batch.to_rows())
                else:
                    rows.extend(batch)
        finally:
            root.close()
        return rows
