"""Physical lowering — the optimizer's second phase.

The planner is now two-phase:

1. **logical rewrite** (:mod:`repro.engine.optimizer`): selection
   pushdown and join-condition extraction over the logical algebra;
2. **physical lowering** (this module): the logical tree is translated
   into an executable :class:`~repro.engine.physical.PhysicalPlan` —
   join algorithms picked (:class:`HashJoin` for equi-join conjuncts,
   :class:`NestedLoopJoin` otherwise), sublinks classified into
   InitPlans (uncorrelated, execute-once) vs SubPlans (correlated,
   per-outer-row) and lowered recursively, limits made streaming.

Lowering is pure plan construction: no catalog access, no execution
state.  The produced plan is what the session's plan cache stores, so a
cached statement skips both phases on re-execution.
"""

from __future__ import annotations

from ..errors import ExecutionError
from ..expressions.ast import (
    BoolOp, Col, Comparison, Expr, Sublink, TRUE, and_all,
)
from ..expressions.evaluator import Frame
from ..algebra.operators import (
    Aggregate, BaseRelation, Join, Limit, Operator, Project, Select,
    SetOp, Sort, Values,
)
from ..algebra.properties import is_correlated
from .physical import (
    Filter, HashAggregate, HashJoin, InitPlanSublink, NestedLoopJoin,
    PhysicalOperator, PhysicalPlan, Project as PhysicalProject, SeqScan,
    SetOperation, SortNode, StreamingLimit, SublinkPlan, SubPlanSublink,
    ValuesScan,
)

SubplanRegistry = dict[int, SublinkPlan]


def split_equi_keys(op: Join) -> tuple[list[tuple[int, int]], list[Expr]]:
    """Split the join condition into hashable equality column pairs
    (left position, right position) and residual conjuncts."""
    left_schema = op.left.schema
    right_schema = op.right.schema
    if isinstance(op.condition, BoolOp) and op.condition.op == "and":
        conjuncts = op.condition.items
    else:
        conjuncts = (op.condition,)
    keys: list[tuple[int, int]] = []
    residual: list[Expr] = []
    for part in conjuncts:
        pair = None
        if (isinstance(part, Comparison) and part.op == "="
                and isinstance(part.left, Col) and part.left.level == 0
                and isinstance(part.right, Col)
                and part.right.level == 0):
            a, b = part.left.name, part.right.name
            if a in left_schema and b in right_schema:
                pair = (left_schema.position(a), right_schema.position(b))
            elif b in left_schema and a in right_schema:
                pair = (left_schema.position(b), right_schema.position(a))
        if pair is None:
            residual.append(part)
        else:
            keys.append(pair)
    return keys, residual


def lower_plan(op: Operator) -> PhysicalPlan:
    """Lower an (already logically optimized) operator tree."""
    registry: SubplanRegistry = {}
    root = _lower(op, registry)
    return PhysicalPlan(root, op, op.schema, registry)


def _lower(op: Operator, registry: SubplanRegistry) -> PhysicalOperator:
    if isinstance(op, BaseRelation):
        return SeqScan(op.table, op.alias, op.schema.names)

    if isinstance(op, Values):
        return ValuesScan(op.rows, op.schema.names)

    if isinstance(op, Select):
        node = Filter(_lower(op.input, registry), op.condition,
                      Frame.index_for(op.input.schema.names))
        node.sublinks = _collect_sublinks((op.condition,), registry)
        return node

    if isinstance(op, Project):
        node = PhysicalProject(
            _lower(op.input, registry), op.items, op.distinct,
            Frame.index_for(op.input.schema.names))
        node.sublinks = _collect_sublinks(
            tuple(expr for _, expr in op.items), registry)
        return node

    if isinstance(op, Join):
        return _lower_join(op, registry)

    if isinstance(op, Aggregate):
        node = HashAggregate(
            _lower(op.input, registry), op.group,
            tuple(op.input.schema.positions(op.group)), op.aggregates,
            Frame.index_for(op.input.schema.names))
        node.sublinks = _collect_sublinks(
            tuple(call for _, call in op.aggregates), registry)
        return node

    if isinstance(op, SetOp):
        return SetOperation(op.kind, op.all, _lower(op.left, registry),
                            _lower(op.right, registry), op.left.schema)

    if isinstance(op, Sort):
        node = SortNode(_lower(op.input, registry), op.keys,
                        Frame.index_for(op.input.schema.names))
        node.sublinks = _collect_sublinks(
            tuple(key.expr for key in op.keys), registry)
        return node

    if isinstance(op, Limit):
        return StreamingLimit(_lower(op.input, registry), op.count,
                              op.offset)

    raise ExecutionError(f"cannot lower operator {op!r}")


def _lower_join(op: Join, registry: SubplanRegistry) -> PhysicalOperator:
    left = _lower(op.left, registry)
    right = _lower(op.right, registry)
    right_width = len(op.right.schema)
    index = Frame.index_for(op.schema.names)

    if op.condition == TRUE:
        return NestedLoopJoin(left, right, None, op.kind, right_width,
                              index)

    keys, residual = split_equi_keys(op)
    if keys:
        residual_expr = and_all(residual) if residual else None
        node = HashJoin(left, right, keys, residual_expr, op.kind,
                        right_width, index)
        node.sublinks = _collect_sublinks(tuple(residual), registry)
        return node

    node = NestedLoopJoin(left, right, op.condition, op.kind, right_width,
                          index)
    node.sublinks = _collect_sublinks((op.condition,), registry)
    return node


def _collect_sublinks(exprs: tuple[Expr, ...],
                      registry: SubplanRegistry) -> tuple[SublinkPlan, ...]:
    """Lower and classify every sublink referenced by *exprs*.

    Each sublink's logical query tree is lowered recursively (nested
    sublinks *inside* that query register themselves while it lowers) and
    entered into *registry* keyed by the logical tree's identity — the
    handle the expression evaluator passes to ``run_subquery``.
    """
    found: list[SublinkPlan] = []
    for expr in exprs:
        _walk_sublinks(expr, registry, found)
    return tuple(found)


def _walk_sublinks(expr: Expr, registry: SubplanRegistry,
                   found: list[SublinkPlan]) -> None:
    if isinstance(expr, Sublink):
        existing = registry.get(id(expr.query))
        if existing is None:
            plan = _lower(expr.query, registry)
            cls = SubPlanSublink if is_correlated(expr.query) \
                else InitPlanSublink
            existing = cls(expr, expr.query, plan)
            registry[id(expr.query)] = existing
        found.append(existing)
    for child in expr.children():
        _walk_sublinks(child, registry, found)
