"""Physical lowering — the optimizer's second phase, now cost-based.

The planner is two-phase:

1. **logical rewrite** (:mod:`repro.engine.optimizer`): selection
   pushdown, join-condition extraction and (with a catalog in hand)
   greedy cost-based join ordering over the logical algebra;
2. **physical lowering** (this module): the logical tree is translated
   into an executable :class:`~repro.engine.physical.PhysicalPlan` —
   join algorithms picked, sublinks classified into InitPlans
   (uncorrelated, execute-once) vs SubPlans (correlated, per-outer-row)
   and lowered recursively, limits made streaming.

With a *catalog* the lowering consults the cardinality estimator and the
index registry (:mod:`repro.engine.cost`, :mod:`repro.storage.index`):

* filter conjunctions are re-ordered most-selective-first (cheap,
  sublink-free conjuncts run before expensive sublink probes);
* an equality or range conjunct over an indexed base-table column lowers
  to an :class:`~repro.engine.physical.IndexScan` when the estimated
  probe beats the sequential scan;
* equi-joins choose between :class:`~repro.engine.physical.HashJoin` and
  :class:`~repro.engine.physical.IndexNestedLoopJoin` by estimated cost
  (non-equi conditions still nested-loop);
* every node is annotated with ``est_rows`` / ``est_cost`` for
  ``EXPLAIN`` and the estimated-vs-actual report of ``EXPLAIN ANALYZE``.

Without a catalog the lowering is the previous rule-only translation
(SeqScan + HashJoin-for-equi-keys), so plain unit tests and the
materializing baseline see identical plans to earlier releases.

Lowering remains pure plan construction: the catalog is only *read* (for
statistics and index metadata), no execution state is created.  The
produced plan is what the session's plan cache stores — and because the
session folds the catalog's DDL *and* statistics generations into the
cache key, a plan lowered against stale statistics or a dropped index is
never served again.
"""

from __future__ import annotations

import math

from ..catalog import Catalog
from ..datatypes import SQLType
from ..errors import ExecutionError
from ..expressions.ast import (
    Arith, BoolOp, Cast, Col, Comparison, Const, Expr, FuncCall, Like,
    Sublink, TRUE, and_all, conjuncts_of, walk,
)
from ..expressions.evaluator import Frame
from ..schema import Schema
from ..algebra.operators import (
    Aggregate, BaseRelation, Join, JoinKind, Limit, Operator, Project,
    Select, SetOp, Sort, Values,
)
from ..algebra.properties import is_correlated
from .cost import (
    CardinalityEstimator, FLIP_COMPARISON, HASH_BUILD_COST,
    HASH_PROBE_COST, INDEX_PROBE_COST, NLJ_COMPARE_COST, SORT_FACTOR,
)
from .physical import (
    Filter, HashAggregate, HashJoin, IndexNestedLoopJoin, IndexScan,
    InitPlanSublink, NestedLoopJoin, PhysicalOperator, PhysicalPlan,
    Project as PhysicalProject, SeqScan, SetOperation, SortNode,
    StreamingLimit, SublinkPlan, SubPlanSublink, ValuesScan,
)

SubplanRegistry = dict[int, SublinkPlan]

#: Comparison operators an :class:`IndexScan` can serve.
_INDEXABLE_OPS = ("=", "<", "<=", ">", ">=")


def split_equi_keys(op: Join) -> tuple[list[tuple[int, int]], list[Expr]]:
    """Split the join condition into hashable equality column pairs
    (left position, right position) and residual conjuncts."""
    left_schema = op.left.schema
    right_schema = op.right.schema
    if isinstance(op.condition, BoolOp) and op.condition.op == "and":
        conjuncts = op.condition.items
    else:
        conjuncts = (op.condition,)
    keys: list[tuple[int, int]] = []
    residual: list[Expr] = []
    for part in conjuncts:
        pair = None
        if (isinstance(part, Comparison) and part.op == "="
                and isinstance(part.left, Col) and part.left.level == 0
                and isinstance(part.right, Col)
                and part.right.level == 0):
            a, b = part.left.name, part.right.name
            if a in left_schema and b in right_schema:
                pair = (left_schema.position(a), right_schema.position(b))
            elif b in left_schema and a in right_schema:
                pair = (left_schema.position(b), right_schema.position(a))
        if pair is None:
            residual.append(part)
        else:
            keys.append(pair)
    return keys, residual


def lower_plan(op: Operator, catalog: Catalog | None = None, *,
               use_indexes: bool = True,
               force_nested_loop: bool = False) -> PhysicalPlan:
    """Lower an (already logically optimized) operator tree.

    With *catalog* the lowering is cost-based (see the module docstring);
    without it, rule-only.  ``use_indexes=False`` disables IndexScan /
    IndexNestedLoopJoin selection (plans as if no index existed);
    ``force_nested_loop=True`` lowers every join to a
    :class:`NestedLoopJoin` — a benchmarking hook that lets the smoke
    bench price one join algorithm against another on identical inputs.
    """
    lowerer = _Lowerer(catalog, use_indexes=use_indexes,
                       force_nested_loop=force_nested_loop)
    root = lowerer.lower(op)
    return PhysicalPlan(root, op, op.schema, lowerer.registry)


class _Lowerer:
    """One lowering pass: carries the subplan registry and, when a
    catalog is supplied, the cardinality estimator driving the
    cost-based choices."""

    def __init__(self, catalog: Catalog | None, use_indexes: bool = True,
                 force_nested_loop: bool = False) -> None:
        self.catalog = catalog
        self.use_indexes = use_indexes and catalog is not None
        self.force_nested_loop = force_nested_loop
        self.estimator = None if catalog is None \
            else CardinalityEstimator(catalog)
        self.registry: SubplanRegistry = {}

    # -- dispatch -------------------------------------------------------------

    def lower(self, op: Operator) -> PhysicalOperator:
        if isinstance(op, BaseRelation):
            return self._annotate(
                SeqScan(op.table, op.alias, op.schema.names), op)

        if isinstance(op, Values):
            return self._annotate(ValuesScan(op.rows, op.schema.names), op)

        if isinstance(op, Select):
            return self._lower_select(op)

        if isinstance(op, Project):
            node = PhysicalProject(
                self.lower(op.input), op.items, op.distinct,
                Frame.index_for(op.input.schema.names))
            node.sublinks = self._collect_sublinks(
                tuple(expr for _, expr in op.items))
            return self._annotate(node, op)

        if isinstance(op, Join):
            return self._lower_join(op)

        if isinstance(op, Aggregate):
            node = HashAggregate(
                self.lower(op.input), op.group,
                tuple(op.input.schema.positions(op.group)), op.aggregates,
                Frame.index_for(op.input.schema.names))
            node.sublinks = self._collect_sublinks(
                tuple(call for _, call in op.aggregates))
            return self._annotate(node, op)

        if isinstance(op, SetOp):
            node = SetOperation(op.kind, op.all, self.lower(op.left),
                                self.lower(op.right), op.left.schema)
            return self._annotate(node, op)

        if isinstance(op, Sort):
            node = SortNode(self.lower(op.input), op.keys,
                            Frame.index_for(op.input.schema.names))
            node.sublinks = self._collect_sublinks(
                tuple(key.expr for key in op.keys))
            return self._annotate(node, op)

        if isinstance(op, Limit):
            node = StreamingLimit(self.lower(op.input), op.count,
                                  op.offset)
            return self._annotate(node, op)

        raise ExecutionError(f"cannot lower operator {op!r}")

    # -- selections (conjunct ordering + index scans) -------------------------

    def _lower_select(self, op: Select) -> PhysicalOperator:
        conjuncts = list(conjuncts_of(op.condition))
        if self.estimator is not None and len(conjuncts) > 1:
            conjuncts = self._order_conjuncts(conjuncts, op.input)

        scan: PhysicalOperator | None = None
        if self.use_indexes and isinstance(op.input, BaseRelation):
            scan, conjuncts = self._try_index_scan(op.input, conjuncts)

        child = scan if scan is not None else self.lower(op.input)
        condition = and_all(conjuncts)
        if condition == TRUE:
            # the index conjunct absorbed the whole selection
            return self._annotate(child, op, node_is_scan=scan is not None)
        node = Filter(child, condition,
                      Frame.index_for(op.input.schema.names))
        node.sublinks = self._collect_sublinks((condition,))
        return self._annotate(node, op)

    def _order_conjuncts(self, conjuncts: list[Expr],
                         op_input: Operator) -> list[Expr]:
        """Most-selective first; sublink-bearing conjuncts last on ties
        (they are the expensive ones to evaluate).

        Conjuncts that can raise at evaluation time (division/modulo,
        casts, function calls, sublinks — a scalar sublink raises on
        multi-row results) are never moved forward: SQL's AND
        short-circuits on False, so a cheap guard like ``a <> 0`` must
        keep protecting ``10 / a > 1``.  They run after every safe
        conjunct, in their original relative order — which can only
        *reduce* the rows (and hence errors and sublink probes) they
        see.
        """
        schema = op_input.schema
        flagged = [(position, part, _is_safe_conjunct(part, schema))
                   for position, part in enumerate(conjuncts)]
        safe = [(position, part) for position, part, ok in flagged if ok]
        unsafe = [part for _, part, ok in flagged if not ok]

        def sort_key(indexed: tuple[int, Expr]):
            position, part = indexed
            return (self.estimator.selectivity(part, op_input), position)

        ordered = [part for _, part in sorted(safe, key=sort_key)]
        return ordered + unsafe

    def _try_index_scan(self, base: BaseRelation, conjuncts: list[Expr]
                        ) -> tuple[PhysicalOperator | None, list[Expr]]:
        """Extract the first index-servable conjunct into an IndexScan
        (if the cost model prefers it over the sequential scan).

        With several conjuncts, only a statically type-safe one may be
        extracted: probing the index evaluates the comparison eagerly at
        scan open, and a type-mismatched conjunct that another conjunct
        guards must keep the filter plan's lazy, short-circuited
        evaluation.  A *sole* conjunct has no guards to bypass, so
        dynamically-typed keys (``?`` parameters, correlated outer
        columns) still get their index probe — the prepared point-lookup
        and correlated-sublink fast paths.
        """
        sole = len(conjuncts) == 1
        for position, part in enumerate(conjuncts):
            if not sole and not _is_safe_conjunct(part, base.schema):
                continue
            lookup = self._index_lookup(base, part)
            if lookup is None:
                continue
            column, stored_position, op, key_expr, kind = lookup
            table_rows = self.estimator.table_rows(base.table)
            fraction = self.estimator.selectivity(part, base)
            probe_cost = INDEX_PROBE_COST + table_rows * fraction
            if probe_cost >= table_rows and table_rows > 0:
                continue   # the scan is no worse; keep plans simple
            scan = IndexScan(base.table, base.alias, base.schema.names,
                             column, stored_position, op, key_expr, kind)
            scan.est_rows = table_rows * fraction
            scan.est_cost = probe_cost
            remaining = conjuncts[:position] + conjuncts[position + 1:]
            return scan, remaining
        return None, conjuncts

    def _index_lookup(self, base: BaseRelation, part: Expr) -> "tuple[str, int, str, Expr, str] | None":
        """``(column, position, op, key expression, index kind)`` if
        *part* is an index-servable comparison over *base*, else None."""
        if not isinstance(part, Comparison) or \
                part.op not in _INDEXABLE_OPS:
            return None
        candidates = (
            (part.left, part.right, part.op),
            (part.right, part.left,
             FLIP_COMPARISON.get(part.op, part.op)),
        )
        for col_side, key_side, op in candidates:
            if not (isinstance(col_side, Col) and col_side.level == 0
                    and col_side.name in base.schema):
                continue
            if not _is_outer_constant(key_side) or _may_raise(key_side):
                # The key is evaluated eagerly at scan open; a
                # raise-capable expression (1/0, casts, ...) must keep
                # the lazy, guarded evaluation of the filter plan.
                continue
            position = base.schema.position(col_side.name)
            stored = self.catalog.get(base.table).schema
            column = stored[position].name
            kinds = None if op == "=" else ("sorted",)
            index = self.catalog.index_for(base.table, column, kinds)
            if index is None:
                continue
            # The key is evaluated *outside* the scan's own scope (no row
            # frame is pushed), so correlated references — level >= 1
            # inside the selection — drop one level.
            from ..algebra.trees import shift_correlation_expr
            key_expr = shift_correlation_expr(key_side, -1, boundary=1)
            return column, position, op, key_expr, index.kind
        return None

    # -- joins ----------------------------------------------------------------

    def _lower_join(self, op: Join) -> PhysicalOperator:
        right_width = len(op.right.schema)
        index = Frame.index_for(op.schema.names)

        if self.force_nested_loop:
            condition = None if op.condition == TRUE else op.condition
            node = NestedLoopJoin(self.lower(op.left), self.lower(op.right),
                                  condition, op.kind, right_width, index)
            if condition is not None:
                node.sublinks = self._collect_sublinks((condition,))
            return self._annotate(node, op)

        if op.condition == TRUE:
            node = NestedLoopJoin(self.lower(op.left), self.lower(op.right),
                                  None, op.kind, right_width, index)
            return self._annotate(node, op)

        keys, residual = split_equi_keys(op)
        if keys:
            index_join = self._try_index_join(op, keys, residual, index)
            if index_join is not None:
                return index_join
            residual_expr = and_all(residual) if residual else None
            node = HashJoin(self.lower(op.left), self.lower(op.right),
                            keys, residual_expr, op.kind, right_width,
                            index)
            node.sublinks = self._collect_sublinks(tuple(residual))
            return self._annotate(node, op)

        node = NestedLoopJoin(self.lower(op.left), self.lower(op.right),
                              op.condition, op.kind, right_width, index)
        node.sublinks = self._collect_sublinks((op.condition,))
        return self._annotate(node, op)

    def _try_index_join(self, op: Join, keys: list[tuple[int, int]],
                        residual: list[Expr],
                        index: dict[str, int]) -> PhysicalOperator | None:
        """An IndexNestedLoopJoin over *op*, when the right side is an
        indexed base table and the estimated probes beat the hash join.

        Only single-key equi-joins qualify: a second key pair would have
        to become a comparison residual, which raises on type-mismatched
        columns where the hash table's composite keys simply never match.
        """
        if not self.use_indexes or not isinstance(op.right, BaseRelation):
            return None
        if op.kind not in (JoinKind.INNER, JoinKind.LEFT):
            return None
        if len(keys) != 1:
            return None
        base = op.right
        stored = self.catalog.get(base.table).schema
        left_position, right_position = keys[0]
        column = stored[right_position].name
        if self.catalog.index_for(base.table, column) is None:
            return None

        left_rows = self.estimator.estimate(op.left)
        right_rows = self.estimator.estimate(op.right)
        matches = self.estimator.equality_matches(base.table, column)
        probe_cost = left_rows * (INDEX_PROBE_COST + matches)
        hash_cost = right_rows * HASH_BUILD_COST \
            + left_rows * HASH_PROBE_COST
        if probe_cost >= hash_cost:
            return None

        residual_expr = and_all(residual) if residual else None
        node = IndexNestedLoopJoin(
            self.lower(op.left), base.table, base.alias,
            base.schema.names, left_position, column, right_position,
            residual_expr, op.kind, index)
        node.sublinks = self._collect_sublinks(tuple(residual))
        node.est_rows = self.estimator.estimate(op)
        node.est_cost = (node.left.est_cost or 0.0) + probe_cost \
            + (node.est_rows or 0.0)
        return node

    # -- estimates -------------------------------------------------------------

    def _annotate(self, node: PhysicalOperator, op: Operator,
                  node_is_scan: bool = False) -> PhysicalOperator:
        """Attach ``est_rows`` / ``est_cost`` (inclusive) to *node*."""
        if self.estimator is None:
            return node
        rows = self.estimator.estimate(op)
        node.est_rows = rows
        if node_is_scan and isinstance(node, IndexScan):
            # an IndexScan that absorbed the whole selection: its own
            # estimate (set at construction) already prices the probe,
            # but the selection's estimate is the tighter output bound
            node.est_rows = min(node.est_rows or rows, rows)
            return node
        node.est_cost = self._cost(node, rows)
        return node

    def _cost(self, node: PhysicalOperator, rows: float) -> float:
        children = node.children()
        children_cost = sum(child.est_cost or 0.0 for child in children)
        child_rows = [child.est_rows or 0.0 for child in children]
        local = rows
        if isinstance(node, Filter):
            local = child_rows[0] if child_rows else rows
        elif isinstance(node, PhysicalProject):
            local = (child_rows[0] if child_rows else rows) + rows
        elif isinstance(node, HashJoin):
            left_rows, right_rows = child_rows
            local = right_rows * HASH_BUILD_COST \
                + left_rows * HASH_PROBE_COST + rows
        elif isinstance(node, NestedLoopJoin):
            left_rows, right_rows = child_rows
            local = left_rows * right_rows * NLJ_COMPARE_COST + rows
        elif isinstance(node, HashAggregate):
            local = (child_rows[0] if child_rows else 0.0) + rows
        elif isinstance(node, SortNode):
            local = SORT_FACTOR * rows * math.log2(rows + 2.0)
        return children_cost + local

    # -- sublinks -------------------------------------------------------------

    def _collect_sublinks(self, exprs: tuple[Expr, ...]
                          ) -> tuple[SublinkPlan, ...]:
        """Lower and classify every sublink referenced by *exprs*.

        Each sublink's logical query tree is lowered recursively (nested
        sublinks *inside* that query register themselves while it lowers)
        and entered into the registry keyed by the logical tree's identity
        — the handle the expression evaluator passes to ``run_subquery``.
        """
        found: list[SublinkPlan] = []
        for expr in exprs:
            self._walk_sublinks(expr, found)
        return tuple(found)

    def _walk_sublinks(self, expr: Expr,
                       found: list[SublinkPlan]) -> None:
        if isinstance(expr, Sublink):
            existing = self.registry.get(id(expr.query))
            if existing is None:
                plan = self.lower(expr.query)
                cls = SubPlanSublink if is_correlated(expr.query) \
                    else InitPlanSublink
                existing = cls(expr, expr.query, plan)
                self.registry[id(expr.query)] = existing
            found.append(existing)
        for child in expr.children():
            self._walk_sublinks(child, found)


def _may_raise(expr: Expr) -> bool:
    """True iff evaluating *expr* can raise on some row: division or
    modulo (by zero), casts (conversion errors), function calls and
    sublinks (a scalar sublink raises on a multi-row result, and a
    correlated query evaluates its own expressions per outer row)."""
    for node in walk(expr, into_sublinks=True):
        if isinstance(node, Arith) and node.op in ("/", "%"):
            return True
        if isinstance(node, (Cast, FuncCall, Sublink)):
            return True
    return False


#: SQLType -> static comparison family (None = not statically known).
_TYPE_FAMILY = {
    SQLType.INTEGER: "num", SQLType.FLOAT: "num", SQLType.TEXT: "text",
    SQLType.BOOLEAN: "bool", SQLType.DATE: "date",
}


def _static_family(expr: Expr, schema: Schema) -> str | None:
    """The comparison-type family of *expr*, if statically known:
    ``"null"`` for a literal NULL (comparisons with NULL never raise),
    a :data:`_TYPE_FAMILY` tag for typed columns and literals, None when
    unknown (untyped column, parameter, computed expression)."""
    if isinstance(expr, Const):
        value = expr.value
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, (int, float)):
            return "num"
        if isinstance(value, str):
            return "text"
        return None
    if isinstance(expr, Col) and expr.level == 0 and expr.name in schema:
        return _TYPE_FAMILY.get(schema[expr.name].type)
    return None


def _is_safe_conjunct(expr: Expr, schema: Schema) -> bool:
    """True iff *expr* provably cannot raise, so reordering it ahead of
    other conjuncts cannot surface an error the written AND order would
    have short-circuited away.  Comparisons and LIKE raise on operands
    of incompatible types, so they are only safe when both sides'
    static type families are known to match (NULL is safe with
    anything — SQL comparison with NULL is unknown, never an error)."""
    if _may_raise(expr):
        return False
    for node in walk(expr):
        if isinstance(node, Comparison):
            left = _static_family(node.left, schema)
            right = _static_family(node.right, schema)
            if left is None or right is None:
                return False
            if "null" not in (left, right) and left != right:
                return False
        elif isinstance(node, Like):
            for side in (node.operand, node.pattern):
                if _static_family(side, schema) not in ("text", "null"):
                    return False
    return True


def _is_outer_constant(expr: Expr) -> bool:
    """True iff *expr* is evaluable without the scan's own row: no
    sublinks, no level-0 column references (constants, ``?`` parameters
    and correlated outer columns all qualify)."""
    for node in walk(expr):
        if isinstance(node, Sublink):
            return False
        if isinstance(node, Col) and node.level == 0:
            return False
    return True
