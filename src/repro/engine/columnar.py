"""Columnar batches: the unit of data flow in the vectorized engine.

A :class:`ColumnBatch` carries one typed vector per output column plus a
*selection vector* — the MonetDB/VectorWise execution model.  Filters
refine the selection (an index list) instead of copying survivors, so a
Filter → Project → HashJoin chain over one scan never re-materializes
rows; transposition back to tuples happens only at the sink (or at a
row-fallback bridge).

Column *kinds* mirror the snapshot codec's column layouts
(:mod:`repro.storage.codec`):

=========  ====================================================
``num``    ints and/or floats, never ``bool`` (codec INT64/FLOAT64)
``text``   ``str`` values (codec TEXT)
``bool``   ``bool`` values
``any``    mixed / other / unknown (codec GENERIC)
=========  ====================================================

The kind plus the ``has_nulls`` flag let vector kernels pick a fast path
(bare comprehensions over comparable values) with *certainty* — a column
claiming ``num``/``has_nulls=False`` must hold only non-null non-bool
numbers, so SQL comparison against a numeric constant can never raise or
yield unknown.  When in doubt, ``any``/``has_nulls=True`` is always
correct: kernels then run the generic three-valued path.

The module also keeps a small engine-wide cache of columnarized base
tables keyed by the identity of a relation's ``rows`` list.  Commits
swap ``Relation`` objects wholesale (so a new version gets a new list
identity), but ``Relation.insert``/``extend`` mutate the list in place —
validity therefore checks both identity *and* length.  The snapshot
loader seeds the cache straight from the codec's decoded column vectors,
so reopening a durable table costs no transposition at all.
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict
from typing import Any, Iterable, Sequence

__all__ = [
    "Column", "ColumnBatch", "column_from_values", "seed_columns",
    "table_columns",
]


class Column:
    """One typed vector: a plain list of values plus kind metadata."""

    __slots__ = ("values", "kind", "has_nulls")

    def __init__(self, values: list, kind: str = "any",
                 has_nulls: bool = True) -> None:
        self.values = values
        self.kind = kind
        self.has_nulls = has_nulls

    def gather(self, indices: Iterable[int]) -> "Column":
        """A dense copy of this column at *indices* (kind preserved)."""
        values = self.values
        return Column([values[i] for i in indices],
                      self.kind, self.has_nulls)

    def __repr__(self) -> str:
        return (f"Column({len(self.values)} value(s), kind={self.kind!r}, "
                f"has_nulls={self.has_nulls})")


def column_from_values(values: list) -> Column:
    """Build a :class:`Column`, inferring kind/``has_nulls`` in one pass."""
    kind: str | None = None
    has_nulls = False
    for value in values:
        if value is None:
            has_nulls = True
            continue
        if isinstance(value, bool):
            this = "bool"
        elif isinstance(value, (int, float)):
            this = "num"
        elif isinstance(value, str):
            this = "text"
        else:
            kind = "any"
            break
        if kind is None:
            kind = this
        elif kind != this:
            kind = "any"
            break
    if kind == "any":
        # the scan stopped early; nulls past the break must stay visible
        has_nulls = True
    return Column(values, kind if kind is not None else "any", has_nulls)


class ColumnBatch:
    """A batch of rows in columnar form: shared column vectors plus a
    selection vector (``range`` straight off a scan — zero allocation —
    or an index list after filtering).  Length/truthiness follow the
    *selection*, so the engine's batch accounting works unchanged."""

    __slots__ = ("columns", "sel")

    def __init__(self, columns: list[Column], sel: "range | list[int]") -> None:
        self.columns = columns
        self.sel = sel

    def __len__(self) -> int:
        return len(self.sel)

    def __bool__(self) -> bool:
        return len(self.sel) > 0

    @property
    def width(self) -> int:
        return len(self.columns)

    def to_rows(self) -> list[tuple]:
        """Transpose the selected rows to tuples (the fallback bridge and
        the sink's materialization)."""
        sel = self.sel
        columns = self.columns
        if not columns:
            return [() for _ in sel]
        if isinstance(sel, range) and sel.step == 1:
            start, stop = sel.start, sel.stop
            if start == 0 and stop == len(columns[0].values):
                return list(zip(*[c.values for c in columns]))
            return list(zip(*[c.values[start:stop] for c in columns]))
        return list(zip(*[[c.values[i] for i in sel] for c in columns]))

    @classmethod
    def from_rows(cls, rows: Sequence[tuple],
                  width: int | None = None) -> "ColumnBatch":
        """Columnarize a row batch (the rows → columns bridge)."""
        if not rows:
            return cls([Column([], "any", True)
                        for _ in range(width or 0)], range(0))
        if width is None:
            width = len(rows[0])
        if width == 0:
            return cls([], range(len(rows)))
        columns = [column_from_values(list(values))
                   for values in zip(*rows)]
        return cls(columns, range(len(rows)))

    def dense(self) -> "ColumnBatch":
        """A copy with the selection applied (``sel`` becomes a full
        range); no-op when already dense."""
        sel = self.sel
        if isinstance(sel, range) and sel.start == 0 and sel.step == 1 \
                and (not self.columns
                     or sel.stop == len(self.columns[0].values)):
            return self
        return ColumnBatch([c.gather(sel) for c in self.columns],
                           range(len(sel)))

    def __repr__(self) -> str:
        return (f"ColumnBatch({self.width} column(s), "
                f"{len(self.sel)} selected row(s))")


# ---------------------------------------------------------------------------
# Base-table columnarization cache
# ---------------------------------------------------------------------------
#
# Keyed by ``id(rows)``: the catalog's copy-on-write commit protocol swaps
# Relation objects (fresh rows list => fresh id), while in-place
# ``insert``/``extend`` grow the *same* list — hence the identity AND
# length validation.  A shrunk-then-regrown list of identical length with
# different content is impossible through the Relation API (deletes go
# through wholesale swaps).

_CACHE_CAP = 32
_table_cache: "OrderedDict[int, tuple[list, int, list[Column]]]" = \
    OrderedDict()
_cache_lock = threading.Lock()


def _compact(column: Column) -> Column:
    """Re-back a homogeneous NULL-free ``num`` column with a stdlib
    ``array`` (int64 ``'q'`` / float64 ``'d'``) instead of a list of
    boxed objects — 8 bytes per value and better locality for the cached
    base-table vectors the vector kernels iterate hottest.  Mixed
    int/float columns, out-of-int64 values and anything nullable keep
    the list (an ``array`` cannot hold them without changing the values,
    and SQL semantics distinguish ``1`` from ``1.0``).  Indexing an
    ``array`` yields plain ints/floats, so kernels and transposition are
    oblivious to the backing."""
    values = column.values
    if column.kind != "num" or column.has_nulls or not values \
            or not isinstance(values, list):
        return column
    try:
        return Column(array("q", values), "num", False)
    except (TypeError, OverflowError):
        pass
    if all(type(value) is float for value in values):
        return Column(array("d", values), "num", False)
    return column


def table_columns(rows: list, width: int) -> list[Column]:
    """The columnar image of a base table's ``rows`` list, cached
    engine-wide so repeated scans of a hot table transpose once."""
    key = id(rows)
    with _cache_lock:
        entry = _table_cache.get(key)
        if entry is not None and entry[0] is rows \
                and entry[1] == len(rows):
            _table_cache.move_to_end(key)
            return entry[2]
    if rows:
        columns = [_compact(column_from_values(list(values)))
                   for values in zip(*rows)]
        # rows narrower than the schema cannot happen for catalog tables;
        # guard anyway so a short row surfaces as a normal IndexError
        if len(columns) < width:
            columns += [Column([None] * len(rows), "any", True)
                        for _ in range(width - len(columns))]
    else:
        columns = [Column([], "any", True) for _ in range(width)]
    with _cache_lock:
        _table_cache[key] = (rows, len(rows), columns)
        _table_cache.move_to_end(key)
        while len(_table_cache) > _CACHE_CAP:
            _table_cache.popitem(last=False)
    return columns


def seed_columns(rows: list,
                 decoded: Sequence[tuple[list, str, bool]]) -> None:
    """Seed the cache from the snapshot codec's decoded column vectors
    (``(values, kind, has_nulls)`` per column) — a reopened durable table
    scans columnar from its first query, with no transposition pass."""
    columns = []
    for values, kind, has_nulls in decoded:
        if kind == "any":
            # GENERIC blocks hold bools / big ints / mixed values; one
            # inference pass may still recover a fast-path kind (bool)
            columns.append(column_from_values(values))
        else:
            columns.append(_compact(Column(values, kind, has_nulls)))
    with _cache_lock:
        _table_cache[id(rows)] = (rows, len(rows), columns)
        _table_cache.move_to_end(id(rows))
        while len(_table_cache) > _CACHE_CAP:
            _table_cache.popitem(last=False)


def clear_cache() -> None:
    """Drop every cached columnarization (tests and benchmarks)."""
    with _cache_lock:
        _table_cache.clear()
