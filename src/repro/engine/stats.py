"""Execution counters shared by both engines.

:class:`ExecutionStats` is the per-statement counter block surfaced
through :attr:`repro.api.Connection.last_stats`; :class:`NodeStats` holds
the per-physical-node row/batch/time counters the pipelined engine fills
in for ``EXPLAIN ANALYZE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .physical import PhysicalOperator


@dataclass
class NodeStats:
    """Per-physical-operator counters of one execution.

    ``time_ns`` is *inclusive* wall-clock time (children included), as in
    PostgreSQL's ``EXPLAIN ANALYZE``; a node that is re-opened per outer
    row (a correlated SubPlan) accumulates across invocations.
    ``child_ns`` is the portion of ``time_ns`` spent inside the node's
    direct children, so ``time_ns - child_ns`` is the node's own (self)
    time — ``EXPLAIN ANALYZE`` reports both, and the per-operator
    aggregation uses self time so a pipeline's total is not counted once
    per enclosing operator.
    """

    rows: int = 0
    batches: int = 0
    time_ns: int = 0
    child_ns: int = 0
    loops: int = 0

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    @property
    def self_ms(self) -> float:
        return max(self.time_ns - self.child_ns, 0) / 1e6


@dataclass
class ExecutionStats:
    """Counters exposed for benchmarking and the ablation study.

    ``plan_cache_hits`` / ``plan_cache_misses`` are filled in by the
    session layer (:class:`repro.api.Connection`), which owns the plan
    cache; they report the cache's cumulative totals as of this execution.

    ``node_stats`` maps ``id(physical node)`` to :class:`NodeStats` and is
    only populated by the pipelined engine when ``collect_stats`` is on;
    ``operator_timings`` aggregates per-node *self* times (inclusive time
    minus time spent in direct children) by operator class name, in
    milliseconds — summing the map approximates total execution time
    instead of multiply counting every pipeline under its ancestors.
    """

    rows_produced: int = 0
    batches_produced: int = 0
    sublink_executions: int = 0
    sublink_cache_hits: int = 0
    hash_joins: int = 0
    nested_loop_joins: int = 0
    index_nl_joins: int = 0
    index_scans: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Filled in by the vectorized engine: how many plan nodes ran on
    #: columnar vector kernels vs stayed on the row path (bridges not
    #: counted either way).  Both stay 0 under the other engines.
    vectorized_nodes: int = 0
    row_fallback_nodes: int = 0
    #: Filled in by the Gather exchange operator: fan-outs that actually
    #: ran on the worker pool, the widest fan-out of this execution, and
    #: Gathers that fell back to their serial subtree (pool unavailable
    #: or the live input shrank below the parallel threshold).
    parallel_fanouts: int = 0
    parallel_workers: int = 0
    parallel_fallbacks: int = 0
    operator_evals: dict[str, int] = field(default_factory=dict)
    operator_timings: dict[str, float] = field(default_factory=dict)
    node_stats: dict[int, NodeStats] = field(default_factory=dict)

    def bump(self, op: PhysicalOperator) -> None:
        name = type(op).__name__
        self.operator_evals[name] = self.operator_evals.get(name, 0) + 1

    def node(self, node: PhysicalOperator) -> NodeStats:
        """The :class:`NodeStats` entry for a physical *node*."""
        key = id(node)
        entry = self.node_stats.get(key)
        if entry is None:
            entry = NodeStats()
            self.node_stats[key] = entry
        return entry

    def record_timing(self, name: str, entry: NodeStats) -> None:
        """Fold one node's *self* time into ``operator_timings``."""
        self.operator_timings[name] = \
            self.operator_timings.get(name, 0.0) + entry.self_ms
