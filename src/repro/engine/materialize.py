"""The materializing, correlation-aware reference engine.

This is the original executor: it interprets the *logical* algebra tree
directly and materializes each operator's full output as a list of row
tuples.  It is kept (selectable via ``SessionConfig.engine =
"materializing"``) as

* the baseline the pipelined engine is benchmarked against
  (``python -m repro.bench --smoke`` reports the engine speedup), and
* the reference implementation the engine-parity tests compare the
  pipelined results to.

Design notes relevant to reproducing the paper's performance results:

* **Uncorrelated sublinks are evaluated once** per engine instance and
  cached by operator identity — PostgreSQL's *InitPlan* behaviour, which
  the Left/Move strategies rely on.  Correlated sublinks are re-executed
  for every outer row (PostgreSQL's parameterized *SubPlan*), which is
  what makes the Gen strategy expensive — exactly the effect Figure 6
  shows.

* **Equi-joins get a hash fast path.**  PostgreSQL hash-joins the plain
  equality join produced by the Unn strategy, while the disjunctive
  ``Jsub`` conditions of Left/Move force nested loops.  Mirroring that
  split is what reproduces the order-of-magnitude gap of Figures 7-9.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..catalog import Catalog
from ..datatypes import is_true
from ..errors import ExecutionError
from ..expressions.ast import Expr, TRUE
from ..expressions.evaluator import EvalContext, Frame, evaluate
from ..algebra.operators import (
    Aggregate, BaseRelation, Join, JoinKind, Limit, Operator, Project,
    Select, SetOp, SetOpKind, Sort, SortKey, Values,
)
from ..algebra.properties import is_correlated
from ..expressions.aggregates import make_accumulator
from ..relation import Relation
from .lowering import split_equi_keys
from .stats import ExecutionStats

Frames = tuple[Frame, ...]


class MaterializingEngine:
    """Evaluates one logical algebra tree, fully materializing every
    operator's output; create a fresh instance per statement."""

    def __init__(self, catalog: Catalog, compile_expressions: bool,
                 collect_stats: bool, stats: ExecutionStats,
                 compiled_cache: dict[int, Any] | None = None) -> None:
        self.catalog = catalog
        self.compile_expressions = compile_expressions
        self.collect_stats = collect_stats
        self.stats = stats
        self._params: tuple = ()
        self._subquery_cache: dict[int, list[tuple]] = {}
        self._correlated: dict[int, bool] = {}
        self._compiled: dict[int, Any] = \
            compiled_cache if compiled_cache is not None else {}

    def _evaluator(self, expr: Expr) -> "Callable[[dict], Any]":
        """A callable ctx -> value for *expr*: compiled (cached by node
        identity) or the tree-walking interpreter per the ablation flag."""
        if not self.compile_expressions:
            return lambda ctx, expr=expr: evaluate(expr, ctx)
        key = id(expr)
        compiled = self._compiled.get(key)
        if compiled is None:
            from ..expressions.compiler import compile_expr
            compiled = compile_expr(expr)
            self._compiled[key] = compiled
        return compiled

    # -- public API ----------------------------------------------------------

    def execute(self, op: Operator, params: Iterable[Any] = ()) -> Relation:
        """Run *op* and return its output relation.

        *params* are the values bound to the plan's ``?`` placeholders
        (:class:`~repro.expressions.ast.Param` nodes), visible to every
        expression evaluated during this execution.
        """
        schema = op.schema
        self._params = tuple(params)
        rows = self._eval(op, ())
        return Relation.from_trusted_rows(schema, list(rows))

    # -- SubqueryRunner protocol (sublink evaluation hook) --------------------

    def run_subquery(self, query: Operator, frames: Frames) -> list[tuple]:
        """Execute a sublink query with *frames* visible as outer rows."""
        key = id(query)
        correlated = self._correlated.get(key)
        if correlated is None:
            correlated = is_correlated(query)
            self._correlated[key] = correlated
        if not correlated:
            cached = self._subquery_cache.get(key)
            if cached is not None:
                self.stats.sublink_cache_hits += 1
                return cached
            self.stats.sublink_executions += 1
            rows = self._eval(query, ())
            self._subquery_cache[key] = rows
            return rows
        self.stats.sublink_executions += 1
        return self._eval(query, frames)

    # -- evaluation ------------------------------------------------------------

    def _eval(self, op: Operator, frames: Frames) -> list[tuple]:
        if self.collect_stats:
            self.stats.bump(op)
        if isinstance(op, BaseRelation):
            rows = self.catalog.get(op.table).rows
        elif isinstance(op, Values):
            rows = op.rows
        elif isinstance(op, Project):
            rows = self._eval_project(op, frames)
        elif isinstance(op, Select):
            rows = self._eval_select(op, frames)
        elif isinstance(op, Join):
            rows = self._eval_join(op, frames)
        elif isinstance(op, Aggregate):
            rows = self._eval_aggregate(op, frames)
        elif isinstance(op, SetOp):
            rows = self._eval_setop(op, frames)
        elif isinstance(op, Sort):
            rows = self._eval_sort(op, frames)
        elif isinstance(op, Limit):
            input_rows = self._eval(op.input, frames)
            stop = None if op.count is None else op.offset + op.count
            rows = input_rows[op.offset:stop]
        else:
            raise ExecutionError(f"cannot execute operator {op!r}")
        self.stats.rows_produced += len(rows)
        return rows

    def _context(self, frames: Frames, index: dict[str, int],
                 row: tuple) -> EvalContext:
        return EvalContext((*frames, Frame(index, row)), self, self._params)

    def _eval_project(self, op: Project, frames: Frames) -> list[tuple]:
        input_rows = self._eval(op.input, frames)
        index = Frame.index_for(op.input.schema.names)
        exprs = [self._evaluator(expr) for _, expr in op.items]
        out = []
        for row in input_rows:
            ctx = self._context(frames, index, row)
            out.append(tuple(expr(ctx) for expr in exprs))
        if op.distinct:
            out = list(dict.fromkeys(out))
        return out

    def _eval_select(self, op: Select, frames: Frames) -> list[tuple]:
        input_rows = self._eval(op.input, frames)
        index = Frame.index_for(op.input.schema.names)
        condition = self._evaluator(op.condition)
        out = []
        for row in input_rows:
            ctx = self._context(frames, index, row)
            if is_true(condition(ctx)):
                out.append(row)
        return out

    # -- joins -------------------------------------------------------------

    def _eval_join(self, op: Join, frames: Frames) -> list[tuple]:
        left_rows = self._eval(op.left, frames)
        right_rows = self._eval(op.right, frames)
        right_width = len(op.right.schema)
        index = Frame.index_for(op.schema.names)
        out: list[tuple] = []

        if op.condition == TRUE:
            if op.kind == JoinKind.LEFT and not right_rows:
                null_pad = (None,) * right_width
                return [left + null_pad for left in left_rows]
            return [left + right for left in left_rows
                    for right in right_rows]

        keys, residual = split_equi_keys(op)
        if keys:
            return self._hash_join(op, frames, left_rows, right_rows,
                                   keys, residual, index, right_width)

        self.stats.nested_loop_joins += 1
        condition = self._evaluator(op.condition)
        null_pad = (None,) * right_width
        for left in left_rows:
            matched = False
            for right in right_rows:
                combined = left + right
                ctx = self._context(frames, index, combined)
                if is_true(condition(ctx)):
                    out.append(combined)
                    matched = True
            if op.kind == JoinKind.LEFT and not matched:
                out.append(left + null_pad)
        return out

    def _hash_join(self, op: Join, frames: Frames, left_rows: list[tuple],
                   right_rows: list[tuple], keys: list[tuple[int, int]],
                   residual: list[Expr], index: dict[str, int],
                   right_width: int) -> list[tuple]:
        self.stats.hash_joins += 1
        table: dict[tuple, list[tuple]] = {}
        right_positions = [r for _, r in keys]
        left_positions = [l for l, _ in keys]
        for right in right_rows:
            key = tuple(right[p] for p in right_positions)
            if any(v is None for v in key):
                continue  # NULL never equi-joins
            table.setdefault(key, []).append(right)
        out: list[tuple] = []
        null_pad = (None,) * right_width
        residual_fns = [self._evaluator(part) for part in residual]
        for left in left_rows:
            key = tuple(left[p] for p in left_positions)
            matched = False
            if not any(v is None for v in key):
                for right in table.get(key, ()):
                    combined = left + right
                    if residual_fns:
                        ctx = self._context(frames, index, combined)
                        if not all(is_true(part(ctx))
                                   for part in residual_fns):
                            continue
                    out.append(combined)
                    matched = True
            if op.kind == JoinKind.LEFT and not matched:
                out.append(left + null_pad)
        return out

    # -- aggregation ---------------------------------------------------------

    def _eval_aggregate(self, op: Aggregate, frames: Frames) -> list[tuple]:
        input_rows = self._eval(op.input, frames)
        index = Frame.index_for(op.input.schema.names)
        group_positions = op.input.schema.positions(op.group)
        arg_fns = [None if call.arg is None else self._evaluator(call.arg)
                   for _, call in op.aggregates]
        groups: dict[tuple, list] = {}
        for row in input_rows:
            key = tuple(row[p] for p in group_positions)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    make_accumulator(call.name, star=call.arg is None,
                                     distinct=call.distinct)
                    for _, call in op.aggregates]
                groups[key] = accumulators
            ctx = None
            for arg_fn, accumulator in zip(arg_fns, accumulators):
                if arg_fn is None:
                    accumulator.add(1)
                    continue
                if ctx is None:
                    ctx = self._context(frames, index, row)
                accumulator.add(arg_fn(ctx))
        if not groups and not op.group:
            accumulators = [
                make_accumulator(call.name, star=call.arg is None,
                                 distinct=call.distinct)
                for _, call in op.aggregates]
            groups[()] = accumulators
        return [key + tuple(acc.result() for acc in accumulators)
                for key, accumulators in groups.items()]

    # -- set operations --------------------------------------------------------

    def _eval_setop(self, op: SetOp, frames: Frames) -> list[tuple]:
        left = Relation(op.left.schema, ())
        left.rows = self._eval(op.left, frames)
        right = Relation(op.left.schema, ())
        right.rows = [tuple(row) for row in self._eval(op.right, frames)]
        if op.kind == SetOpKind.UNION:
            result = left.bag_union(right) if op.all else \
                left.set_union(right)
        elif op.kind == SetOpKind.INTERSECT:
            result = left.bag_intersect(right) if op.all else \
                left.set_intersect(right)
        else:
            result = left.bag_difference(right) if op.all else \
                left.set_difference(right)
        return result.rows

    # -- ordering ----------------------------------------------------------------

    def _eval_sort(self, op: Sort, frames: Frames) -> list[tuple]:
        rows = list(self._eval(op.input, frames))
        index = Frame.index_for(op.input.schema.names)
        sort_rows(rows, op.keys, frames, index, self, self._params)
        return rows


def sort_rows(rows: list[tuple], keys: Sequence[SortKey], frames: Frames,
              index: dict[str, int], runner: Any, params: tuple) -> None:
    """In-place multi-key sort with SQL NULL ordering (NULLs first
    ascending, last descending); shared by both engines."""
    for key in reversed(keys):
        def eval_key(row: tuple, key=key):
            return evaluate(
                key.expr,
                EvalContext((*frames, Frame(index, row)), runner, params))

        if key.ascending:
            rows.sort(key=lambda row, eval_key=eval_key: _asc_key(
                eval_key(row)))
        else:
            rows.sort(key=lambda row, eval_key=eval_key: _desc_key(
                eval_key(row)))


def _asc_key(value: Any) -> tuple:
    return (value is not None, value)


class _DescWrapper:
    """Inverts comparison order for DESC sort keys (NULLs sort last)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_DescWrapper") -> bool:
        if self.value is None:
            return False          # NULL is never smaller: ends up last
        if other.value is None:
            return True
        return self.value > other.value


def _desc_key(value: Any) -> _DescWrapper:
    return _DescWrapper(value)
