"""Execution engine: evaluates algebra trees over a catalog."""

from .executor import ExecutionStats, Executor

__all__ = ["ExecutionStats", "Executor"]
