"""Execution engine: evaluates algebra trees over a catalog.

Planning is two-phase — the logical rewrite (:mod:`.optimizer`) followed
by physical lowering (:mod:`.lowering`) into the batched operator tree of
:mod:`.physical` — and execution is pipelined and vectorized
(:mod:`.pipeline`), with the original materializing interpreter
(:mod:`.materialize`) kept as a selectable baseline.
"""

from .cost import CardinalityEstimator
from .executor import ENGINES, Executor
from .stats import ExecutionStats, NodeStats

__all__ = ["CardinalityEstimator", "ENGINES", "ExecutionStats",
           "Executor", "NodeStats"]
