"""The execution facade.

:class:`Executor` keeps the one-statement execution surface the rest of
the library (and its tests) program against, and dispatches to one of two
engines:

* ``"pipelined"`` (the default) — two-phase planning (logical rewrite +
  physical lowering) feeding the vectorized batch pipeline of
  :mod:`repro.engine.pipeline`;
* ``"vectorized"`` — the pipelined engine with columnar
  :class:`~repro.engine.columnar.ColumnBatch` data flow and whole-column
  expression kernels (:mod:`repro.engine.vectorized`), falling back to
  row operators per node where the vector compiler cannot help;
* ``"materializing"`` — the original tree-walking interpreter
  (:mod:`repro.engine.materialize`), kept as the benchmark baseline and
  the parity-test reference.

``optimize=True`` (the default) runs the logical optimizer pass
(selection pushdown / join extraction) before execution — the engine's
stand-in for PostgreSQL's planner, without which the cross-product shapes
produced by the analyzer and the rewrite rules would dominate every
measurement.  Disable it for the ablation benchmark.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator

if TYPE_CHECKING:
    from ..api.config import SessionConfig
    from .physical import PhysicalPlan

from ..catalog import Catalog
from ..algebra.operators import Operator
from ..relation import Relation
from .stats import ExecutionStats

#: Engine names accepted by ``SessionConfig.engine`` / ``Executor``.
ENGINES = ("pipelined", "vectorized", "materializing")


class Executor:
    """Evaluates one algebra tree; create a fresh instance per statement.

    *config* is a :class:`repro.api.SessionConfig`; it supplies the
    ``optimize`` / ``compile_expressions`` / ``engine`` / ``batch_size``
    defaults when the explicit arguments are None.  *compiled_cache* lets
    a cached plan share its compiled-expression closures across
    executions of the materializing engine (the pipelined engine caches
    compiled batch closures on the physical nodes themselves).
    """

    def __init__(self, catalog: Catalog, optimize: bool | None = None,
                 compile_expressions: bool | None = None,
                 config: SessionConfig | None = None,
                 compiled_cache: dict[int, Any] | None = None,
                 engine: str | None = None) -> None:
        self.catalog = catalog
        self.config = config
        self.optimize = optimize if optimize is not None else (
            config.optimize if config is not None else True)
        self.compile_expressions = compile_expressions \
            if compile_expressions is not None else (
                config.compile_expressions if config is not None else True)
        self.collect_stats = \
            config.collect_stats if config is not None else True
        self.engine = engine if engine is not None else (
            config.engine if config is not None else "pipelined")
        self.stats = ExecutionStats()
        if self.engine == "materializing":
            from .materialize import MaterializingEngine
            self._impl = MaterializingEngine(
                catalog, self.compile_expressions, self.collect_stats,
                self.stats, compiled_cache)
        else:
            if self.engine == "vectorized":
                from .vectorized import VectorizedEngine as engine_cls
            else:
                from .pipeline import PipelineEngine as engine_cls
            batch_size = config.batch_size if config is not None else 1024
            use_indexes = config.use_indexes if config is not None else True
            workers = config.max_parallel_workers \
                if config is not None else 0
            threshold = config.parallel_threshold \
                if config is not None else 10000
            self._impl = engine_cls(
                catalog, self.compile_expressions, self.collect_stats,
                self.stats, batch_size, use_indexes=use_indexes,
                max_parallel_workers=workers,
                parallel_threshold=threshold)

    # -- public API ----------------------------------------------------------

    def execute(self, op: Operator, params: Iterable[Any] = ()) -> Relation:
        """Run *op* and return its output relation.

        *params* are the values bound to the plan's ``?`` placeholders
        (:class:`~repro.expressions.ast.Param` nodes), visible to every
        expression evaluated during this execution.
        """
        if self.optimize:
            from .optimizer import optimize as optimize_tree
            op = optimize_tree(op, self.catalog)
        return self._impl.execute(op, params)

    def execute_physical(self, plan: PhysicalPlan,
                         params: Iterable[Any] = ()) -> Relation:
        """Run an already-lowered :class:`~repro.engine.physical.
        PhysicalPlan` (the plan-cache hot path).  The materializing
        engine falls back to interpreting the plan's logical tree."""
        if self.engine == "materializing":
            return self._impl.execute(plan.logical, params)
        return self._impl.execute_physical(plan, params)

    def stream_physical(self, plan: PhysicalPlan,
                        params: Iterable[Any] = ()) -> Iterator[list[tuple]]:
        """Run an already-lowered physical plan as a generator of row
        batches (the streaming-result path).  The materializing engine
        cannot pipeline — it executes eagerly and yields one batch."""
        if self.engine == "materializing":
            relation = self._impl.execute(plan.logical, params)
            return iter((relation.rows,)) if relation.rows else iter(())
        return self._impl.stream_physical(plan, params)

    # -- SubqueryRunner protocol (sublink evaluation hook) --------------------

    def run_subquery(self, query: Operator, frames: tuple) -> list[tuple]:
        """Execute a sublink query with *frames* visible as outer rows."""
        return self._impl.run_subquery(query, frames)
