"""The vectorized, pipelined execution engine.

Drives a :class:`~repro.engine.physical.PhysicalPlan` by pulling
fixed-size row batches through the operator tree and materializing into a
:class:`~repro.relation.Relation` only at the sink.  One engine instance
executes one statement (the session layer creates it per call), but —
like the materializing engine it replaces — it keeps its InitPlan result
cache for its whole lifetime, so components that hold an engine across
queries (the direct-provenance evaluator) keep the InitPlan behaviour.

The engine is also the evaluator's ``SubqueryRunner``: sublinks reach it
through :class:`~repro.expressions.evaluator.EvalContext` with the
*logical* query tree in hand; the lowering registry maps that tree's
identity to its lowered InitPlan/SubPlan, so sublink evaluation never
re-enters the interpreter.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Iterable, Iterator

from ..catalog import Catalog
from ..algebra.operators import Operator
from ..relation import Relation
from .lowering import lower_plan
from .physical import (
    InitPlanSublink, PhysicalOperator, PhysicalPlan, SublinkPlan,
    SubPlanSublink,
)
from .stats import ExecutionStats

Frames = tuple


class PipelineEngine:
    """Executes physical plans over a catalog in row batches."""

    #: Worker-side fragment compilation mode advertised to
    #: :func:`~repro.engine.parallel.parallelize_plan`.
    engine_name = "pipelined"

    def __init__(self, catalog: Catalog, compile_expressions: bool,
                 collect_stats: bool, stats: ExecutionStats,
                 batch_size: int = 1024, use_indexes: bool = True,
                 max_parallel_workers: int = 0,
                 parallel_threshold: int = 10000) -> None:
        self.catalog = catalog
        self.compile_expressions = compile_expressions
        self.collect_stats = collect_stats
        self.stats = stats
        self.batch_size = batch_size
        self.use_indexes = use_indexes
        self.max_parallel_workers = max_parallel_workers
        self.parallel_threshold = parallel_threshold
        self.params: tuple = ()
        self._pull_stack: list = []
        self._subplans: dict[int, SublinkPlan] = {}
        self._initplan_cache: dict[int, list[tuple]] = {}
        # keyed by id(op) but storing the tree alongside the plan: the
        # stored reference keeps the tree alive (so its id cannot be
        # recycled while cached) and the identity check rejects a stale
        # entry if a tree ever ages out of liveness tracking elsewhere
        self._lowered: dict[int, tuple[Operator, PhysicalPlan]] = {}

    # -- public API ----------------------------------------------------------

    def execute(self, op: Operator, params: Iterable[Any] = ()) -> Relation:
        """Lower *op* (cached per tree identity) and run the pipeline."""
        entry = self._lowered.get(id(op))
        if entry is not None and entry[0] is op:
            plan = entry[1]
        else:
            plan = lower_plan(op, self.catalog,
                              use_indexes=self.use_indexes)
            if self.max_parallel_workers >= 2 or self.catalog.partitions():
                from .parallel import parallelize_plan
                plan = parallelize_plan(
                    plan, self.catalog, self.max_parallel_workers,
                    self.parallel_threshold, self.engine_name)
            self._lowered[id(op)] = (op, plan)
        return self.execute_physical(plan, params)

    def execute_physical(self, plan: PhysicalPlan,
                         params: Iterable[Any] = ()) -> Relation:
        """Run an already-lowered plan and materialize the sink."""
        self.params = tuple(params)
        self._subplans.update(plan.subplans)
        rows = self._drain(plan.root, ())
        if self.collect_stats:
            self._finish_timings(plan)
        return Relation.from_trusted_rows(plan.schema, rows)

    def stream_physical(self, plan: PhysicalPlan,
                        params: Iterable[Any] = ()) -> "Iterator[list[tuple]]":
        """Run an already-lowered plan as a lazy generator of row
        batches — the streaming sink behind
        :class:`repro.api.result.Result`.

        The plan stays open between yields; closing the generator early
        (``generator.close()``, or dropping the last reference) closes
        the operator tree, so abandoned result sets release their hash
        tables and sort buffers without being drained.
        """
        self.params = tuple(params)
        self._subplans.update(plan.subplans)
        root = plan.root
        root.open(self, ())
        try:
            while True:
                batch = self.pull(root)
                if batch is None:
                    break
                yield batch
        finally:
            root.close()
            if self.collect_stats:
                self._finish_timings(plan)

    # -- SubqueryRunner protocol (sublink evaluation hook) --------------------

    def run_subquery(self, query: Operator, frames: Frames) -> list[tuple]:
        """Execute a sublink query with *frames* visible as outer rows.

        InitPlans run once and cache their result for the lifetime of the
        engine; SubPlans re-run per call with the caller's frames bound.
        """
        sub = self._subplans.get(id(query))
        if sub is None:
            sub = self._lower_adhoc(query)
        if not sub.correlated:
            cached = self._initplan_cache.get(id(query))
            if cached is not None:
                self.stats.sublink_cache_hits += 1
                return cached
            self.stats.sublink_executions += 1
            rows = self._drain(sub.plan, ())
            self._initplan_cache[id(query)] = rows
            return rows
        self.stats.sublink_executions += 1
        return self._drain(sub.plan, frames)

    def _lower_adhoc(self, query: Operator) -> SublinkPlan:
        """Lower a sublink query the plan registry does not know — the
        path taken when the engine is used as a standalone subquery
        runner (e.g. by the direct-provenance evaluator)."""
        from ..algebra.properties import is_correlated
        registry = self._subplans
        plan = lower_plan(query, self.catalog,
                          use_indexes=self.use_indexes)
        registry.update(plan.subplans)
        cls = SubPlanSublink if is_correlated(query) else InitPlanSublink
        sub = cls(None, query, plan.root)
        registry[id(query)] = sub
        return sub

    # -- pipeline driver -------------------------------------------------------

    def _drain(self, root: PhysicalOperator, frames: Frames) -> list[tuple]:
        root.open(self, frames)
        rows: list[tuple] = []
        try:
            while True:
                batch = self.pull(root)
                if batch is None:
                    break
                rows.extend(batch)
        finally:
            root.close()
        return rows

    def pull(self, node: PhysicalOperator) -> list | None:
        """One ``next_batch`` call on *node*, with row/batch accounting
        and (under ``collect_stats``) wall-clock timing.

        Timing keeps a stack of in-flight pulls: a node's elapsed time
        accumulates inclusively on its own entry and is also charged to
        the enclosing pull's ``child_ns``, so every node ends up with an
        inclusive total *and* the part attributable to nodes it pulled —
        ``EXPLAIN ANALYZE`` derives self time from the difference."""
        stats = self.stats
        if self.collect_stats:
            entry = stats.node(node)
            stack = self._pull_stack
            stack.append(entry)
            started = perf_counter_ns()
            try:
                batch = node.next_batch()
            finally:
                elapsed = perf_counter_ns() - started
                stack.pop()
                entry.time_ns += elapsed
                if stack:
                    stack[-1].child_ns += elapsed
            if batch:
                entry.rows += len(batch)
                entry.batches += 1
                stats.rows_produced += len(batch)
                stats.batches_produced += 1
            return batch
        batch = node.next_batch()
        if batch:
            stats.rows_produced += len(batch)
            stats.batches_produced += 1
        return batch

    def _finish_timings(self, plan: PhysicalPlan) -> None:
        """Aggregate per-node self times by operator class name."""
        self.stats.operator_timings = {}
        for node in plan.nodes():
            entry = self.stats.node_stats.get(id(node))
            if entry is not None:
                self.stats.record_timing(type(node).__name__, entry)
