"""Intra-query parallelism: hash-partitioned tables and exchange
operators over a persistent ``multiprocessing`` worker pool.

Three moving parts:

* **Hash partitioning** — ``CREATE TABLE t (...) PARTITION BY HASH(col)
  PARTITIONS n`` records ``(col, n)`` in the catalog.  Partition
  membership is ``stable_hash(value) % n`` (:func:`stable_hash` is
  process-independent, unlike ``hash(str)`` under hash randomization —
  every worker must agree).  Partitions are *virtual over the stored row
  order*: :func:`partition_map` lazily computes (and caches, keyed by the
  Relation's row-list identity — commits swap row lists wholesale, so
  identity is a correct cache key) the ascending row-index list of each
  partition.  The map is the unit of parallelism here and of sharding
  later.

* **Exchange operators** — :class:`Gather` is the parent-side exchange:
  it replaces a parallelizable subtree at lowering time (the serial
  subtree is kept as its child, for EXPLAIN and as the fallback path)
  and fans the work out at execution time.  Four fragment shapes:

  - ``scan``      — Filter/Project pipelines over one base table,
                    split into contiguous row slices; concatenating the
                    worker outputs in slice order reproduces the serial
                    output exactly.
  - ``twophase``  — partial -> final HashAggregate: workers aggregate
                    their slice into per-group accumulator *states*
                    (:meth:`~repro.expressions.aggregates.Accumulator.
                    state`), the parent merges states and emits finals.
  - ``repartition`` — the shuffle: the parent hash-buckets base rows by
                    group key and ships each bucket to one worker, which
                    runs the *full* aggregation on its bucket.  Groups
                    are disjoint across workers, so no merge — and every
                    group is folded in serial row order, which keeps
                    even floating-point aggregates bit-identical.
  - ``partition`` — partition-wise aggregation: like ``repartition``
                    but the grouping key includes the table's hash-
                    partitioning column, so the buckets *are* the stored
                    partitions and nothing needs to be shipped per query.

  In every aggregate shape the workers report each group's first
  surviving global row index; the parent emits groups in ascending
  first-occurrence order — exactly the serial engine's dict-insertion
  order.  :class:`PartitionScan` is the serial partition-pruning scan:
  an equality filter on the partition column reads one partition's index
  list instead of the whole table (the filter stays above it — hash
  collisions share a partition).

* **The worker pool** — a process-global pool of fork-spawned daemon
  workers, one duplex pipe each.  Tables travel once per (worker,
  table-version) as columnar codec blocks (the snapshot wire format) and
  are cached worker-side; fragment *specs* (pickled expression ASTs —
  never compiled closures) also ship once and are cached, so a warm
  repeated query ships only slice bounds and parameters.  A worker death
  mid-query surfaces as a clean :class:`~repro.errors.ExecutionError`;
  the pool respawns the dead worker before the next query.  Workers are
  daemons: they can never outlive the parent.
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
import threading
import zlib
from collections import OrderedDict
from time import perf_counter
from typing import TYPE_CHECKING, Any, Sequence

from ..errors import CatalogError, ExecutionError
from ..expressions.aggregates import make_accumulator
from ..expressions.ast import BoolOp, Col, Comparison, Const, Expr
from ..expressions.compiler import (
    compile_batch_predicate, compile_batch_projector, compile_batch_values,
    compile_vector_predicate,
)
from ..storage.codec import decode_columnar_rows, encode_columnar_rows
from .physical import (
    Filter, HashAggregate, PhysicalOperator, PhysicalPlan, Project, SeqScan,
    SortNode, StreamingLimit,
)

if TYPE_CHECKING:
    from multiprocessing.connection import Connection
    from multiprocessing.context import BaseContext
    from multiprocessing.process import BaseProcess

    from ..catalog import Catalog

_FLOAT = struct.Struct("<d")
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Exchange costing: fixed per-fanout overhead and per-row transfer cost,
#: in the cost model's SeqScan-row units.  A Gather is only planned when
#: the estimated input clears ``SessionConfig.parallel_threshold``, so
#: these mostly shape EXPLAIN's relative numbers.
GATHER_SETUP_COST = 500.0
GATHER_ROW_COST = 0.2


# ---------------------------------------------------------------------------
# Stable hashing + partition maps
# ---------------------------------------------------------------------------

def stable_hash(value: Any) -> int:
    """A process-independent hash of one SQL value.

    Values that compare equal under SQL ``=`` must land in the same
    partition, so bools hash as their integer value and integral floats
    hash as integers (``1 = 1.0`` is true).  NULL rows all live in
    partition 0 — they never match an equality probe anyway.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float):
        if value.is_integer() and _INT64_MIN <= value <= _INT64_MAX:
            value = int(value)
        else:
            return zlib.crc32(b"f" + _FLOAT.pack(value))
    if isinstance(value, int):
        body = value.to_bytes((value.bit_length() + 8) // 8, "little",
                              signed=True)
        return zlib.crc32(b"i" + body)
    if isinstance(value, str):
        return zlib.crc32(b"s" + value.encode("utf-8"))
    return zlib.crc32(repr(value).encode("utf-8"))


def _hash_key(row: tuple, positions: tuple[int, ...]) -> int:
    code = 0
    for p in positions:
        code = (code * 1000003 + stable_hash(row[p])) & 0xFFFFFFFF
    return code


#: rows-list identity -> (rows ref, position, count, index lists).  The
#: rows reference keeps the list alive so its id cannot be recycled
#: while cached; commits swap Relations (and their row lists) wholesale,
#: so identity equality means the map is current.
_MAP_CACHE: "OrderedDict[tuple, tuple]" = OrderedDict()
_MAP_CACHE_CAP = 32
_map_lock = threading.Lock()


def _reset_after_fork() -> None:  # pragma: no cover - runs inside fork()
    """Re-arm the cache lock in the child.

    A forked child inherits ``_map_lock`` in whatever state some parent
    thread left it at ``fork()`` — acquiring an inherited *held* lock
    deadlocks forever.  The child gets a fresh, unlocked lock and an
    empty cache (its tables are decoded per worker, so parent entries
    would only pin copied row lists anyway).
    """
    global _map_lock
    _map_lock = threading.Lock()
    _MAP_CACHE.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


# repro: allow(lock-fork) - _map_lock is re-created unlocked in the
# child by _reset_after_fork (os.register_at_fork above), so workers
# can never block on a lock a parent thread held across fork().
def partition_map(rows: list, position: int,
                  count: int) -> list[list[int]]:
    """Ascending row-index lists, one per partition, for *rows* hash-
    partitioned on column *position* into *count* buckets (cached)."""
    key = (id(rows), position, count)
    with _map_lock:
        entry = _MAP_CACHE.get(key)
        if entry is not None and entry[0] is rows \
                and entry[1] == len(rows):
            _MAP_CACHE.move_to_end(key)
            return entry[2]
    buckets: list[list[int]] = [[] for _ in range(count)]
    for i, row in enumerate(rows):
        buckets[stable_hash(row[position]) % count].append(i)
    with _map_lock:
        _MAP_CACHE[key] = (rows, len(rows), buckets)
        while len(_MAP_CACHE) > _MAP_CACHE_CAP:
            _MAP_CACHE.popitem(last=False)
    return buckets


def clear_partition_cache() -> None:
    """Drop every cached partition map (tests and benchmarks)."""
    with _map_lock:
        _MAP_CACHE.clear()


# ---------------------------------------------------------------------------
# Serial partition pruning
# ---------------------------------------------------------------------------

class PartitionScan(PhysicalOperator):
    """Scan of the partitions an equality predicate can match.

    Emits the selected partitions' rows in stored order (the index lists
    are ascending and disjoint), so every plan above sees the same order
    a :class:`~repro.engine.physical.SeqScan` minus the pruned rows.
    """

    __slots__ = ("table", "alias", "names", "position", "count", "parts",
                 "_rows", "_order", "_pos")

    def __init__(self, table: str, alias: str, names: tuple[str, ...],
                 position: int, count: int,
                 parts: tuple[int, ...]) -> None:
        super().__init__()
        self.table = table
        self.alias = alias
        self.names = names
        self.position = position
        self.count = count
        self.parts = parts
        self._rows: list = []
        self._order: list[int] = []
        self._pos = 0

    def _reset(self) -> None:
        self._rows = self.engine.catalog.get(self.table).rows
        buckets = partition_map(self._rows, self.position, self.count)
        if len(self.parts) == 1:
            self._order = buckets[self.parts[0]]
        else:
            merged: list[int] = []
            for part in sorted(self.parts):
                merged.extend(buckets[part])
            merged.sort()
            self._order = merged
        self._pos = 0

    def _release(self) -> None:
        self._rows = []
        self._order = []

    def next_batch(self) -> list | None:
        if self._pos >= len(self._order):
            return None
        rows = self._rows
        chunk = self._order[self._pos:self._pos + self.engine.batch_size]
        self._pos += len(chunk)
        return [rows[i] for i in chunk]

    def label(self) -> str:
        return (f"PartitionScan {self.table} as {self.alias} "
                f"partitions {sorted(self.parts)}/{self.count}")


# ---------------------------------------------------------------------------
# The worker pool
# ---------------------------------------------------------------------------

_TABLE_CACHE_CAP = 8      # decoded tables kept per worker
_SPEC_CACHE_CAP = 64      # fragment specs kept per worker


def _worker_main(conn: "Connection") -> None:  # pragma: no cover - runs in a subprocess
    """Worker loop: cache tables and specs, answer tasks."""
    tables: "OrderedDict[int, list]" = OrderedDict()
    specs: "OrderedDict[int, dict]" = OrderedDict()
    pending_error: str | None = None
    while True:
        try:
            # repro: allow(hygiene-pickle) - parent<->child pipe created
            # by this process; never carries attacker-controlled bytes
            message = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "exit":
            return
        try:
            if kind == "table":
                _, token, n_cols, blob = message
                rows, _ = decode_columnar_rows(blob, 0, n_cols)
                tables[token] = rows
                tables.move_to_end(token)
                while len(tables) > _TABLE_CACHE_CAP:
                    tables.popitem(last=False)
            elif kind == "spec":
                _, spec_id, spec = message
                specs[spec_id] = spec
                specs.move_to_end(spec_id)
                while len(specs) > _SPEC_CACHE_CAP:
                    specs.popitem(last=False)
            elif kind == "task":
                if pending_error is not None:
                    error, pending_error = pending_error, None
                    conn.send_bytes(pickle.dumps(("err", error)))
                    continue
                payload = _run_task(message[1], specs, tables)
                conn.send_bytes(pickle.dumps(("ok", payload)))
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            import traceback
            text = f"{type(exc).__name__}: {exc}\n" \
                   f"{traceback.format_exc(limit=8)}"
            if kind == "task":
                conn.send_bytes(pickle.dumps(("err", text)))
            else:
                pending_error = text


def _run_task(task: dict, specs: dict,
              tables: dict) -> Any:  # pragma: no cover - subprocess
    spec = specs[task["spec"]]
    mode = spec["mode"]
    params = task["params"]
    if mode == "repartition":
        tagged, _ = decode_columnar_rows(task["blob"], 0,
                                         task["blob_cols"])
        idxs = [row[0] for row in tagged]
        rows = [row[1:] for row in tagged]
    elif mode == "partition":
        full = tables[task["table"]]
        position, count = spec["partition"]
        buckets = partition_map(full, position, count)
        order: list[int] = []
        for part in sorted(task["parts"]):
            order.extend(buckets[part])
        order.sort()
        idxs = order
        rows = [full[i] for i in order]
    else:
        full = tables[task["table"]]
        lo, hi = task["lo"], task["hi"]
        rows = full[lo:hi]
        idxs = range(lo, hi)
    track = spec["agg"] is not None
    rows, idxs = _apply_steps(rows, idxs, spec["steps"], params,
                              spec["engine"], track)
    if not track:
        return rows
    return _aggregate_fragment(rows, idxs, spec["agg"], params,
                               partial=(mode == "twophase"))


def _apply_steps(rows: list, idxs: "Sequence[int]",
                 steps: "Sequence[tuple]", params: tuple, engine: str,
                 track: bool) -> "tuple[list, Sequence[int]]":
    """Run a fragment's Filter/Project steps over *rows*.

    *idxs* holds each row's global index (tracked only when *track* —
    the aggregate modes need first-occurrence ranks).  Filters preserve
    object identity and order, so surviving indices realign by
    order-preserving identity matching; projections are 1:1.
    Under the vectorized engine, a leading run of filters whose
    predicates compile to vector kernels runs columnar.
    """
    steps = list(steps)
    if engine == "vectorized" and rows and steps \
            and steps[0][0] == "filter":
        from .columnar import ColumnBatch
        batch = ColumnBatch.from_rows(rows, len(rows[0]))
        sel = batch.sel
        used = 0
        for kind, payload, index in steps:
            if kind != "filter":
                break
            kernel = compile_vector_predicate(payload, index)
            if kernel is None:
                break
            sel = kernel(batch.columns, sel, params)
            used += 1
        if used:
            steps = steps[used:]
            rows = [rows[i] for i in sel]
            if track:
                idxs = [idxs[i] for i in sel]
    for kind, payload, index in steps:
        if kind == "filter":
            fn = compile_batch_predicate(payload, index)
            out = fn(rows, (), None, params)
            if track and len(out) != len(rows):
                idxs = _realign(rows, idxs, out)
            rows = out
        else:
            fn = compile_batch_projector(payload, index)
            rows = fn(rows, (), None, params)
    return rows, idxs


def _realign(rows: list, idxs: "Sequence[int]",
             survivors: list) -> list[int]:
    """Global indices of *survivors*, an order-preserving subsequence of
    *rows* (matched by object identity, so duplicate tuples are safe)."""
    out = []
    j = 0
    for row in survivors:
        while rows[j] is not row:
            j += 1
        out.append(idxs[j])
        j += 1
    return out


def _make_accumulators(aggregates: "Sequence[tuple]") -> list:
    return [make_accumulator(call.name, star=call.arg is None,
                             distinct=call.distinct)
            for _, call in aggregates]


def _aggregate_fragment(rows: list, idxs: "Sequence[int]",
                        agg: dict, params: tuple,
                        partial: bool) -> list[tuple]:
    """One worker's aggregation over its fragment: ``(key, payload,
    first_global_index)`` per group — *payload* is the accumulator
    states under two-phase mode, final results otherwise."""
    aggregates = agg["aggregates"]
    positions = agg["positions"]
    index = agg["index"]
    arg_fns = [None if call.arg is None
               else compile_batch_values(call.arg, index)
               for _, call in aggregates]
    columns = [None if fn is None else fn(rows, (), None, params)
               for fn in arg_fns]
    groups: dict[tuple, list] = {}
    for i, row in enumerate(rows):
        key = tuple(row[p] for p in positions)
        entry = groups.get(key)
        if entry is None:
            entry = [_make_accumulators(aggregates), idxs[i]]
            groups[key] = entry
        for column, accumulator in zip(columns, entry[0]):
            accumulator.add(1 if column is None else column[i])
    if partial:
        return [(key, [acc.state() for acc in accs], first)
                for key, (accs, first) in groups.items()]
    return [(key, tuple(acc.result() for acc in accs), first)
            for key, (accs, first) in groups.items()]


class _Worker:
    __slots__ = ("process", "conn", "tables", "specs")

    def __init__(self, process: "BaseProcess",
                 conn: "Connection") -> None:
        self.process = process
        self.conn = conn
        self.tables: set[int] = set()
        self.specs: set[int] = set()

    def send(self, message: tuple) -> None:
        self.conn.send_bytes(pickle.dumps(
            message, protocol=pickle.HIGHEST_PROTOCOL))

    def recv(self) -> tuple:
        # repro: allow(hygiene-pickle) - same trusted pipe, parent side
        return pickle.loads(self.conn.recv_bytes())

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, join: bool = True) -> None:
        try:
            if self.process.is_alive():
                self.send(("exit",))
        except (OSError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        if join:
            self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)


class WorkerPool:
    """A lazily grown pool of daemon worker processes (one pipe each).

    ``run`` dispatches one task per worker and collects the replies in
    task order.  A dead worker raises :class:`ExecutionError` for the
    *current* query and is respawned, so the next query sees a healthy
    pool; per-worker caches die with the worker, which only costs a
    re-ship.
    """

    def __init__(self) -> None:
        self._workers: list[_Worker] = []
        self._lock = threading.Lock()
        self._context = None

    def _ctx(self) -> "BaseContext":
        if self._context is None:
            import multiprocessing
            try:
                self._context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                self._context = multiprocessing.get_context("spawn")
        return self._context

    def _spawn(self) -> _Worker:
        ctx = self._ctx()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(target=_worker_main, args=(child_conn,),
                              name="repro-parallel-worker", daemon=True)
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def lease(self, count: int) -> list[_Worker]:
        """*count* healthy workers, spawning/respawning as needed."""
        with self._lock:
            for i, worker in enumerate(self._workers):
                if not worker.alive():
                    worker.stop(join=False)
                    self._workers[i] = self._spawn()
            while len(self._workers) < count:
                self._workers.append(self._spawn())
            return self._workers[:count]

    @property
    def size(self) -> int:
        return len(self._workers)

    def processes(self) -> list:
        """Live worker process objects (crash-injection tests)."""
        return [worker.process for worker in self._workers]

    def run(self, assignments: list[tuple["_Worker", list[tuple], tuple]]
            ) -> list[Any]:
        """Send every worker its shipments + task, then collect replies.

        *assignments* is ``(worker, shipments, task_message)`` per task.
        Shipments (table blocks, fragment specs) are fire-and-forget;
        the task message gets exactly one reply.
        """
        try:
            for worker, shipments, task in assignments:
                for shipment in shipments:
                    worker.send(shipment)
                worker.send(task)
        except (OSError, ValueError) as exc:
            self._reap()
            raise ExecutionError(
                f"parallel worker unreachable: {exc}") from exc
        results = []
        for worker, _, _ in assignments:
            try:
                reply = worker.recv()
            except (EOFError, OSError) as exc:
                self._reap()
                raise ExecutionError(
                    "parallel worker died mid-query; the pool was "
                    "respawned — re-run the statement") from exc
            if reply[0] == "err":
                raise ExecutionError(
                    f"parallel worker failed: {reply[1]}")
            results.append(reply[1])
        return results

    def _reap(self) -> None:
        """Replace dead workers after a failed dispatch."""
        with self._lock:
            for i, worker in enumerate(self._workers):
                if not worker.alive():
                    worker.stop(join=False)
                    self._workers[i] = self._spawn()

    def shutdown(self) -> None:
        with self._lock:
            workers, self._workers = self._workers, []
        for worker in workers:
            worker.stop()


_POOL: WorkerPool | None = None
_pool_lock = threading.Lock()


def get_pool() -> WorkerPool | None:
    """The process-global worker pool (created on first use), or None
    when worker processes cannot be started on this platform."""
    global _POOL
    with _pool_lock:
        if _POOL is None:
            pool = WorkerPool()
            try:
                pool.lease(1)
            except Exception:
                return None
            atexit.register(pool.shutdown)
            _POOL = pool
        return _POOL


def shutdown_pool() -> None:
    """Stop the global pool (tests); the next query recreates it."""
    global _POOL
    with _pool_lock:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown()


# -- parent-side shipping caches ---------------------------------------------

#: rows-list identity -> (rows ref, token, n_cols, encoded block).
_BLOB_CACHE: "OrderedDict[int, tuple]" = OrderedDict()
_BLOB_CACHE_CAP = 8
_blob_lock = threading.Lock()
_token_counter = 0


def _table_blob(rows: list, n_cols: int) -> tuple[int, bytes]:
    """``(token, columnar block)`` for one table version, cached by the
    row list's identity (kept alive by the cache entry)."""
    global _token_counter
    key = id(rows)
    with _blob_lock:
        entry = _BLOB_CACHE.get(key)
        if entry is not None and entry[0] is rows \
                and entry[1] == len(rows):
            _BLOB_CACHE.move_to_end(key)
            return entry[2], entry[3]
    out = bytearray()
    encode_columnar_rows(out, n_cols, rows)
    blob = bytes(out)
    with _blob_lock:
        _token_counter += 1
        token = _token_counter
        _BLOB_CACHE[key] = (rows, len(rows), token, blob)
        while len(_BLOB_CACHE) > _BLOB_CACHE_CAP:
            _BLOB_CACHE.popitem(last=False)
    return token, blob


_spec_counter = 0
_spec_lock = threading.Lock()


def _next_spec_id() -> int:
    global _spec_counter
    with _spec_lock:
        _spec_counter += 1
        return _spec_counter


# ---------------------------------------------------------------------------
# The Gather exchange operator
# ---------------------------------------------------------------------------

class Gather(PhysicalOperator):
    """Parent-side exchange: fans a fragment out over the worker pool
    and merges the results; its child is the equivalent serial subtree
    (run verbatim when the pool is unavailable or the live table shrank
    below the threshold)."""

    __slots__ = ("child", "workers", "mode", "table", "n_cols", "spec",
                 "threshold", "group", "aggregates", "positions",
                 "_spec_id", "_result", "_pos", "worker_stats")

    def __init__(self, child: PhysicalOperator, workers: int, mode: str,
                 table: str, n_cols: int, spec: dict, threshold: int,
                 group: tuple = (), aggregates: tuple = (),
                 positions: tuple = ()) -> None:
        super().__init__()
        self.child = child
        self.workers = workers
        self.mode = mode
        self.table = table
        self.n_cols = n_cols
        self.spec = spec
        self.threshold = threshold
        self.group = group
        self.aggregates = aggregates
        self.positions = positions
        self._spec_id = _next_spec_id()
        self._result: list | None = None
        self._pos = 0
        #: ``[(worker_index, rows_returned, seconds)]`` of the last
        #: parallel execution — rendered by EXPLAIN ANALYZE.
        self.worker_stats: list[tuple[int, int, float]] | None = None

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def _reset(self) -> None:
        self._result = None
        self._pos = 0

    def _release(self) -> None:
        self._result = None

    def next_batch(self) -> list | None:
        if self._result is None:
            self._result = self._execute()
            self._pos = 0
        if self._pos >= len(self._result):
            return None
        batch = self._result[self._pos:self._pos + self.engine.batch_size]
        self._pos += len(batch)
        return batch

    # -- execution -----------------------------------------------------------

    def _serial(self) -> list[tuple]:
        engine = self.engine
        engine.stats.parallel_fallbacks += 1
        rows: list[tuple] = []
        while True:
            batch = engine.pull(self.child)
            if batch is None:
                return rows
            rows.extend(batch)

    def _execute(self) -> list[tuple]:
        engine = self.engine
        rows = engine.catalog.get(self.table).rows
        if self.workers < 2 or len(rows) < self.threshold:
            return self._serial()
        pool = get_pool()
        if pool is None:
            return self._serial()
        self.worker_stats = None
        tasks = self._plan_tasks(rows, engine.params)
        if tasks is None:
            return self._serial()
        workers = pool.lease(len(tasks))
        assignments = []
        for worker, (shipments, dynamic) in zip(workers, tasks):
            pending = []
            for shipment in shipments:
                kind = shipment[0]
                if kind == "table" and shipment[1] in worker.tables:
                    continue
                if kind == "spec" and shipment[1] in worker.specs:
                    continue
                pending.append(shipment)
                if kind == "table":
                    worker.tables.add(shipment[1])
                else:
                    worker.specs.add(shipment[1])
            assignments.append((worker, pending, ("task", dynamic)))
        started = perf_counter()
        results = pool.run(assignments)
        elapsed = perf_counter() - started
        engine.stats.parallel_fanouts += 1
        engine.stats.parallel_workers = max(
            engine.stats.parallel_workers, len(tasks))
        self.worker_stats = [
            (i, len(part), elapsed) for i, part in enumerate(results)]
        if self.mode == "scan":
            merged: list[tuple] = []
            for part in results:
                merged.extend(part)
            return merged
        return self._merge_groups(results)

    def _plan_tasks(self, rows: list, params: tuple
                    ) -> "list[tuple[list, dict]] | None":
        """Per-worker ``(shipments, dynamic-task)`` pairs, or None when
        this execution cannot be split (e.g. nothing to shuffle)."""
        spec_ship = ("spec", self._spec_id, self.spec)
        count = min(self.workers, max(1, len(rows)))
        if count < 2:
            return None
        tasks = []
        if self.mode in ("scan", "twophase"):
            token, blob = _table_blob(rows, self.n_cols)
            table_ship = ("table", token, self.n_cols, blob)
            step = -(-len(rows) // count)   # ceil division
            for i in range(count):
                lo, hi = i * step, min((i + 1) * step, len(rows))
                if lo >= hi:
                    break
                tasks.append((
                    [table_ship, spec_ship],
                    {"spec": self._spec_id, "params": params,
                     "table": token, "lo": lo, "hi": hi}))
        elif self.mode == "partition":
            token, blob = _table_blob(rows, self.n_cols)
            table_ship = ("table", token, self.n_cols, blob)
            position, parts_count = self.spec["partition"]
            assigned: list[list[int]] = [[] for _ in range(count)]
            for part in range(parts_count):
                assigned[part % count].append(part)
            for i in range(count):
                if not assigned[i]:
                    continue
                tasks.append((
                    [table_ship, spec_ship],
                    {"spec": self._spec_id, "params": params,
                     "table": token, "parts": assigned[i]}))
        else:   # repartition: ship hash buckets of (index, row) pairs
            positions = self.positions
            buckets: list[list[tuple]] = [[] for _ in range(count)]
            for i, row in enumerate(rows):
                buckets[_hash_key(row, positions) % count].append(
                    (i, *row))
            for bucket in buckets:
                if not bucket:
                    continue
                out = bytearray()
                encode_columnar_rows(out, self.n_cols + 1, bucket)
                tasks.append((
                    [spec_ship],
                    {"spec": self._spec_id, "params": params,
                     "blob": bytes(out), "blob_cols": self.n_cols + 1}))
        return tasks if len(tasks) >= 2 else None

    def _merge_groups(self, results: list) -> list[tuple]:
        """Final phase of the aggregate modes: merge partial states
        (two-phase) or adopt disjoint finals (shuffles), then emit in
        ascending first-occurrence order — the serial group order."""
        partial = self.mode == "twophase"
        merged: dict[tuple, list] = {}
        for part in results:
            for key, payload, first in part:
                entry = merged.get(key)
                if entry is None:
                    if partial:
                        accumulators = _make_accumulators(self.aggregates)
                        for acc, state in zip(accumulators, payload):
                            acc.merge(state)
                        merged[key] = [accumulators, first]
                    else:
                        merged[key] = [payload, first]
                else:
                    # disjoint by construction in the shuffle modes
                    for acc, state in zip(entry[0], payload):
                        acc.merge(state)
                    if first < entry[1]:
                        entry[1] = first
        if not merged and not self.group:
            finals = tuple(acc.result()
                           for acc in _make_accumulators(self.aggregates))
            return [finals]
        ordered = sorted(merged.items(), key=lambda item: item[1][1])
        if partial:
            return [key + tuple(acc.result() for acc in accs)
                    for key, (accs, _) in ordered]
        return [key + finals for key, (finals, _) in ordered]

    def label(self) -> str:
        return (f"Gather (workers={self.workers}, mode={self.mode}) "
                f"on {self.table}")


# ---------------------------------------------------------------------------
# The parallel lowering pass
# ---------------------------------------------------------------------------

def parallelize_plan(plan: PhysicalPlan, catalog: Catalog, workers: int,
                     threshold: int,
                     engine_name: str = "pipelined") -> PhysicalPlan:
    """Rewrite *plan* in place, inserting :class:`Gather` exchanges (and
    :class:`PartitionScan` pruning) where the cost model expects
    parallelism to pay: the fragment's base table must clear *threshold*
    estimated rows.  Serial semantics are preserved exactly — every
    Gather keeps its serial subtree as the fallback child.

    Partition pruning is applied regardless of *workers* — cutting a
    scan to one partition pays even (especially) in a serial plan."""
    plan.root = _prune_partitions(plan.root, catalog)
    if workers >= 2:
        plan.root = _parallelize(plan.root, catalog, workers, threshold,
                                 engine_name)
    return plan


def _table_size(scan: SeqScan, catalog: Catalog) -> float:
    if scan.est_rows is not None:
        return scan.est_rows
    try:
        return len(catalog.get(scan.table).rows)
    except CatalogError:
        return 0.0


def _scan_pipeline(node: PhysicalOperator
                   ) -> "tuple[SeqScan, list[tuple], bool] | None":
    """Decompose a Filter/Project(plain) chain over a SeqScan into
    ``(scan, steps, saw_project)`` with steps innermost-first, or None.
    Nodes carrying sublink plans cannot ship to a worker."""
    steps: list[tuple] = []
    saw_project = False
    current = node
    while True:
        if current.sublinks:
            return None
        if isinstance(current, SeqScan):
            steps.reverse()
            return current, steps, saw_project
        if isinstance(current, Filter):
            steps.append(("filter", current.condition, current.index))
            current = current.child
        elif isinstance(current, Project) and not current.distinct:
            exprs = tuple(expr for _, expr in current.items)
            steps.append(("project", exprs, current.index))
            saw_project = True
            current = current.child
        else:
            return None


def _try_gather(node: PhysicalOperator, catalog: Catalog, workers: int,
                threshold: int, engine_name: str) -> Gather | None:
    if isinstance(node, HashAggregate) and not node.sublinks:
        decomposed = _scan_pipeline(node.child)
        if decomposed is None:
            return None
        scan, steps, saw_project = decomposed
        if _table_size(scan, catalog) < threshold:
            return None
        if any(call.arg is not None and _has_sublink(call.arg)
               for _, call in node.aggregates):
            return None
        n_cols = len(scan.names)
        agg_spec = {"aggregates": node.aggregates,
                    "positions": node.group_positions,
                    "index": node.index}
        combinable = all(not call.distinct
                         for _, call in node.aggregates)
        keyed_on_base = bool(node.group) and not saw_project
        mode = None
        spec_partition = None
        if keyed_on_base:
            declared = catalog.partition_of(scan.table)
            if declared is not None:
                column, count = declared
                position = _base_position(catalog, scan.table, column)
                if position is not None \
                        and position in node.group_positions:
                    mode = "partition"
                    spec_partition = (position, count)
            if mode is None:
                mode = "repartition"
        elif combinable:
            mode = "twophase"
        if mode is None:
            return None
        spec = {"mode": mode, "steps": steps, "agg": agg_spec,
                "partition": spec_partition, "engine": engine_name}
        gather = Gather(node, workers, mode, scan.table, n_cols, spec,
                        threshold, group=node.group,
                        aggregates=node.aggregates,
                        positions=node.group_positions)
        _cost_gather(gather, node)
        return gather
    decomposed = _scan_pipeline(node)
    if decomposed is None or isinstance(node, SeqScan):
        return None
    scan, steps, _ = decomposed
    if not any(kind == "filter" for kind, _, _ in steps):
        return None   # fan-out without reduction never pays
    if _table_size(scan, catalog) < threshold:
        return None
    spec = {"mode": "scan", "steps": steps, "agg": None,
            "partition": None, "engine": engine_name}
    gather = Gather(node, workers, "scan", scan.table, len(scan.names),
                    spec, threshold)
    _cost_gather(gather, node)
    return gather


def _cost_gather(gather: Gather, child: PhysicalOperator) -> None:
    gather.est_rows = child.est_rows
    if child.est_cost is not None:
        rows = child.est_rows or 0.0
        gather.est_cost = (child.est_cost / gather.workers
                           + GATHER_SETUP_COST + GATHER_ROW_COST * rows)


def _has_sublink(expr: Expr) -> bool:
    from ..expressions.ast import Sublink
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Sublink):
            return True
        stack.extend(node.children())
    return False


def _base_position(catalog: Catalog, table: str,
                   column: str) -> int | None:
    try:
        schema = catalog.get(table).schema
    except CatalogError:
        return None
    if column not in schema:
        return None
    return schema.position(column)


_DESCEND = (Filter, Project, SortNode, StreamingLimit, HashAggregate)


def _parallelize(node: PhysicalOperator, catalog: Catalog, workers: int,
                 threshold: int, engine_name: str) -> PhysicalOperator:
    gather = _try_gather(node, catalog, workers, threshold, engine_name)
    if gather is not None:
        return gather
    if isinstance(node, _DESCEND):
        node.child = _parallelize(node.child, catalog, workers,
                                  threshold, engine_name)
    return node


def _prune_partitions(node: PhysicalOperator,
                      catalog: Catalog) -> PhysicalOperator:
    """Replace ``Filter(pcol = const)`` over a SeqScan of a hash-
    partitioned table with the same filter over a single-partition
    :class:`PartitionScan` (collisions keep the filter necessary)."""
    if isinstance(node, Filter) and isinstance(node.child, SeqScan) \
            and not node.child.sublinks:
        scan = node.child
        declared = catalog.partition_of(scan.table)
        if declared is not None:
            column, count = declared
            position = _base_position(catalog, scan.table, column)
            if position is not None:
                bucket = _equality_bucket(node.condition, node.index,
                                          position, count)
                if bucket is not None:
                    replacement = PartitionScan(
                        scan.table, scan.alias, scan.names, position,
                        count, (bucket,))
                    size = _table_size(scan, catalog)
                    replacement.est_rows = (
                        None if scan.est_rows is None
                        else scan.est_rows / count)
                    replacement.est_cost = (
                        None if scan.est_cost is None
                        else scan.est_cost / count)
                    node.child = replacement
                    return node
    for attr in ("child", "left", "right"):
        child = getattr(node, attr, None)
        if isinstance(child, PhysicalOperator):
            setattr(node, attr, _prune_partitions(child, catalog))
    return node


def _equality_bucket(condition: Expr, index: dict[str, int],
                     position: int, count: int) -> int | None:
    """The partition an AND-chain equality conjunct pins, or None."""
    conjuncts = condition.items \
        if isinstance(condition, BoolOp) and condition.op == "and" \
        else (condition,)
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        for col, const in ((conjunct.left, conjunct.right),
                           (conjunct.right, conjunct.left)):
            if isinstance(col, Col) and col.level == 0 \
                    and isinstance(const, Const) \
                    and const.value is not None \
                    and index.get(col.name) == position:
                return stable_hash(const.value) % count
    return None
