"""The planner's first phase — a *logical* optimizer: selection
pushdown, join-condition extraction and (given a catalog) greedy
cost-based join ordering.  The second phase
(:mod:`repro.engine.lowering`) lowers the rewritten logical tree into
the physical plan the pipelined engine executes.

Perm relies on PostgreSQL's planner to turn ``σ_C(A × B × C)`` — the shape
both the SQL analyzer (comma FROM lists) and the provenance rewrite rules
produce — into selective joins.  Without an equivalent pass, every
benchmark would measure cross-product materialization instead of the
strategies under study.  This pass implements exactly the subset of
planning the experiments need, deliberately nothing more:

* flatten ``Select(Select(x))`` chains,
* push conjuncts of a selection into the side of a join that covers all
  the columns they need (left side only for LEFT joins),
* fold conjuncts spanning both sides of an inner/cross join into the join
  condition (enabling the executor's hash-join fast path),
* push sublink-free conjuncts through pure-rename projections,
* recurse into sublink query trees.

When :func:`optimize` is handed a catalog, a second pass re-orders
maximal inner/cross join chains greedily by estimated cardinality
(:mod:`repro.engine.cost`): starting from the smallest relation, each
step joins the relation whose (condition-covered) result is estimated
smallest, attaching pooled conjuncts as soon as both sides cover their
columns.  The chain's original column order is restored with a final
projection, so the rewrite is invisible to everything above it.

Correlated references *inside* sublinks are handled precisely: a conjunct
is pushable iff every column it reads **at the selection's own scope**
(level == boundary depth) is covered — levels further out are enclosing
query scopes and do not constrain pushdown; levels further in are the
sublink's own columns.
"""

from __future__ import annotations

from ..expressions.ast import (
    Col, Expr, Sublink, TRUE, and_all, conjuncts_of,
)
from ..algebra.operators import (
    Join, JoinKind, Operator, Project, Select,
)
from ..algebra.trees import transform_expressions

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from ..catalog import Catalog
    from .cost import CardinalityEstimator


def scope_column_names(expr: Expr, boundary: int = 0) -> set[str]:
    """Column names *expr* reads at its own scope (see module docstring)."""
    names: set[str] = set()
    _collect_scope_names(expr, boundary, names)
    return names


def _collect_scope_names(expr: Expr, boundary: int,
                         names: set[str]) -> None:
    if isinstance(expr, Col):
        if expr.level == boundary:
            names.add(expr.name)
        return
    for child in expr.children():
        _collect_scope_names(child, boundary, names)
    if isinstance(expr, Sublink):
        _collect_op_scope_names(expr.query, boundary + 1, names)


def _collect_op_scope_names(op: Operator, boundary: int,
                            names: set[str]) -> None:
    for expr in op.expressions():
        _collect_scope_names(expr, boundary, names)
    for child in op.children():
        _collect_op_scope_names(child, boundary, names)


def _substitute_renames(expr: Expr, mapping: dict[str, str],
                        boundary: int = 0) -> Expr:
    """Rewrite scope-level column references through a rename map,
    descending into sublink queries with the boundary raised."""
    if isinstance(expr, Col):
        if expr.level == boundary and expr.name in mapping:
            return Col(mapping[expr.name], expr.level)
        return expr
    new_children = [
        _substitute_renames(child, mapping, boundary)
        for child in expr.children()]
    if new_children != list(expr.children()):
        expr = expr.replace_children(new_children)
    if isinstance(expr, Sublink):
        new_query = _substitute_op_renames(expr.query, mapping, boundary + 1)
        if new_query is not expr.query:
            expr = Sublink(expr.kind, new_query, expr.op, expr.test)
    return expr


def _substitute_op_renames(op: Operator, mapping: dict[str, str],
                           boundary: int) -> Operator:
    new_children = [
        _substitute_op_renames(child, mapping, boundary)
        for child in op.children()]
    if list(op.children()) != new_children:
        op = op.replace_children(new_children)
    exprs = op.expressions()
    if exprs:
        new_exprs = [_substitute_renames(e, mapping, boundary)
                     for e in exprs]
        if list(exprs) != new_exprs:
            op = op.replace_expressions(new_exprs)
    return op


def _contains_sublink(expr: Expr) -> bool:
    if isinstance(expr, Sublink):
        return True
    return any(_contains_sublink(child) for child in expr.children())


def _push_conjunct(op: Operator, conjunct: Expr) -> Operator | None:
    """Try to absorb *conjunct* into *op*'s subtree; None if impossible."""
    needed = scope_column_names(conjunct)
    if not needed:
        return None  # constant predicates stay put

    if isinstance(op, Select):
        pushed = _push_conjunct(op.input, conjunct)
        if pushed is not None:
            return Select(pushed, op.condition)
        return Select(op.input, and_all([op.condition, conjunct]))

    if isinstance(op, Join):
        left_names = set(op.left.schema.names)
        right_names = set(op.right.schema.names)
        if needed <= left_names:
            pushed = _push_conjunct(op.left, conjunct)
            if pushed is None:
                pushed = Select(op.left, conjunct)
            return Join(pushed, op.right, op.condition, op.kind)
        if needed <= right_names and op.kind != JoinKind.LEFT:
            pushed = _push_conjunct(op.right, conjunct)
            if pushed is None:
                pushed = Select(op.right, conjunct)
            return Join(op.left, pushed, op.condition, op.kind)
        if op.kind in (JoinKind.INNER, JoinKind.CROSS) and \
                needed <= left_names | right_names:
            condition = and_all([op.condition, conjunct]) \
                if op.condition != TRUE else conjunct
            return Join(op.left, op.right, condition, JoinKind.INNER)
        return None

    if isinstance(op, Project) and not op.distinct \
            and not _contains_sublink(conjunct):
        mapping: dict[str, str] = {}
        for name, expr in op.items:
            if isinstance(expr, Col) and expr.level == 0:
                mapping[name] = expr.name
        if needed <= set(mapping):
            rewritten = _substitute_renames(conjunct, mapping)
            pushed = _push_conjunct(op.input, rewritten)
            if pushed is None:
                pushed = Select(op.input, rewritten)
            return Project(pushed, op.items, op.distinct)
        return None

    return None


def _optimize_node(op: Operator) -> Operator:
    if isinstance(op, Select):
        input_op = op.input
        # flatten nested selections so all conjuncts are considered together
        conjuncts: list[Expr] = list(conjuncts_of(op.condition))
        while isinstance(input_op, Select):
            conjuncts.extend(conjuncts_of(input_op.condition))
            input_op = input_op.input
        remaining: list[Expr] = []
        for conjunct in conjuncts:
            pushed = _push_conjunct(input_op, conjunct)
            if pushed is None:
                remaining.append(conjunct)
            else:
                input_op = pushed
        if remaining:
            return Select(input_op, and_all(remaining))
        return input_op
    return op


def optimize(op: Operator, catalog: Catalog | None = None) -> Operator:
    """Optimize an operator tree (bottom-up, including sublink queries).

    With *catalog*, a cost-based join-ordering pass runs after the
    rule-based rewrites (see the module docstring)."""
    op = _optimize_tree(op)
    if catalog is not None:
        from .cost import CardinalityEstimator
        op = _reorder_joins(op, CardinalityEstimator(catalog))
    return op


def _optimize_tree(op: Operator) -> Operator:
    new_children = [_optimize_tree(child) for child in op.children()]
    if list(op.children()) != new_children:
        op = op.replace_children(new_children)

    exprs = op.expressions()
    if exprs:
        new_exprs = [_optimize_expr_sublinks(e) for e in exprs]
        if list(exprs) != new_exprs:
            op = op.replace_expressions(new_exprs)
    return _optimize_node(op)


def _optimize_expr_sublinks(expr: Expr) -> Expr:
    new_children = [
        _optimize_expr_sublinks(child) for child in expr.children()]
    if new_children != list(expr.children()):
        expr = expr.replace_children(new_children)
    if isinstance(expr, Sublink):
        optimized = _optimize_tree(expr.query)
        if optimized is not expr.query:
            expr = Sublink(expr.kind, optimized, expr.op, expr.test)
    return expr


# ---------------------------------------------------------------------------
# Greedy cost-based join ordering
# ---------------------------------------------------------------------------

#: Chains shorter than this are left alone: with two relations the only
#: freedom is the build/probe side, which lowering already prices.
_MIN_CHAIN = 3


def _reorder_joins(op: Operator, estimator: CardinalityEstimator) -> Operator:
    """Top-down pass: re-order every maximal inner/cross join chain."""
    if isinstance(op, Join) and op.kind in (JoinKind.INNER, JoinKind.CROSS):
        relations, conjuncts = _flatten_chain(op)
        relations = [_reorder_joins(relation, estimator)
                     for relation in relations]
        if len(relations) >= _MIN_CHAIN:
            return _greedy_chain(relations, conjuncts, estimator,
                                 op.schema.names)
        rebuilt = relations[0]
        for relation in relations[1:]:
            rebuilt = Join(rebuilt, relation, TRUE, JoinKind.CROSS)
        if conjuncts:
            rebuilt = Select(rebuilt, and_all(conjuncts))
            rebuilt = _optimize_node(rebuilt)   # refold join conditions
        return rebuilt

    new_children = [_reorder_joins(child, estimator)
                    for child in op.children()]
    if list(op.children()) != new_children:
        op = op.replace_children(new_children)
    exprs = op.expressions()
    if exprs:
        new_exprs = [_reorder_expr(expr, estimator) for expr in exprs]
        if list(exprs) != new_exprs:
            op = op.replace_expressions(new_exprs)
    return op


def _reorder_expr(expr: Expr, estimator: CardinalityEstimator) -> Expr:
    new_children = [_reorder_expr(child, estimator)
                    for child in expr.children()]
    if new_children != list(expr.children()):
        expr = expr.replace_children(new_children)
    if isinstance(expr, Sublink):
        reordered = _reorder_joins(expr.query, estimator)
        if reordered is not expr.query:
            expr = Sublink(expr.kind, reordered, expr.op, expr.test)
    return expr


def _flatten_chain(op: Join) -> tuple[list[Operator], list[Expr]]:
    """Leaves and pooled condition conjuncts of a maximal inner/cross
    join chain (LEFT joins and non-join operators stay atomic leaves)."""
    relations: list[Operator] = []
    conjuncts: list[Expr] = []

    def collect(node: Operator) -> None:
        if isinstance(node, Join) and \
                node.kind in (JoinKind.INNER, JoinKind.CROSS):
            collect(node.left)
            collect(node.right)
            if node.condition != TRUE:
                conjuncts.extend(conjuncts_of(node.condition))
        else:
            relations.append(node)

    collect(op)
    return relations, conjuncts


def _greedy_chain(relations: list[Operator], conjuncts: list[Expr],
                  estimator: CardinalityEstimator,
                  original_names: Sequence[str]) -> Operator:
    """Left-deep greedy join order: smallest relation first, then always
    the join with the smallest estimated output."""
    pool = [(conjunct, scope_column_names(conjunct))
            for conjunct in conjuncts]
    used: set[int] = set()
    remaining = list(relations)
    current = min(remaining, key=estimator.estimate)
    remaining.remove(current)

    while remaining:
        best = None
        for relation in remaining:
            visible = set(current.schema.names) \
                | set(relation.schema.names)
            applicable = [
                position for position, (_, needed) in enumerate(pool)
                if position not in used and needed and needed <= visible]
            condition = and_all(
                pool[position][0] for position in applicable) \
                if applicable else TRUE
            kind = JoinKind.INNER if applicable else JoinKind.CROSS
            candidate = Join(current, relation, condition, kind)
            rows = estimator.estimate(candidate)
            if best is None or rows < best[0]:
                best = (rows, relation, candidate, applicable)
        _, relation, candidate, applicable = best
        current = candidate
        remaining.remove(relation)
        used.update(applicable)

    leftover = [conjunct for position, (conjunct, _) in enumerate(pool)
                if position not in used]
    if leftover:
        current = Select(current, and_all(leftover))
    if current.schema.names != tuple(original_names):
        current = Project(current,
                          [(name, Col(name)) for name in original_names])
    return current
