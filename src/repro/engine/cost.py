"""Cardinality estimation and the cost model.

The estimator walks a *logical* operator tree and predicts output row
counts from the catalog's statistics (:mod:`repro.stats`), falling back
to live table sizes (tables are in-memory, so a row count is always
available) and textbook default selectivities when a table was never
``ANALYZE``d.  Alongside each estimate it tracks, per visible column,
which base-table column it descends from, so selections arbitrarily far
above a scan still resolve to that column's statistics.

Consumers:

* physical lowering (:mod:`repro.engine.lowering`) — selectivity-ordered
  filter conjuncts, the HashJoin / IndexNestedLoopJoin / IndexScan
  choices, and the ``est_rows`` / ``est_cost`` annotations shown by
  ``EXPLAIN``;
* the logical optimizer (:mod:`repro.engine.optimizer`) — greedy
  cost-based join ordering;
* the provenance planner (:mod:`repro.provenance.planner`) — the
  ``auto`` strategy choice from estimated input and sublink
  cardinalities (:func:`strategy_costs`).

Every estimate is clamped to be non-negative and never exceeds what its
input can produce, so downstream arithmetic stays sane even on
pathological predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Number
from typing import Any

from ..catalog import Catalog
from ..datatypes import FLIPPED_COMPARISON
from ..errors import CatalogError
from ..expressions.ast import (
    BoolOp, Col, Comparison, Const, Expr, IsNull, Like, Not, NullSafeEq,
    Sublink,
)
from ..algebra.operators import (
    Aggregate, BaseRelation, Join, JoinKind, Limit, Operator, Project,
    Select, SetOp, SetOpKind, Sort, Values,
)
from ..stats import ColumnStats

# -- default selectivities (used when statistics cannot answer) -------------

DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1 / 3
DEFAULT_SUBLINK_SELECTIVITY = 0.5
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_NULL_FRACTION = 0.05
#: Row count assumed for a table the estimator cannot see at all.
DEFAULT_TABLE_ROWS = 1000.0

#: ``const <op> col`` normalized to ``col <flipped-op> const`` — the
#: evaluator's flip table, re-exported for the planner's convenience.
FLIP_COMPARISON = FLIPPED_COMPARISON

# -- per-row cost constants (arbitrary units: one row touched ~ 1.0) --------

HASH_BUILD_COST = 1.5      # insert one row into a join hash table
HASH_PROBE_COST = 1.0      # probe the table with one row
INDEX_PROBE_COST = 2.0     # one secondary-index lookup
NLJ_COMPARE_COST = 1.0     # one nested-loop condition evaluation
SORT_FACTOR = 2.0          # per row·log2(rows)

# -- provenance-strategy cost model -----------------------------------------
# Setup terms model fixed plan complexity (operators built, expressions
# compiled); the data terms model the joins each rewrite executes.  The
# constants encode the paper's measured ordering — Unn's hash join wins
# whenever applicable, Gen's minimal plan wins on small inputs, Left
# overtakes Gen as the quadratic term grows (Gen pays an extra factor for
# per-row sublink predicate evaluation), Move tracks Left.

UNN_SETUP = 16.0
GEN_SETUP = 16.0
LEFT_SETUP = 96.0
GEN_DATA_FACTOR = 1.15
MOVE_DATA_FACTOR = 1.05


def strategy_costs(input_rows: float, sublink_rows: float,
                   correlated: bool) -> dict[str, float]:
    """Estimated execution cost of each rewrite strategy.

    *input_rows* is the sublink-bearing operator's input cardinality,
    *sublink_rows* the summed cardinality of its sublink queries.
    Applicability is the caller's concern — this only prices the plans.
    """
    join_work = input_rows * (sublink_rows + 1.0)
    gen_work = join_work
    if correlated:
        # correlated sublinks re-execute per outer row (SubPlan)
        gen_work = input_rows * (sublink_rows + 2.0)
    return {
        "unn": UNN_SETUP + input_rows + 2.0 * sublink_rows,
        "left": LEFT_SETUP + join_work,
        "move": LEFT_SETUP + MOVE_DATA_FACTOR * join_work,
        "gen": GEN_SETUP + GEN_DATA_FACTOR * gen_work,
    }


# -- column lineage ----------------------------------------------------------

@dataclass(frozen=True)
class ColumnOrigin:
    """Where a visible column comes from: a base-table column plus that
    table's estimated row count (for unique-index and 1/n heuristics)."""

    table: str
    column: str
    table_rows: float
    stats: ColumnStats | None


ColumnMap = dict[str, ColumnOrigin]


class CardinalityEstimator:
    """Estimates logical-operator output cardinalities over a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        # Memoized per operator identity.  The operator itself is kept in
        # the entry: id() values may be reused once an object is freed,
        # and callers (the greedy join-ordering pass) estimate transient
        # candidate trees — holding the reference pins the identity for
        # the estimator's lifetime, so a later allocation can never alias
        # a dead candidate's cached estimate.
        self._memo: dict[int, tuple[Operator, float, ColumnMap]] = {}

    # -- public API ----------------------------------------------------------

    def estimate(self, op: Operator) -> float:
        """Estimated output rows of *op* (>= 0)."""
        return self._visit(op)[0]

    def column_map(self, op: Operator) -> ColumnMap:
        """Base-column lineage of *op*'s visible columns."""
        return self._visit(op)[1]

    def selectivity(self, condition: Expr, op_input: Operator) -> float:
        """Estimated fraction of *op_input*'s rows satisfying *condition*."""
        return self._selectivity(condition, self._visit(op_input)[1])

    def table_rows(self, table: str) -> float:
        """Row count of a base table: statistics first, live size second."""
        stats = self.catalog.stats.get(table)
        if stats is not None:
            return float(stats.row_count)
        try:
            return float(len(self.catalog.get(table).rows))
        except CatalogError:
            return DEFAULT_TABLE_ROWS

    def equality_matches(self, table: str, column: str) -> float:
        """Expected rows of *table* matching ``column = <one value>``."""
        rows = self.table_rows(table)
        stats = self.catalog.stats.get(table)
        column_stats = stats.column(column) if stats is not None else None
        if column_stats is not None and column_stats.n_distinct > 0:
            return max(rows / column_stats.n_distinct, 0.0)
        if self.catalog.has_unique_index(table, column):
            return 1.0 if rows >= 1 else 0.0
        return rows * DEFAULT_EQ_SELECTIVITY

    # -- operator walk -------------------------------------------------------

    def _visit(self, op: Operator) -> tuple[float, ColumnMap]:
        cached = self._memo.get(id(op))
        if cached is None:
            rows, columns = self._compute(op)
            self._memo[id(op)] = (op, rows, columns)
            return rows, columns
        _, rows, columns = cached
        return rows, columns

    def _compute(self, op: Operator) -> tuple[float, ColumnMap]:
        if isinstance(op, BaseRelation):
            return self._base_relation(op)
        if isinstance(op, Values):
            return float(len(op.rows)), {}
        if isinstance(op, Select):
            rows, columns = self._visit(op.input)
            fraction = self._selectivity(op.condition, columns)
            return rows * fraction, columns
        if isinstance(op, Project):
            return self._project(op)
        if isinstance(op, Join):
            return self._join(op)
        if isinstance(op, Aggregate):
            return self._aggregate(op)
        if isinstance(op, SetOp):
            left, _ = self._visit(op.left)
            right, _ = self._visit(op.right)
            if op.kind == SetOpKind.UNION:
                return left + right, {}
            if op.kind == SetOpKind.INTERSECT:
                return min(left, right), {}
            return left, {}
        if isinstance(op, Sort):
            return self._visit(op.input)
        if isinstance(op, Limit):
            rows, columns = self._visit(op.input)
            if op.count is not None:
                rows = min(rows, float(op.count))
            return rows, columns
        # unknown operator: product of children (cross-product-like upper
        # bound), merged lineage
        rows = 1.0
        columns: ColumnMap = {}
        for child in op.children():
            child_rows, child_columns = self._visit(child)
            rows *= max(child_rows, 1.0)
            columns.update(child_columns)
        return rows, columns

    def _base_relation(self, op: BaseRelation) -> tuple[float, ColumnMap]:
        rows = self.table_rows(op.table)
        stats = self.catalog.stats.get(op.table)
        columns: ColumnMap = {}
        try:
            stored = self.catalog.get(op.table).schema
        except CatalogError:
            return rows, columns
        for name, attribute in zip(op.schema.names, stored):
            column_stats = stats.column(attribute.name) \
                if stats is not None else None
            columns[name] = ColumnOrigin(
                op.table, attribute.name, rows, column_stats)
        return rows, columns

    def _project(self, op: Project) -> tuple[float, ColumnMap]:
        rows, columns = self._visit(op.input)
        projected: ColumnMap = {}
        for name, expr in op.items:
            if isinstance(expr, Col) and expr.level == 0 \
                    and expr.name in columns:
                projected[name] = columns[expr.name]
        if op.distinct:
            distinct = 1.0
            known = True
            for name, expr in op.items:
                origin = projected.get(name)
                if origin is None or origin.stats is None:
                    known = False
                    break
                distinct *= max(origin.stats.n_distinct, 1)
            if known:
                rows = min(rows, distinct)
        return rows, projected

    def _join(self, op: Join) -> tuple[float, ColumnMap]:
        left_rows, left_columns = self._visit(op.left)
        right_rows, right_columns = self._visit(op.right)
        columns = {**left_columns, **right_columns}
        rows = left_rows * right_rows
        rows *= self._selectivity(op.condition, columns)
        if op.kind == JoinKind.LEFT:
            rows = max(rows, left_rows)   # unmatched left rows are padded
        return rows, columns

    def _aggregate(self, op: Aggregate) -> tuple[float, ColumnMap]:
        rows, columns = self._visit(op.input)
        if not op.group:
            return 1.0, {}
        groups = 1.0
        kept: ColumnMap = {}
        for name in op.group:
            origin = columns.get(name)
            if origin is not None:
                kept[name] = origin
            if origin is not None and origin.stats is not None:
                groups *= max(origin.stats.n_distinct, 1)
            else:
                groups *= max(rows ** 0.5, 1.0)
        return min(rows, groups), kept

    # -- predicate selectivity ------------------------------------------------

    def _selectivity(self, condition: Expr, columns: ColumnMap) -> float:
        return _clamp(self._selectivity_raw(condition, columns))

    def _selectivity_raw(self, expr: Expr, columns: ColumnMap) -> float:
        if isinstance(expr, Const):
            if expr.value is True:
                return 1.0
            return 0.0   # FALSE or NULL condition keeps nothing
        if isinstance(expr, BoolOp):
            parts = [self._selectivity(item, columns)
                     for item in expr.items]
            if expr.op == "and":
                result = 1.0
                for part in parts:
                    result *= part
                return result
            result = 1.0
            for part in parts:
                result *= (1.0 - part)
            return 1.0 - result
        if isinstance(expr, Not):
            return 1.0 - self._selectivity(expr.operand, columns)
        if isinstance(expr, (Comparison, NullSafeEq)):
            return self._comparison(expr, columns)
        if isinstance(expr, IsNull):
            origin = self._origin(expr.operand, columns)
            if origin is not None and origin.stats is not None:
                return origin.stats.null_frac
            return DEFAULT_NULL_FRACTION
        if isinstance(expr, Like):
            return DEFAULT_LIKE_SELECTIVITY
        if isinstance(expr, Sublink):
            return DEFAULT_SUBLINK_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY

    def _comparison(self, expr: Comparison | NullSafeEq,
                    columns: ColumnMap) -> float:
        op = "=" if isinstance(expr, NullSafeEq) else expr.op
        left_origin = self._origin(expr.left, columns)
        right_origin = self._origin(expr.right, columns)
        left_value = _const_value(expr.left)
        right_value = _const_value(expr.right)

        # SQL three-valued logic: any comparison with a literal NULL is
        # unknown for every row, so the selection keeps nothing — for
        # every operator, '<>' and ranges included.  (NullSafeEq is the
        # exception: NULL =n NULL is TRUE, so fall through for it.)
        if not isinstance(expr, NullSafeEq) and \
                (left_value is None or right_value is None):
            return 0.0

        if op in ("=", "<>"):
            equality = self._equality(left_origin, right_origin,
                                      left_value, right_value)
            return equality if op == "=" else 1.0 - equality
        # range comparison: interpolate against min/max when one side is a
        # known constant over a column with numeric bounds
        origin, value, flipped = left_origin, right_value, False
        if origin is None or value is None:
            origin, value, flipped = right_origin, left_value, True
        if origin is not None and value is not None:
            fraction = _range_fraction(origin.stats, op, value, flipped)
            if fraction is not None:
                return fraction
        return DEFAULT_RANGE_SELECTIVITY

    def _equality(self, left: ColumnOrigin | None,
                  right: ColumnOrigin | None, left_value: Any,
                  right_value: Any) -> float:
        if left is not None and right is not None:
            # join-style column equality: 1 / max distinct count
            distinct = max(self._distinct(left), self._distinct(right), 1.0)
            return 1.0 / distinct
        origin = left if left is not None else right
        value = right_value if left is not None else left_value
        if origin is None:
            return DEFAULT_EQ_SELECTIVITY
        if value is not _UNKNOWN and origin.stats is not None:
            fraction = origin.stats.eq_fraction(value)
            if fraction is not None:
                return fraction
        if origin.stats is not None and origin.stats.n_distinct > 0:
            return 1.0 / origin.stats.n_distinct
        if self.catalog.has_unique_index(origin.table, origin.column):
            return 1.0 / max(origin.table_rows, 1.0)
        return DEFAULT_EQ_SELECTIVITY

    def _distinct(self, origin: ColumnOrigin) -> float:
        if origin.stats is not None and origin.stats.n_distinct > 0:
            return float(origin.stats.n_distinct)
        if self.catalog.has_unique_index(origin.table, origin.column):
            return max(origin.table_rows, 1.0)
        return max(origin.table_rows * DEFAULT_EQ_SELECTIVITY, 1.0)

    @staticmethod
    def _origin(expr: Expr | None,
                columns: ColumnMap) -> ColumnOrigin | None:
        if isinstance(expr, Col) and expr.level == 0:
            return columns.get(expr.name)
        return None


class _Unknown:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unknown>"


_UNKNOWN = _Unknown()


def _const_value(expr: Expr | None) -> Any:
    """The literal value of *expr*, or the ``_UNKNOWN`` sentinel (so a
    literal NULL stays distinguishable from "not a constant")."""
    if isinstance(expr, Const):
        return expr.value
    return _UNKNOWN


def _range_fraction(stats: ColumnStats | None, op: str, value: Any,
                    flipped: bool) -> float | None:
    """Linear interpolation of ``column <op> value`` against min/max."""
    if stats is None or not isinstance(value, Number):
        return None
    low, high = stats.min_value, stats.max_value
    if not isinstance(low, Number) or not isinstance(high, Number):
        return None
    if flipped:   # value <op> column  ->  column <flipped-op> value
        op = FLIP_COMPARISON.get(op, op)
    if high == low:
        below = 1.0 if value >= high else 0.0
    else:
        below = (float(value) - float(low)) / (float(high) - float(low))
    below = _clamp(below)
    fraction = below if op in ("<", "<=") else 1.0 - below
    non_null = 1.0 - stats.null_frac
    return _clamp(fraction) * non_null


def _clamp(fraction: float) -> float:
    return min(1.0, max(0.0, fraction))
